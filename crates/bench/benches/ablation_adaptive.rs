//! Ablation — static Set-Affinity bound vs FDP-style dynamic distance
//! control (the paper's future-work direction).
//!
//! Three policies on EM3D:
//! * **static-bounded** — the paper's mechanism: fixed distance at half
//!   the Set-Affinity bound.
//! * **dynamic** — feedback controller (accuracy/lateness/pollution),
//!   deliberately started at a pollution-heavy distance.
//! * **dynamic+bound** — the same controller clamped by the
//!   Set-Affinity bound (the hybrid).

use sp_bench::harness::{criterion_group, criterion_main, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::prelude::*;
use sp_core::{run_sp_adaptive, FeedbackController};
use sp_workloads::{Benchmark, Workload};

const EPOCH: usize = 128;

fn print_series() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.unwrap();
    let base = run_original(&trace, cfg);

    let static_run = run_sp(&trace, cfg, SpParams::from_distance_rp(bound / 2, 0.5));
    let mut dyn_free = FeedbackController::new(bound * 8, 0.5);
    let free = run_sp_adaptive(&trace, cfg, &mut dyn_free, EPOCH);
    let mut dyn_bounded = FeedbackController::new(bound * 8, 0.5).bounded(bound);
    let hybrid = run_sp_adaptive(&trace, cfg, &mut dyn_bounded, EPOCH);

    println!("\n== Ablation: adaptive distance control (EM3D, bound {bound}) ==");
    let norm = |rt: u64| rt as f64 / base.runtime as f64;
    println!(
        "  static (bound/2):   runtime {:.3}",
        norm(static_run.runtime)
    );
    println!(
        "  dynamic (start 8x):  runtime {:.3}, final distance {}",
        norm(free.run.runtime),
        free.epochs.last().map(|e| e.next_distance).unwrap_or(0)
    );
    println!(
        "  dynamic + bound:     runtime {:.3}, final distance {}",
        norm(hybrid.run.runtime),
        hybrid.epochs.last().map(|e| e.next_distance).unwrap_or(0)
    );
    println!(
        "  distance trajectory (dynamic): {:?}",
        free.epochs
            .iter()
            .map(|e| e.next_distance)
            .take(12)
            .collect::<Vec<_>>()
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.unwrap();
    let mut g = c.benchmark_group("ablation/adaptive");
    g.sample_size(10);
    g.bench_function("static_bounded", |b| {
        b.iter(|| run_sp(&trace, cfg, SpParams::from_distance_rp(bound / 2, 0.5)))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut p = FeedbackController::new(bound * 8, 0.5);
            run_sp_adaptive(&trace, cfg, &mut p, EPOCH)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
