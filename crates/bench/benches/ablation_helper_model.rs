//! Ablation — helper execution model.
//!
//! The paper's premise (§II.A) is that the helper executes *real loads*
//! ("only the load's computation") and therefore cannot outrun the main
//! thread on a low-CALR loop without skipping. This ablation compares
//! that faithful blocking-helper model against an idealized helper with
//! unbounded memory-level parallelism (fire-and-forget prefetches), at a
//! bounded and an oversized distance.
//!
//! Expected shape: the idealized helper gains slightly more at small
//! distances (it is never stalled) but pollutes just as badly past the
//! bound — the distance bound matters under *either* helper model.

use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::prelude::*;
use sp_core::run_sp_with;
use sp_workloads::{Benchmark, Workload};

fn print_series() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.unwrap();
    let base = run_original(&trace, cfg);
    println!("\n== Ablation: helper model (EM3D, bound {bound}) ==");
    println!("  model      distance  runtime  pollution  helper_waits");
    for (label, blocking) in [("blocking", true), ("idealized", false)] {
        for d in [bound / 2, bound * 4] {
            let opts = EngineOptions {
                blocking_helper: blocking,
                ..EngineOptions::default()
            };
            let r = run_sp_with(&trace, cfg, SpParams::from_distance_rp(d, 0.5), opts);
            println!(
                "  {:9}  {:8}  {:7.3}  {:9}  {:12}",
                label,
                d,
                r.runtime as f64 / base.runtime as f64,
                r.stats.pollution.total(),
                r.helper_waits
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let mut g = c.benchmark_group("ablation/helper_model");
    g.sample_size(10);
    for (label, blocking) in [("blocking", true), ("idealized", false)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &blocking,
            |b, &blocking| {
                let opts = EngineOptions {
                    blocking_helper: blocking,
                    ..EngineOptions::default()
                };
                b.iter(|| run_sp_with(&trace, cfg, SpParams::new(20, 20), opts))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
