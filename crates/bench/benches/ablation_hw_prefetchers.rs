//! Ablation — hardware prefetchers on/off.
//!
//! The paper's halving argument (§III.B) counts six access entities once
//! the helper runs: main, helper, and the per-core streamers and DPLs.
//! *Original* Set Affinity is defined with hardware prefetchers disabled
//! (Definition 2). This ablation reports (a) how SA and the bound change
//! when the prefetchers are counted into the stream, and (b) how SP's
//! gain and pollution change with the prefetchers on vs. off.

use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::{helper_set_affinity, original_set_affinity, run_original, run_sp, SpParams};
use sp_workloads::{Benchmark, Workload};

fn print_series() {
    let cfg_on = CacheConfig::scaled_default();
    let cfg_off = cfg_on.without_hw_prefetchers();
    println!("\n== Ablation: hardware prefetchers ==");
    for b in Benchmark::ALL {
        let trace = Workload::scaled(b).trace();
        let orig = original_set_affinity(&trace, cfg_on.l2);
        let with_helper =
            helper_set_affinity(&trace, cfg_on.l2, SpParams::from_distance_rp(16, 0.5));
        println!(
            "  {:5} SA_orig={:?} SA_with_helper={:?} (paper: SA_helper*2 <= SA_orig)",
            b.name(),
            orig.range(),
            with_helper.range()
        );
    }
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    for (label, cfg) in [("hw on", cfg_on), ("hw off", cfg_off)] {
        let base = run_original(&trace, cfg);
        let sp = run_sp(&trace, cfg, SpParams::from_distance_rp(20, 0.5));
        println!(
            "  EM3D {label}: runtime_norm={:.3} pollution={} hw_prefetches={}",
            sp.runtime as f64 / base.runtime as f64,
            sp.stats.pollution.total(),
            sp.stats.prefetches_issued[1] + sp.stats.prefetches_issued[2],
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let mut g = c.benchmark_group("ablation/hw_prefetchers");
    g.sample_size(10);
    for (label, cfg) in [
        ("on", CacheConfig::scaled_default()),
        (
            "off",
            CacheConfig::scaled_default().without_hw_prefetchers(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, &cfg| {
            b.iter(|| run_original(&trace, cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
