//! Ablation — L2 replacement policy.
//!
//! The Set Affinity bound reasons about when "the cached data in this
//! specific set will be replaced by new reference", which is an LRU-style
//! argument. This ablation measures how SP's gain and its pollution
//! respond when the shared L2 uses FIFO, random, or tree-PLRU
//! replacement instead — the bound still predicts the degradation knee
//! under recency-based policies, while random replacement blurs it.

use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::{CacheConfig, Policy};
use sp_core::{run_original, run_sp, SpParams};
use sp_workloads::{Benchmark, Workload};

const POLICIES: [(&str, Policy); 4] = [
    ("lru", Policy::Lru),
    ("fifo", Policy::Fifo),
    ("random", Policy::Random { seed: 0xC0FFEE }),
    ("plru", Policy::PlruTree),
];

fn print_series() {
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    println!("\n== Ablation: L2 replacement policy (EM3D) ==");
    println!("  policy  distance  runtime_norm  pollution");
    for (name, pol) in POLICIES {
        let cfg = CacheConfig::scaled_default().with_policy(pol);
        let base = run_original(&trace, cfg);
        for d in [20u32, 320] {
            let sp = run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5));
            println!(
                "  {:6}  {:8}  {:12.3}  {:9}",
                name,
                d,
                sp.runtime as f64 / base.runtime as f64,
                sp.stats.pollution.total()
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let mut g = c.benchmark_group("ablation/replacement");
    g.sample_size(10);
    for (name, pol) in POLICIES {
        let cfg = CacheConfig::scaled_default().with_policy(pol);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            b.iter(|| run_sp(&trace, cfg, SpParams::from_distance_rp(20, 0.5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
