//! Ablation — prefetch ratio `RP`.
//!
//! The paper fixes `RP = 0.5` for its three low-CALR benchmarks (§II.B)
//! and contrasts with conventional helper prefetching (`RP = 1`, the
//! helper covers every delinquent load). This ablation sweeps RP at a
//! fixed in-bound distance and shows why 0.5 is the right operating
//! point for a helper that executes real loads: with RP = 1 the helper
//! cannot outrun the main thread at all (it falls behind and jumps).

use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::{run_original, run_sp, SpParams};
use sp_workloads::{Benchmark, Workload};

/// In-bound EM3D distance used for the whole sweep.
const DISTANCE: u32 = 20;

fn params_for(rp: f64) -> SpParams {
    if (rp - 1.0).abs() < 1e-9 {
        SpParams::conventional()
    } else {
        SpParams::from_distance_rp(DISTANCE, rp)
    }
}

fn print_series() {
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let cfg = CacheConfig::scaled_default();
    let base = run_original(&trace, cfg);
    println!("\n== Ablation: prefetch ratio (EM3D, distance {DISTANCE}) ==");
    println!("  RP     A_SKI  A_PRE  runtime  miss_norm  helper_jumps");
    for rp in [0.25, 0.5, 0.75, 1.0] {
        let p = params_for(rp);
        let r = run_sp(&trace, cfg, p);
        println!(
            "  {:4.2}  {:5}  {:5}  {:7.3}  {:9.3}  {:12}",
            rp,
            p.a_ski,
            p.a_pre,
            r.runtime as f64 / base.runtime as f64,
            r.stats.main.total_misses as f64 / base.stats.main.total_misses as f64,
            r.helper_jumps
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let cfg = CacheConfig::scaled_default();
    let mut g = c.benchmark_group("ablation/rp");
    g.sample_size(10);
    for rp in [0.5f64, 1.0] {
        g.bench_with_input(BenchmarkId::from_parameter(rp), &rp, |b, &rp| {
            b.iter(|| run_sp(&trace, cfg, params_for(rp)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
