//! Ablation — burst-sampling fidelity.
//!
//! The paper derives Set Affinity from a *low-overhead* burst-sampled
//! profile (§IV.C) rather than the full stream. This ablation quantifies
//! the estimate's error and cost across burst lengths: bursts shorter
//! than a set's affinity cannot observe its overflow at all, so the
//! estimated minimum (and hence the distance bound) is exact once the
//! burst length clears the true minimum SA.

use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::{original_set_affinity, sampled_set_affinity};
use sp_profiler::BurstSampler;
use sp_workloads::{Benchmark, Workload};

const BURSTS: [usize; 4] = [64, 256, 1024, 4096];

fn print_series() {
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let full = original_set_affinity(&trace, cfg.l2);
    println!(
        "\n== Ablation: burst sampling (EM3D, true SA={:?}) ==",
        full.range()
    );
    println!("  burst  duty  recorded_iters  SA_est        bound_est");
    for on in BURSTS {
        let s = BurstSampler::new(on, on);
        let bursts = s.sample(&trace);
        let est = sampled_set_affinity(&bursts, cfg.l2);
        println!(
            "  {:5}  {:4.2}  {:14}  {:12}  {:?}",
            on,
            s.duty_cycle(),
            s.recorded_iters(&trace),
            format!("{:?}", est.range()),
            est.distance_bound()
        );
    }
    println!("  (full-stream bound: {:?})\n", full.distance_bound());
}

fn bench(c: &mut Criterion) {
    print_series();
    let cfg = CacheConfig::scaled_default();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let mut g = c.benchmark_group("ablation/sampling");
    g.sample_size(10);
    g.bench_function("full_stream", |b| {
        b.iter(|| original_set_affinity(&trace, cfg.l2))
    });
    for on in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("sampled", on), &on, |b, &on| {
            b.iter(|| {
                let bursts = BurstSampler::new(on, on).sample(&trace);
                sampled_set_affinity(&bursts, cfg.l2)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
