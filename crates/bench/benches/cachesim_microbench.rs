//! Microbenchmarks of the memory-hierarchy substrate itself: raw cache
//! probe/fill throughput, MSHR operations, hardware-prefetcher training,
//! and end-to-end simulator throughput (accesses per second) — the
//! numbers that bound how large a workload the reproduction can sweep.

use sp_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use sp_cachesim::prefetcher::{DplPrefetcher, HwPrefetcher, StreamPrefetcher};
use sp_cachesim::{
    CacheConfig, CacheGeometry, Entity, MemorySystem, MshrFile, Policy, SetAssocCache,
};
use sp_trace::{synth, MemRef, SiteId};

fn bench_cache(c: &mut Criterion) {
    let geo = CacheGeometry::new(256 * 1024, 16, 64);
    let mut g = c.benchmark_group("cachesim/cache");
    let addrs: Vec<u64> = (0..4096u64)
        .map(|i| ((i * 2654435761) % (1 << 24)) & !63)
        .collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("fill_probe_mixed", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(geo, Policy::Lru);
            let mut hits = 0u64;
            for &a in &addrs {
                if cache.demand_touch(a, false).is_some() {
                    hits += 1;
                } else {
                    cache.fill(a, Entity::Main, false);
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_mshr(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/mshr");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("allocate_drain", |b| {
        b.iter(|| {
            let mut m = MshrFile::new(16);
            let mut drained = 0usize;
            for i in 0..1024u64 {
                while m
                    .allocate(sp_cachesim::mshr::InFlight {
                        block: i * 64,
                        ready_at: i + 100,
                        requester: Entity::Main,
                        prefetch: false,
                        store: false,
                    })
                    .is_err()
                {
                    drained += m.drain_ready(i + 100).len();
                }
            }
            drained
        })
    });
    g.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/prefetchers");
    let blocks: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
    g.throughput(Throughput::Elements(blocks.len() as u64));
    g.bench_function("streamer_sequential", |b| {
        b.iter(|| {
            let mut p = StreamPrefetcher::new(8, 2, 64);
            let mut out = Vec::new();
            let mut emitted = 0usize;
            for &blk in &blocks {
                out.clear();
                p.observe(SiteId::ANON, blk, &mut out);
                emitted += out.len();
            }
            emitted
        })
    });
    g.bench_function("dpl_strided", |b| {
        b.iter(|| {
            let mut p = DplPrefetcher::new(16, 2, 64);
            let mut out = Vec::new();
            let mut emitted = 0usize;
            for (i, _) in blocks.iter().enumerate() {
                out.clear();
                p.observe(SiteId(3), (i as u64) * 192, &mut out);
                emitted += out.len();
            }
            emitted
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim/end_to_end");
    let trace = synth::random(2000, 8, 0, 1 << 22, 7, 2);
    let refs: Vec<MemRef> = trace.tagged_refs().map(|(_, r)| *r).collect();
    g.throughput(Throughput::Elements(refs.len() as u64));
    // Scalar entry point, fresh hierarchy per run (the pre-overhaul shape).
    g.bench_function("demand_stream", |b| {
        b.iter(|| {
            let mut m = MemorySystem::new(CacheConfig::scaled_default());
            let mut t = 0u64;
            for r in &refs {
                t = m.demand_access(Entity::Main, *r, t).complete_at;
            }
            t
        })
    });
    // Same stream through one reused simulator: isolates the build cost
    // `MemorySystem::reset` saves sweep runners and sp-serve.
    g.bench_function("demand_stream_reset_reuse", |b| {
        let mut m = MemorySystem::new(CacheConfig::scaled_default());
        b.iter(|| {
            m.reset();
            let mut t = 0u64;
            for r in &refs {
                t = m.demand_access(Entity::Main, *r, t).complete_at;
            }
            t
        })
    });
    // Same stream with projections precomputed (what CompiledTrace replay
    // feeds the hierarchy): isolates the per-access projection cost.
    g.bench_function("demand_stream_precompiled", |b| {
        let mut m = MemorySystem::new(CacheConfig::scaled_default());
        let compiled: Vec<_> = refs.iter().map(|r| m.project(*r)).collect();
        b.iter(|| {
            m.reset();
            let mut t = 0u64;
            for cr in &compiled {
                t = m.demand_access_pre(Entity::Main, cr, t).complete_at;
            }
            t
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_mshr,
    bench_prefetchers,
    bench_end_to_end
);
criterion_main!(benches);
