//! Figure 2 — EM3D performance vs growing prefetch distance.
//!
//! Prints the three normalized series (runtime, memory accesses, hot
//! L2 misses — the paper's Fig. 2 curves), then times the underlying
//! original and SP co-simulations.

use sp_bench::experiments::fig2;
use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::{run_original, run_sp, SpParams};
use sp_workloads::{Benchmark, Workload};

fn print_fig2() {
    let s = fig2(CacheConfig::scaled_default());
    println!("\n== Figure 2 (regenerated): EM3D, normalized to original ==");
    println!("  distance  runtime  mem_accesses  hot_misses");
    for p in &s.points {
        println!(
            "  {:8}  {:7.3}  {:12.3}  {:10.3}",
            p.distance, p.runtime_norm, p.memory_accesses_norm, p.hot_misses_norm
        );
    }
    println!("  paper shape: all three curves rise with growing distance\n");
}

fn bench_fig2(c: &mut Criterion) {
    print_fig2();
    let trace = Workload::scaled(Benchmark::Em3d).trace();
    let cfg = CacheConfig::scaled_default();
    let mut g = c.benchmark_group("fig2/em3d_cosim");
    g.sample_size(10);
    g.bench_function("original", |b| b.iter(|| run_original(&trace, cfg)));
    for d in [20u32, 160] {
        g.bench_with_input(BenchmarkId::new("sp", d), &d, |b, &d| {
            b.iter(|| run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
