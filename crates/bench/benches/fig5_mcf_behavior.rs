//! Figure 5 — MCF access-behaviour change and normalized runtime vs
//! prefetch distance.
//!
//! Prints the Δtotally-hit / Δtotally-miss / Δpartially-hit series (in %
//! of the original run's memory accesses, the paper's normalization) and
//! the runtime curve, then times the SP co-simulation below and above
//! the Set-Affinity distance bound.

use sp_bench::experiments::fig_behavior;
use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::{run_sp, SpParams};
use sp_workloads::{Benchmark, Workload};

const BENCH: Benchmark = Benchmark::Mcf;

fn print_series() {
    let s = fig_behavior(BENCH, CacheConfig::scaled_default());
    println!(
        "\n== Figure 5 (regenerated): {} behaviour change, bound={:?} ==",
        s.benchmark, s.bound
    );
    println!("  distance  dTH%     dTM%     dPH%     runtime  pollution");
    for p in &s.sweep.points {
        println!(
            "  {:8}  {:+7.2}  {:+7.2}  {:+7.2}  {:7.3}  {:9}",
            p.distance,
            p.behavior.totally_hit_pct,
            p.behavior.totally_miss_pct,
            p.behavior.partially_hit_pct,
            p.runtime_norm,
            p.pollution.stats.total()
        );
    }
    println!("  paper shape: totally-hits fall and runtime rises as distance grows\n");
}

fn bench(c: &mut Criterion) {
    print_series();
    let trace = Workload::scaled(BENCH).trace();
    let cfg = CacheConfig::scaled_default();
    let mut g = c.benchmark_group("fig5/mcf_sp");
    g.sample_size(10);
    for d in [400u32, 3200] {
        g.bench_with_input(BenchmarkId::new("distance", d), &d, |b, &d| {
            b.iter(|| run_sp(&trace, cfg, SpParams::from_distance_rp(d, 0.5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
