//! Table 2 — benchmark characteristics.
//!
//! Prints the regenerated table (full-stream and burst-sampled Set
//! Affinity ranges, distance bounds, CALR/RP), then times the Fig. 3
//! Set Affinity analysis itself on each workload's hot-loop trace.

use sp_bench::experiments::table2;
use sp_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_cachesim::CacheConfig;
use sp_core::original_set_affinity;
use sp_workloads::{Benchmark, Workload};

fn print_table2() {
    let cfg = CacheConfig::scaled_default();
    println!("\n== Table 2 (regenerated) ==");
    for r in table2(&cfg) {
        println!(
            "  {:5} iters={:7} SA_full={:?} SA_sampled={:?} bound={:?} CALR={:.3} RP={:.2}",
            r.benchmark, r.iterations, r.sa_range, r.sa_sampled, r.distance_bound, r.calr, r.rp
        );
    }
    println!("  paper: EM3D [40,360], MCF [3000,46000], MST [6300,10000]\n");
}

fn bench_set_affinity(c: &mut Criterion) {
    print_table2();
    let cfg = CacheConfig::scaled_default();
    let mut g = c.benchmark_group("table2/set_affinity_analysis");
    g.sample_size(10);
    for b in Benchmark::ALL {
        let trace = Workload::scaled(b).trace();
        g.throughput(sp_bench::harness::Throughput::Elements(
            trace.total_refs() as u64
        ));
        g.bench_with_input(BenchmarkId::from_parameter(b.name()), &trace, |bench, t| {
            bench.iter(|| original_set_affinity(t, cfg.l2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_set_affinity);
criterion_main!(benches);
