//! The tracked cachesim benchmark baseline behind `spt bench`.
//!
//! A pinned micro+macro suite measured in-process with repeated runs and
//! a median, so the numbers are comparable across commits:
//!
//! * `set_hammer` — a synthetic single-set conflict stream through
//!   [`run_original_passes`]: pure cache/replacement throughput, no
//!   prefetchers, no helper thread.
//! * `fig2_em3d_sweep` — the Figure 2 EM3D distance sweep at test scale,
//!   serial (`--jobs 1`): the full sweep hot path (compile + replay per
//!   grid point) as every figure driver runs it.
//! * `fig5_mcf_sweep` — the Figure 5 MCF distance sweep at test scale,
//!   serial: the acceptance benchmark of the hot-path overhaul.
//! * `lds` — the hash-join probe kernel on the pointer-chase backend at
//!   test scale, serial: pins the workload-builder and extension-backend
//!   paths into the same trajectory.
//! * `batched_sweep` — the Figure 2 grid again, but scheduled as
//!   lane-batches of [`BATCHED_SWEEP_LANES`] grid points through the
//!   lane-parallel engine (`run_trace_batched`): the batched sweep path
//!   end to end, bit-identical to `fig2_em3d_sweep` by the lane-vs-
//!   scalar differential suite.
//! * `epoch_overhead` — the Figure 2 grid once more with the epoch
//!   flight recorder attached ([`crate::fig2_epochs_at`]): the
//!   enabled-recorder cost relative to `fig2_em3d_sweep`, kept in the
//!   same rolling-median gate so the recorder can't silently get more
//!   expensive. The recorder-*disabled* cost needs no suite of its
//!   own: the sink rides the `EventSink` generic the other suites
//!   already measure, compiled out entirely.
//!
//! Each entry reports median ns per simulated reference, the derived
//! refs/sec, the median per-run wall time, the number of `MemorySystem`
//! constructions per run (the allocations-per-run proxy — see
//! [`sp_cachesim::sim_build_count`]), and a per-stage wall-time
//! breakdown from one extra *traced* pass (the timed repetitions run
//! with span recording disabled, so refs/sec keeps measuring the
//! instrumented-but-disabled build the regression gate vouches for).
//! `spt bench` serializes the suite to `BENCH_cachesim.json`, the
//! repository's benchmark trajectory: the document's `entries` section
//! is the latest measurement (and what [`check_against`] reads), and
//! its `trajectory` section carries every prior committed measurement
//! forward as one point per line. CI re-runs the suite in smoke mode
//! and fails on a >20% refs/sec regression against the **rolling
//! median** of the last few committed trajectory points (not the single
//! newest point, whose own measurement noise would otherwise become the
//! gate).

use crate::experiments::{
    fig2_at, fig2_batched_at, fig2_epochs_at, fig_behavior_at, lds_sweep_at, Scale,
};
use sp_cachesim::{sim_build_count, CacheConfig};
use sp_core::{run_original_passes, RunResult, Sweep};
use sp_trace::synth;
use sp_workloads::Benchmark;
use std::time::Instant;

/// One measured suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Suite name (one of [`SUITE_NAMES`]).
    pub suite: &'static str,
    /// Simulated references per run (demand accesses of every thread,
    /// summed over all grid points for the sweep suites). Identical
    /// pre/post optimization — the counters are bit-exact.
    pub refs: u64,
    /// Timed repetitions the median is taken over.
    pub runs: usize,
    /// Median wall time per simulated reference, nanoseconds.
    pub median_ns_per_ref: f64,
    /// `1e9 / median_ns_per_ref` — the regression-checked throughput.
    pub refs_per_sec: f64,
    /// Median wall time of one full run, milliseconds (for the sweep
    /// suites this is the sweep wall time at `--jobs 1`).
    pub wall_ms: f64,
    /// `MemorySystem` constructions per run (allocation proxy).
    pub sim_builds: u64,
    /// Per-stage `(name, total_us, spans)` wall-time breakdown of one
    /// extra traced pass, sorted by name (see
    /// [`sp_obs::span::stage_totals`]). Empty if the traced pass
    /// recorded nothing.
    pub spans: Vec<(&'static str, u64, u64)>,
}

/// Every suite the baseline runs, in order.
pub const SUITE_NAMES: [&str; 6] = [
    "set_hammer",
    "fig2_em3d_sweep",
    "fig5_mcf_sweep",
    "lds",
    "batched_sweep",
    "epoch_overhead",
];

/// Lane width of the `batched_sweep` suite — the same EM3D grid as
/// `fig2_em3d_sweep`, scheduled as lane-batches of grid points through
/// [`sp_core::run_trace_batched`] instead of one run per point.
pub const BATCHED_SWEEP_LANES: usize = 4;

/// Demand accesses simulated by one run (all threads, all grid points).
fn sweep_refs(s: &Sweep) -> u64 {
    let one = |r: &RunResult| r.stats.main.demand_accesses() + r.stats.helper.demand_accesses();
    one(&s.baseline) + s.points.iter().map(|p| one(&p.run)).sum::<u64>()
}

/// Time `f` over `runs` repetitions (after `warmup` untimed runs) and
/// fold the samples into a [`BenchEntry`]. `f` returns the number of
/// references the run simulated. At least one warmup always runs — it
/// establishes the per-run ref count, faults in the parked simulators,
/// and lets the host frequency settle before the timed repetitions.
fn measure(
    suite: &'static str,
    warmup: usize,
    runs: usize,
    mut f: impl FnMut() -> u64,
) -> BenchEntry {
    let refs = f(); // first warmup; also establishes the per-run ref count
    for _ in 1..warmup.max(1) {
        let got = f();
        assert_eq!(got, refs, "{suite}: runs must simulate identical work");
    }
    let builds_before = sim_build_count();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        let got = f();
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(got, refs, "{suite}: runs must simulate identical work");
    }
    let sim_builds = (sim_build_count() - builds_before) / runs as u64;
    // One extra pass with the span recorder on: the per-stage wall-time
    // breakdown. Kept out of the timed loop above so the median (and the
    // refs/sec regression gate) still measures the default
    // recording-disabled build.
    sp_obs::span::start_recording();
    let _ = f();
    let traced = sp_obs::span::drain();
    sp_obs::span::stop_recording();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let median_ns_per_ref = median * 1e9 / refs.max(1) as f64;
    BenchEntry {
        suite,
        refs,
        runs,
        median_ns_per_ref,
        refs_per_sec: 1e9 / median_ns_per_ref.max(1e-9),
        wall_ms: median * 1e3,
        sim_builds,
        spans: sp_obs::span::stage_totals(&traced),
    }
}

/// Run the pinned suite. `smoke` keeps the workloads identical (so
/// refs/sec stays comparable to a full-mode baseline) but takes the
/// median over fewer repetitions.
pub fn run_baseline(smoke: bool) -> Vec<BenchEntry> {
    run_baseline_with(smoke, None, None)
}

/// [`run_baseline`] with explicit repetition counts: `runs` timed
/// repetitions (default 3 smoke / 9 full) after `warmup` untimed ones
/// (default 2). More warmup + more runs tightens the median on noisy
/// hosts — the bench-trajectory drift across committed points was run-
/// to-run machine noise, not hot-path change.
pub fn run_baseline_with(
    smoke: bool,
    runs: Option<usize>,
    warmup: Option<usize>,
) -> Vec<BenchEntry> {
    let runs = runs.unwrap_or(if smoke { 3 } else { 9 }).max(1);
    let warmup = warmup.unwrap_or(2);
    let cfg = CacheConfig::scaled_default();
    let hammer = synth::set_hammer(4096, 2, 0, cfg.l2.sets(), cfg.l2.line_size);
    vec![
        measure("set_hammer", warmup, runs, || {
            let r = run_original_passes(&hammer, cfg, 2);
            r.stats.main.demand_accesses()
        }),
        measure("fig2_em3d_sweep", warmup, runs, || {
            sweep_refs(&fig2_at(cfg, Scale::Test, 1).0)
        }),
        measure("fig5_mcf_sweep", warmup, runs, || {
            sweep_refs(&fig_behavior_at(Benchmark::Mcf, cfg, Scale::Test, 1).0.sweep)
        }),
        measure("lds", warmup, runs, || {
            sweep_refs(&lds_sweep_at(cfg, Scale::Test, 1).0)
        }),
        measure("batched_sweep", warmup, runs, || {
            sweep_refs(&fig2_batched_at(cfg, Scale::Test, 1, BATCHED_SWEEP_LANES).0)
        }),
        measure("epoch_overhead", warmup, runs, || {
            sweep_refs(&fig2_epochs_at(cfg, Scale::Test, 1).0)
        }),
    ]
}

/// One suite entry as a compact JSON object (no trailing newline).
fn entry_obj(e: &BenchEntry) -> String {
    let spans = e
        .spans
        .iter()
        .map(|(stage, total_us, count)| {
            format!("{{\"stage\":\"{stage}\",\"total_us\":{total_us},\"count\":{count}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"suite\":\"{}\",\"refs\":{},\"runs\":{},\"median_ns_per_ref\":{:.3},\
         \"refs_per_sec\":{:.0},\"wall_ms\":{:.3},\"sim_builds\":{},\"spans\":[{spans}]}}",
        e.suite, e.refs, e.runs, e.median_ns_per_ref, e.refs_per_sec, e.wall_ms, e.sim_builds
    )
}

/// Serialize entries as the `BENCH_cachesim.json` document. The
/// `entries` section comes first — one entry per line, what
/// [`check_against`]'s line-wise parser reads (first occurrence wins) —
/// followed by a `trajectory` section: `prior` points carried forward
/// (use [`prior_trajectory`] on the previous document) plus this
/// measurement appended as the newest point, one point object per line.
pub fn bench_json(entries: &[BenchEntry], smoke: bool, prior: &[String]) -> String {
    let mode = if smoke { "smoke" } else { "full" };
    let mut out = String::from("{\n  \"schema\": \"sp-bench-cachesim-v2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n  \"entries\": [\n"));
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            entry_obj(e),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"trajectory\": [\n");
    let current = format!(
        "{{\"point\":0,\"mode\":\"{mode}\",\"suites\":[{}]}}",
        entries.iter().map(entry_obj).collect::<Vec<_>>().join(",")
    );
    let points: Vec<&String> = prior.iter().chain(std::iter::once(&current)).collect();
    for (n, p) in points.iter().enumerate() {
        // Renumber sequentially: every point is `{"point":N,...}` by
        // construction, so splice in the position.
        let tail = p.find(',').map_or("}", |i| &p[i..]);
        out.push_str(&format!(
            "    {{\"point\":{n}{tail}{}\n",
            if n + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract the trajectory points of an existing `BENCH_cachesim.json`
/// so [`bench_json`] can carry them forward. A v2 document contributes
/// its `trajectory` lines verbatim; a v1 document (flat entries, no
/// trajectory) contributes one synthesized point holding its entries.
/// Returns an empty vec for anything unrecognizable.
pub fn prior_trajectory(doc: &str) -> Vec<String> {
    let points: Vec<String> = doc
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"point\":"))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .collect();
    if !points.is_empty() {
        return points;
    }
    // v1: entry objects sit one per line directly under "entries".
    let entries: Vec<String> = doc
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"suite\":"))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let mode = if doc.contains("\"mode\": \"smoke\"") {
        "smoke"
    } else {
        "full"
    };
    vec![format!(
        "{{\"point\":0,\"mode\":\"{mode}\",\"suites\":[{}]}}",
        entries.join(",")
    )]
}

/// Extract `(suite, refs_per_sec)` pairs from a `BENCH_cachesim.json`
/// document (the fixed format written by [`bench_json`]).
pub fn parse_refs_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"suite\":\"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let name = &chunk[..name_end];
        let Some(pos) = chunk.find("\"refs_per_sec\":") else {
            continue;
        };
        let rest = &chunk[pos + "\"refs_per_sec\":".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Trajectory points a suite's rolling baseline is the median of.
pub const ROLLING_WINDOW: usize = 3;

/// Per-suite rolling baseline: each suite's **median refs/sec over the
/// last [`ROLLING_WINDOW`] trajectory points** of `doc` that measured
/// it. One outlier committed point (a loaded or thermally throttled
/// runner) then no longer becomes the sole reference the next check
/// regresses against — the drift across trajectory points 1→3 was
/// exactly that. Falls back to the entries section for documents with
/// no trajectory, and tolerates suites that only appear in recent
/// points (newly added suites contribute the points they have).
pub fn rolling_refs_per_sec(doc: &str) -> Vec<(String, f64)> {
    let points: Vec<&str> = doc
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"point\":"))
        .collect();
    let mut per_suite: Vec<(String, Vec<f64>)> = Vec::new();
    for p in points.iter().rev().take(ROLLING_WINDOW) {
        for (name, v) in parse_refs_per_sec(p) {
            match per_suite.iter_mut().find(|(n, _)| *n == name) {
                Some((_, vs)) => vs.push(v),
                None => per_suite.push((name, vec![v])),
            }
        }
    }
    if per_suite.is_empty() {
        return parse_refs_per_sec(doc);
    }
    per_suite
        .into_iter()
        .map(|(n, mut vs)| {
            vs.sort_by(f64::total_cmp);
            (n, vs[vs.len() / 2])
        })
        .collect()
}

/// Compare `current` against a committed baseline document: each
/// suite's refs/sec must stay within `tolerance` (a fraction, e.g. 0.2)
/// of its rolling trajectory median ([`rolling_refs_per_sec`]). Returns
/// one human-readable line per suite, or `Err` naming the first suite
/// that regressed.
pub fn check_against(
    baseline_json: &str,
    current: &[BenchEntry],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let baseline = rolling_refs_per_sec(baseline_json);
    if baseline.is_empty() {
        return Err("baseline contains no suite entries".into());
    }
    let mut lines = Vec::new();
    for e in current {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == e.suite) else {
            return Err(format!("baseline is missing suite {:?}", e.suite));
        };
        let ratio = e.refs_per_sec / base.max(1e-9);
        lines.push(format!(
            "{:<16} {:>12.0} refs/s vs baseline {:>12.0} ({:+.1}%)",
            e.suite,
            e.refs_per_sec,
            base,
            (ratio - 1.0) * 100.0
        ));
        if ratio < 1.0 - tolerance {
            return Err(format!(
                "{}: refs/sec regressed {:.1}% (current {:.0}, baseline {:.0}, tolerance {:.0}%)",
                e.suite,
                (1.0 - ratio) * 100.0,
                e.refs_per_sec,
                base,
                tolerance * 100.0
            ));
        }
    }
    Ok(lines)
}

/// Render the suite as an aligned text table.
pub fn render_entries(entries: &[BenchEntry]) -> String {
    let mut s = format!(
        "{:<16} {:>10} {:>6} {:>12} {:>14} {:>10} {:>11}\n",
        "suite", "refs/run", "runs", "ns/ref", "refs/sec", "wall ms", "sim builds"
    );
    for e in entries {
        s.push_str(&format!(
            "{:<16} {:>10} {:>6} {:>12.2} {:>14.0} {:>10.3} {:>11}\n",
            e.suite, e.refs, e.runs, e.median_ns_per_ref, e.refs_per_sec, e.wall_ms, e.sim_builds
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(suite: &'static str, rps: f64) -> BenchEntry {
        BenchEntry {
            suite,
            refs: 1000,
            runs: 3,
            median_ns_per_ref: 1e9 / rps,
            refs_per_sec: rps,
            wall_ms: 1.0,
            sim_builds: 1,
            spans: vec![("compile", 40, 1), ("simulate", 120, 6)],
        }
    }

    #[test]
    fn json_roundtrips_through_the_checker_parser() {
        let entries = vec![entry("set_hammer", 1e7), entry("fig2_em3d_sweep", 2e6)];
        let json = bench_json(&entries, false, &[]);
        assert!(json.contains("\"schema\": \"sp-bench-cachesim-v2\""));
        assert!(json.contains("\"mode\": \"full\""));
        assert!(
            json.contains("{\"stage\":\"simulate\",\"total_us\":120,\"count\":6}"),
            "{json}"
        );
        // Every suite appears twice (entries + the newest trajectory
        // point); the checker reads the first occurrence, the entries.
        let parsed = parse_refs_per_sec(&json);
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0].0, "set_hammer");
        assert!((parsed[0].1 - 1e7).abs() < 1.0);
        assert!((parsed[1].1 - 2e6).abs() < 1.0);
    }

    #[test]
    fn trajectory_carries_prior_points_forward() {
        // A fresh document holds exactly one point.
        let first = bench_json(&[entry("set_hammer", 1e6)], false, &[]);
        assert!(first.contains("{\"point\":0,\"mode\":\"full\""), "{first}");
        assert_eq!(prior_trajectory(&first).len(), 1);

        // Re-benching on top of it appends point 1 and keeps point 0.
        let second = bench_json(&[entry("set_hammer", 2e6)], true, &prior_trajectory(&first));
        assert!(
            second.contains("{\"point\":0,\"mode\":\"full\""),
            "{second}"
        );
        assert!(
            second.contains("{\"point\":1,\"mode\":\"smoke\""),
            "{second}"
        );
        assert_eq!(prior_trajectory(&second).len(), 2);

        // The checker still reads the newest measurement: the entries
        // section precedes the trajectory, and first occurrence wins.
        let check = check_against(&second, &[entry("set_hammer", 2e6)], 0.01).unwrap();
        assert!(check[0].contains("+0.0%"), "{check:?}");

        // A v1 document (flat entries, no trajectory) synthesizes its
        // single point from the entry lines.
        let v1 = "{\n  \"schema\": \"sp-bench-cachesim-v1\",\n  \"mode\": \"full\",\n  \
                  \"entries\": [\n    {\"suite\":\"set_hammer\",\"refs\":10,\"runs\":3,\
                  \"median_ns_per_ref\":1.000,\"refs_per_sec\":1000000000,\"wall_ms\":0.001,\
                  \"sim_builds\":1}\n  ]\n}\n";
        let synth = prior_trajectory(v1);
        assert_eq!(synth.len(), 1);
        assert!(
            synth[0].starts_with(
                "{\"point\":0,\"mode\":\"full\",\"suites\":[{\"suite\":\"set_hammer\""
            ),
            "{synth:?}"
        );
        assert!(prior_trajectory("{}").is_empty());
    }

    #[test]
    fn smoke_suite_runs_and_serializes() {
        let entries = run_baseline(true);
        assert_eq!(entries.len(), SUITE_NAMES.len());
        for (e, want) in entries.iter().zip(SUITE_NAMES) {
            assert_eq!(e.suite, want);
            assert!(e.refs > 0 && e.refs_per_sec > 0.0, "{e:?}");
            // The extra traced pass sees the whole pipeline: every suite
            // compiles its trace and replays it.
            let stages: Vec<&str> = e.spans.iter().map(|(n, _, _)| *n).collect();
            assert!(stages.contains(&"compile"), "{e:?}");
            assert!(stages.contains(&"simulate"), "{e:?}");
        }
        let json = bench_json(&entries, true, &[]);
        assert_eq!(parse_refs_per_sec(&json).len(), 2 * SUITE_NAMES.len());
        assert!(check_against(&json, &entries, 0.99).is_ok());
        assert!(!render_entries(&entries).is_empty());
    }
}
