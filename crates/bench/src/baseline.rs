//! The tracked cachesim benchmark baseline behind `spt bench`.
//!
//! A pinned micro+macro suite measured in-process with repeated runs and
//! a median, so the numbers are comparable across commits:
//!
//! * `set_hammer` — a synthetic single-set conflict stream through
//!   [`run_original_passes`]: pure cache/replacement throughput, no
//!   prefetchers, no helper thread.
//! * `fig2_em3d_sweep` — the Figure 2 EM3D distance sweep at test scale,
//!   serial (`--jobs 1`): the full sweep hot path (compile + replay per
//!   grid point) as every figure driver runs it.
//! * `fig5_mcf_sweep` — the Figure 5 MCF distance sweep at test scale,
//!   serial: the acceptance benchmark of the hot-path overhaul.
//!
//! Each entry reports median ns per simulated reference, the derived
//! refs/sec, the median per-run wall time, and the number of
//! `MemorySystem` constructions per run (the allocations-per-run proxy —
//! see [`sp_cachesim::sim_build_count`]). `spt bench` serializes the
//! suite to `BENCH_cachesim.json`, the repository's benchmark
//! trajectory; CI re-runs the suite in smoke mode and fails on a >20%
//! refs/sec regression against the committed baseline.

use crate::experiments::{fig2_at, fig_behavior_at, Scale};
use sp_cachesim::{sim_build_count, CacheConfig};
use sp_core::{run_original_passes, RunResult, Sweep};
use sp_trace::synth;
use sp_workloads::Benchmark;
use std::time::Instant;

/// One measured suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Suite name (one of [`SUITE_NAMES`]).
    pub suite: &'static str,
    /// Simulated references per run (demand accesses of every thread,
    /// summed over all grid points for the sweep suites). Identical
    /// pre/post optimization — the counters are bit-exact.
    pub refs: u64,
    /// Timed repetitions the median is taken over.
    pub runs: usize,
    /// Median wall time per simulated reference, nanoseconds.
    pub median_ns_per_ref: f64,
    /// `1e9 / median_ns_per_ref` — the regression-checked throughput.
    pub refs_per_sec: f64,
    /// Median wall time of one full run, milliseconds (for the sweep
    /// suites this is the sweep wall time at `--jobs 1`).
    pub wall_ms: f64,
    /// `MemorySystem` constructions per run (allocation proxy).
    pub sim_builds: u64,
}

/// Every suite the baseline runs, in order.
pub const SUITE_NAMES: [&str; 3] = ["set_hammer", "fig2_em3d_sweep", "fig5_mcf_sweep"];

/// Demand accesses simulated by one run (all threads, all grid points).
fn sweep_refs(s: &Sweep) -> u64 {
    let one = |r: &RunResult| r.stats.main.demand_accesses() + r.stats.helper.demand_accesses();
    one(&s.baseline) + s.points.iter().map(|p| one(&p.run)).sum::<u64>()
}

/// Time `f` over `runs` repetitions (after one untimed warmup) and fold
/// the samples into a [`BenchEntry`]. `f` returns the number of
/// references the run simulated.
fn measure(suite: &'static str, runs: usize, mut f: impl FnMut() -> u64) -> BenchEntry {
    let refs = f(); // warmup; also establishes the per-run ref count
    let builds_before = sim_build_count();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        let got = f();
        samples.push(t.elapsed().as_secs_f64());
        assert_eq!(got, refs, "{suite}: runs must simulate identical work");
    }
    let sim_builds = (sim_build_count() - builds_before) / runs as u64;
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let median_ns_per_ref = median * 1e9 / refs.max(1) as f64;
    BenchEntry {
        suite,
        refs,
        runs,
        median_ns_per_ref,
        refs_per_sec: 1e9 / median_ns_per_ref.max(1e-9),
        wall_ms: median * 1e3,
        sim_builds,
    }
}

/// Run the pinned suite. `smoke` keeps the workloads identical (so
/// refs/sec stays comparable to a full-mode baseline) but takes the
/// median over fewer repetitions.
pub fn run_baseline(smoke: bool) -> Vec<BenchEntry> {
    let runs = if smoke { 3 } else { 9 };
    let cfg = CacheConfig::scaled_default();
    let hammer = synth::set_hammer(4096, 2, 0, cfg.l2.sets(), cfg.l2.line_size);
    vec![
        measure("set_hammer", runs, || {
            let r = run_original_passes(&hammer, cfg, 2);
            r.stats.main.demand_accesses()
        }),
        measure("fig2_em3d_sweep", runs, || {
            sweep_refs(&fig2_at(cfg, Scale::Test, 1).0)
        }),
        measure("fig5_mcf_sweep", runs, || {
            sweep_refs(&fig_behavior_at(Benchmark::Mcf, cfg, Scale::Test, 1).0.sweep)
        }),
    ]
}

/// Serialize entries as the `BENCH_cachesim.json` document (one entry
/// per line — the checker in [`check_against`] scans line-wise).
pub fn bench_json(entries: &[BenchEntry], smoke: bool) -> String {
    let mut out = String::from("{\n  \"schema\": \"sp-bench-cachesim-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"entries\": [\n",
        if smoke { "smoke" } else { "full" }
    ));
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"suite\":\"{}\",\"refs\":{},\"runs\":{},\"median_ns_per_ref\":{:.3},\
             \"refs_per_sec\":{:.0},\"wall_ms\":{:.3},\"sim_builds\":{}}}{}\n",
            e.suite,
            e.refs,
            e.runs,
            e.median_ns_per_ref,
            e.refs_per_sec,
            e.wall_ms,
            e.sim_builds,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(suite, refs_per_sec)` pairs from a `BENCH_cachesim.json`
/// document (the fixed format written by [`bench_json`]).
pub fn parse_refs_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"suite\":\"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let name = &chunk[..name_end];
        let Some(pos) = chunk.find("\"refs_per_sec\":") else {
            continue;
        };
        let rest = &chunk[pos + "\"refs_per_sec\":".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Compare `current` against a committed baseline document. Returns one
/// human-readable line per suite, or `Err` naming the first suite whose
/// refs/sec regressed by more than `tolerance` (a fraction, e.g. 0.2).
pub fn check_against(
    baseline_json: &str,
    current: &[BenchEntry],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let baseline = parse_refs_per_sec(baseline_json);
    if baseline.is_empty() {
        return Err("baseline contains no suite entries".into());
    }
    let mut lines = Vec::new();
    for e in current {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == e.suite) else {
            return Err(format!("baseline is missing suite {:?}", e.suite));
        };
        let ratio = e.refs_per_sec / base.max(1e-9);
        lines.push(format!(
            "{:<16} {:>12.0} refs/s vs baseline {:>12.0} ({:+.1}%)",
            e.suite,
            e.refs_per_sec,
            base,
            (ratio - 1.0) * 100.0
        ));
        if ratio < 1.0 - tolerance {
            return Err(format!(
                "{}: refs/sec regressed {:.1}% (current {:.0}, baseline {:.0}, tolerance {:.0}%)",
                e.suite,
                (1.0 - ratio) * 100.0,
                e.refs_per_sec,
                base,
                tolerance * 100.0
            ));
        }
    }
    Ok(lines)
}

/// Render the suite as an aligned text table.
pub fn render_entries(entries: &[BenchEntry]) -> String {
    let mut s = format!(
        "{:<16} {:>10} {:>6} {:>12} {:>14} {:>10} {:>11}\n",
        "suite", "refs/run", "runs", "ns/ref", "refs/sec", "wall ms", "sim builds"
    );
    for e in entries {
        s.push_str(&format!(
            "{:<16} {:>10} {:>6} {:>12.2} {:>14.0} {:>10.3} {:>11}\n",
            e.suite, e.refs, e.runs, e.median_ns_per_ref, e.refs_per_sec, e.wall_ms, e.sim_builds
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(suite: &'static str, rps: f64) -> BenchEntry {
        BenchEntry {
            suite,
            refs: 1000,
            runs: 3,
            median_ns_per_ref: 1e9 / rps,
            refs_per_sec: rps,
            wall_ms: 1.0,
            sim_builds: 1,
        }
    }

    #[test]
    fn json_roundtrips_through_the_checker_parser() {
        let entries = vec![entry("set_hammer", 1e7), entry("fig2_em3d_sweep", 2e6)];
        let json = bench_json(&entries, false);
        assert!(json.contains("\"schema\": \"sp-bench-cachesim-v1\""));
        assert!(json.contains("\"mode\": \"full\""));
        let parsed = parse_refs_per_sec(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "set_hammer");
        assert!((parsed[0].1 - 1e7).abs() < 1.0);
        assert!((parsed[1].1 - 2e6).abs() < 1.0);
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let base = bench_json(&[entry("set_hammer", 1e6)], false);
        let ok = check_against(&base, &[entry("set_hammer", 0.9e6)], 0.2).unwrap();
        assert_eq!(ok.len(), 1, "10% down is within a 20% tolerance");
        let err = check_against(&base, &[entry("set_hammer", 0.7e6)], 0.2).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        let err = check_against(&base, &[entry("other", 1e6)], 0.2).unwrap_err();
        assert!(err.contains("missing suite"), "{err}");
        assert!(check_against("{}", &[entry("set_hammer", 1e6)], 0.2).is_err());
    }

    #[test]
    fn smoke_suite_runs_and_serializes() {
        let entries = run_baseline(true);
        assert_eq!(entries.len(), SUITE_NAMES.len());
        for (e, want) in entries.iter().zip(SUITE_NAMES) {
            assert_eq!(e.suite, want);
            assert!(e.refs > 0 && e.refs_per_sec > 0.0, "{e:?}");
        }
        let json = bench_json(&entries, true);
        assert_eq!(parse_refs_per_sec(&json).len(), SUITE_NAMES.len());
        assert!(check_against(&json, &entries, 0.99).is_ok());
        assert!(!render_entries(&entries).is_empty());
    }
}
