//! Regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [table1|table2|fig2|fig4|fig5|fig6|all] [--out DIR]
//!           [--jobs N] [--smoke]
//! ```
//!
//! Prints aligned text tables (with the paper's reference values beside
//! the measured ones) and writes one CSV per artifact under `--out`
//! (default `results/`).
//!
//! `--jobs N` fans the independent simulations of each artifact out on
//! up to `N` worker threads (default: all cores; `--jobs 1` is the
//! serial reference). The output — stdout tables and CSV bytes — is
//! identical whatever `N` is; a summary line at the end reports the
//! realized parallel speedup. `--smoke` switches to the fast test-scale
//! inputs (what CI runs).

use sp_bench::experiments::{
    fig2_at, fig5_epoch_fixture, fig_behavior_at, selection_jobs, table2_at, table2_paper_jobs,
    Scale, FIG5_EPOCH_L2_KB, FIG5_EPOCH_L2_WAYS, FIG5_EPOCH_LEN, SELECTION_THRESHOLD,
};
use sp_bench::plot::{line_chart, save_svg, ChartConfig, Series};
use sp_bench::report::{
    epoch_ndjson, epoch_report_markdown, render_runner_summary, render_table, sweep_rows,
    table2_rows, write_atomic, write_csv, EpochReportMeta, SWEEP_HEADER, TABLE2_HEADER,
};
use sp_cachesim::CacheConfig;
use sp_core::RunnerReport;
use sp_workloads::Benchmark;
use std::path::{Path, PathBuf};

fn die(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut out = PathBuf::from("results");
    let mut jobs = 0usize; // 0 = all cores
    let mut scale = Scale::Scaled;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => die("--out needs a directory"),
            },
            "--jobs" => match it.next().map(|v| (v, v.parse())) {
                Some((_, Ok(n))) => jobs = n,
                Some((v, Err(_))) => die(&format!("--jobs: {v:?} is not a number")),
                None => die("--jobs needs a count"),
            },
            "--smoke" => scale = Scale::Test,
            other if !other.starts_with('-') => what = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = CacheConfig::scaled_default();
    let run_all = what == "all";
    let mut total = RunnerReport::empty();
    if run_all || what == "table1" {
        print_table1(&cfg);
    }
    if run_all || what == "table2" {
        total.absorb(&print_table2(&cfg, scale, jobs, &out));
    }
    if run_all || what == "selection" {
        total.absorb(&print_selection(&cfg, jobs, &out));
    }
    if what == "table2paper" {
        // Not part of `all`: streams ~2x10^8 references (about a minute).
        total.absorb(&print_table2_paper(jobs, &out));
    }
    if run_all || what == "fig2" {
        total.absorb(&print_fig2(cfg, scale, jobs, &out));
    }
    for (name, b) in [
        ("fig4", Benchmark::Em3d),
        ("fig5", Benchmark::Mcf),
        ("fig6", Benchmark::Mst),
    ] {
        if run_all || what == name {
            total.absorb(&print_fig_behavior(name, b, cfg, scale, jobs, &out));
        }
    }
    if run_all || what == "fig5" {
        total.absorb(&print_fig5_epochs(jobs, &out));
    }
    if !run_all
        && ![
            "table1",
            "table2",
            "table2paper",
            "selection",
            "fig2",
            "fig4",
            "fig5",
            "fig6",
        ]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown artifact {what}; expected table1|table2|table2paper|selection|fig2|fig4|fig5|fig6|all"
        );
        std::process::exit(2);
    }
    if total.jobs > 0 {
        println!("{}", render_runner_summary(&total));
    }
}

fn print_table1(cfg: &CacheConfig) {
    println!("== Table 1: hardware system (simulated substitute) ==\n");
    let paper = CacheConfig::core2_q6600();
    let geo = |c: &CacheConfig| {
        vec![
            format!(
                "{}KB, {}-way, {}B lines",
                c.l1.size_bytes / 1024,
                c.l1.ways,
                c.l1.line_size
            ),
            format!(
                "{}KB shared, {}-way, {}B lines ({} sets)",
                c.l2.size_bytes / 1024,
                c.l2.ways,
                c.l2.line_size,
                c.l2.sets()
            ),
        ]
    };
    let (p, s) = (geo(&paper), geo(cfg));
    let rows = vec![
        vec![
            "Processor".into(),
            "Intel Core 2 Quad Q6600".into(),
            "2-core CMP simulator".into(),
        ],
        vec!["L1 DCache".into(), p[0].clone(), s[0].clone()],
        vec!["L2 unified".into(), p[1].clone(), s[1].clone()],
        vec![
            "Latencies".into(),
            "(hardware)".into(),
            format!(
                "L1 {}cy, L2 {}cy, mem {}cy, bus {}cy/line",
                cfg.latency.l1_hit, cfg.latency.l2_hit, cfg.latency.mem, cfg.latency.bus_service
            ),
        ],
        vec![
            "Prefetchers".into(),
            "2x streamer + 2x DPL".into(),
            format!(
                "per-core streamer (deg {}) + DPL (deg {}), {}",
                cfg.stream_degree,
                cfg.dpl_degree,
                if cfg.hw_prefetchers {
                    "enabled"
                } else {
                    "disabled"
                }
            ),
        ],
        vec![
            "OS".into(),
            "Fedora 9, kernel 2.6.25".into(),
            "n/a (simulated)".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["component", "paper (Table 1)", "this reproduction"],
            &rows
        )
    );
}

fn print_table2(cfg: &CacheConfig, scale: Scale, jobs: usize, out: &Path) -> RunnerReport {
    println!("== Table 2: benchmark characteristics ==\n");
    let (rows_data, report) = table2_at(cfg, scale, jobs);
    let rows = table2_rows(&rows_data);
    println!("{}", render_table(&TABLE2_HEADER, &rows));
    write_csv(&out.join("table2.csv"), &TABLE2_HEADER, &rows).expect("write table2.csv");
    report
}

fn print_table2_paper(jobs: usize, out: &Path) -> RunnerReport {
    println!("== Table 2 at PAPER scale: paper inputs on the 4MB 16-way L2 ==");
    println!("   (streaming analysis; takes a minute)\n");
    let (rows_data, report) = table2_paper_jobs(10_000, jobs);
    let fmt = |r: Option<(u32, u32)>| match r {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "(no overflow)".into(),
    };
    let header = [
        "benchmark",
        "input",
        "SA(L,Sx) measured",
        "paper SA",
        "bound",
        "paper bound",
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.input.clone(),
                fmt(r.sa_range),
                r.paper_range.to_string(),
                r.distance_bound
                    .map(|d| format!("< {}", d + 1))
                    .unwrap_or("-".into()),
                r.paper_bound.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    write_csv(&out.join("table2_paper.csv"), &header, &rows).expect("write table2_paper.csv");
    report
}

fn print_selection(cfg: &CacheConfig, jobs: usize, out: &Path) -> RunnerReport {
    println!(
        "== Benchmark selection (paper SIV.B): L2-miss cycle share, threshold {:.0}% ==\n",
        SELECTION_THRESHOLD * 100.0
    );
    let header = [
        "candidate",
        "miss cycles",
        "total cycles",
        "miss share",
        "verdict",
        "paper",
    ];
    let (selection_rows, report) = selection_jobs(cfg, jobs);
    let rows: Vec<Vec<String>> = selection_rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.profile.miss_cycles.to_string(),
                r.profile.total().to_string(),
                format!("{:.1}%", r.profile.miss_share() * 100.0),
                if r.selected {
                    "selected".into()
                } else {
                    "rejected".into()
                },
                match r.name.as_str() {
                    "EM3D" | "MCF" | "MST" => "selected".into(),
                    _ => "screened out".to_string(),
                },
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    write_csv(&out.join("selection.csv"), &header, &rows).expect("write selection.csv");
    report
}

fn print_fig2(cfg: CacheConfig, scale: Scale, jobs: usize, out: &Path) -> RunnerReport {
    println!("== Figure 2: EM3D performance vs prefetch distance ==");
    println!("   (paper: all three normalized curves rise with distance)\n");
    let (s, report) = fig2_at(cfg, scale, jobs);
    let rows = sweep_rows(&s);
    println!("{}", render_table(&SWEEP_HEADER, &rows));
    write_csv(&out.join("fig2_em3d.csv"), &SWEEP_HEADER, &rows).expect("write fig2 csv");
    let xs: Vec<f64> = s.points.iter().map(|p| p.distance as f64).collect();
    let series = vec![
        Series::new(
            "Normalized_Runtime",
            &xs,
            &s.points.iter().map(|p| p.runtime_norm).collect::<Vec<_>>(),
        ),
        Series::new(
            "Normalized_MemoryAccesses",
            &xs,
            &s.points
                .iter()
                .map(|p| p.memory_accesses_norm)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Normalized_HotMisses",
            &xs,
            &s.points
                .iter()
                .map(|p| p.hot_misses_norm)
                .collect::<Vec<_>>(),
        ),
    ];
    let svg = line_chart(
        "Fig. 2: EM3D performance vs prefetch distance",
        "prefetch distance (log)",
        "normalized to original",
        &series,
        ChartConfig::default(),
    );
    save_svg(&out.join("fig2_em3d.svg"), &svg).expect("write fig2 svg");
    report
}

/// The fig5-MCF epoch flight-recorder fixture: always test scale (see
/// [`fig5_epoch_fixture`]), so the NDJSON + markdown artifacts are
/// byte-identical whatever `--smoke` or `--jobs` says — they are the
/// repository's golden epoch fixtures, pinned by
/// `tests/report_golden.rs` and the CI `report-smoke` diff.
fn print_fig5_epochs(jobs: usize, out: &Path) -> RunnerReport {
    println!(
        "== Figure 5 epochs: MCF flight recorder (tiny input, {FIG5_EPOCH_L2_KB}KB \
         {FIG5_EPOCH_L2_WAYS}-way L2, epoch {FIG5_EPOCH_LEN}) ==\n"
    );
    let (sweep, epochs, bound, report) = fig5_epoch_fixture(jobs);
    let meta = EpochReportMeta {
        bench: "MCF",
        scale: "tiny",
        rp: 0.5,
        bound,
    };
    write_atomic(
        &out.join("fig5_mcf_epochs.ndjson"),
        &epoch_ndjson(&sweep, &epochs),
    )
    .expect("write epoch ndjson");
    write_atomic(
        &out.join("fig5_mcf_epoch_report.md"),
        &epoch_report_markdown(&meta, &sweep, &epochs),
    )
    .expect("write epoch report");
    println!(
        "bound {:?}; {} baseline windows; wrote fig5_mcf_epochs.ndjson + fig5_mcf_epoch_report.md\n",
        bound,
        epochs.baseline.len()
    );
    report
}

fn print_fig_behavior(
    name: &str,
    b: Benchmark,
    cfg: CacheConfig,
    scale: Scale,
    jobs: usize,
    out: &Path,
) -> RunnerReport {
    let (series, report) = fig_behavior_at(b, cfg, scale, jobs);
    println!(
        "== Figure {}: {} behaviour change vs prefetch distance (bound = {:?}) ==\n",
        &name[3..],
        series.benchmark,
        series.bound
    );
    let rows = sweep_rows(&series.sweep);
    println!("{}", render_table(&SWEEP_HEADER, &rows));
    let stem = format!("{name}_{}", series.benchmark.to_lowercase());
    write_csv(&out.join(format!("{stem}.csv")), &SWEEP_HEADER, &rows).expect("write behaviour csv");
    let pts = &series.sweep.points;
    let xs: Vec<f64> = pts.iter().map(|p| p.distance as f64).collect();
    let behaviour = vec![
        Series::new(
            "Totally_hit",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.totally_hit_pct)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Totally_miss",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.totally_miss_pct)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Partially_hit",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.partially_hit_pct)
                .collect::<Vec<_>>(),
        ),
    ];
    let fig_no = &name[3..];
    let svg = line_chart(
        &format!(
            "Fig. {fig_no}(a): {} access-behaviour change (bound {:?})",
            series.benchmark, series.bound
        ),
        "prefetch distance (log)",
        "change, % of original memory accesses",
        &behaviour,
        ChartConfig::default(),
    );
    save_svg(&out.join(format!("{stem}_behavior.svg")), &svg).expect("write behaviour svg");
    let runtime = vec![Series::new(
        "Normalized runtime",
        &xs,
        &pts.iter().map(|p| p.runtime_norm).collect::<Vec<_>>(),
    )];
    let svg = line_chart(
        &format!("Fig. {fig_no}(b): {} normalized runtime", series.benchmark),
        "prefetch distance (log)",
        "runtime / original",
        &runtime,
        ChartConfig::default(),
    );
    save_svg(&out.join(format!("{stem}_runtime.svg")), &svg).expect("write runtime svg");
    report
}
