//! Regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [table1|table2|fig2|fig4|fig5|fig6|all] [--out DIR]
//! ```
//!
//! Prints aligned text tables (with the paper's reference values beside
//! the measured ones) and writes one CSV per artifact under `--out`
//! (default `results/`).

use sp_bench::experiments::{
    self, fig2, fig_behavior, selection, table2, table2_paper, SELECTION_THRESHOLD,
};
use sp_bench::plot::{line_chart, save_svg, ChartConfig, Series};
use sp_bench::report::{render_table, write_csv};
use sp_cachesim::CacheConfig;
use sp_core::Sweep;
use sp_workloads::Benchmark;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut out = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            other if !other.starts_with('-') => what = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = CacheConfig::scaled_default();
    let run_all = what == "all";
    if run_all || what == "table1" {
        print_table1(&cfg);
    }
    if run_all || what == "table2" {
        print_table2(&cfg, &out);
    }
    if run_all || what == "selection" {
        print_selection(&cfg, &out);
    }
    if what == "table2paper" {
        // Not part of `all`: streams ~2x10^8 references (about a minute).
        print_table2_paper(&out);
    }
    if run_all || what == "fig2" {
        print_fig2(cfg, &out);
    }
    for (name, b) in [
        ("fig4", Benchmark::Em3d),
        ("fig5", Benchmark::Mcf),
        ("fig6", Benchmark::Mst),
    ] {
        if run_all || what == name {
            print_fig_behavior(name, b, cfg, &out);
        }
    }
    if !run_all
        && ![
            "table1",
            "table2",
            "table2paper",
            "selection",
            "fig2",
            "fig4",
            "fig5",
            "fig6",
        ]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown artifact {what}; expected table1|table2|table2paper|selection|fig2|fig4|fig5|fig6|all"
        );
        std::process::exit(2);
    }
}

fn print_table1(cfg: &CacheConfig) {
    println!("== Table 1: hardware system (simulated substitute) ==\n");
    let paper = CacheConfig::core2_q6600();
    let geo = |c: &CacheConfig| {
        vec![
            format!(
                "{}KB, {}-way, {}B lines",
                c.l1.size_bytes / 1024,
                c.l1.ways,
                c.l1.line_size
            ),
            format!(
                "{}KB shared, {}-way, {}B lines ({} sets)",
                c.l2.size_bytes / 1024,
                c.l2.ways,
                c.l2.line_size,
                c.l2.sets()
            ),
        ]
    };
    let (p, s) = (geo(&paper), geo(cfg));
    let rows = vec![
        vec![
            "Processor".into(),
            "Intel Core 2 Quad Q6600".into(),
            "2-core CMP simulator".into(),
        ],
        vec!["L1 DCache".into(), p[0].clone(), s[0].clone()],
        vec!["L2 unified".into(), p[1].clone(), s[1].clone()],
        vec![
            "Latencies".into(),
            "(hardware)".into(),
            format!(
                "L1 {}cy, L2 {}cy, mem {}cy, bus {}cy/line",
                cfg.latency.l1_hit, cfg.latency.l2_hit, cfg.latency.mem, cfg.latency.bus_service
            ),
        ],
        vec![
            "Prefetchers".into(),
            "2x streamer + 2x DPL".into(),
            format!(
                "per-core streamer (deg {}) + DPL (deg {}), {}",
                cfg.stream_degree,
                cfg.dpl_degree,
                if cfg.hw_prefetchers {
                    "enabled"
                } else {
                    "disabled"
                }
            ),
        ],
        vec![
            "OS".into(),
            "Fedora 9, kernel 2.6.25".into(),
            "n/a (simulated)".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["component", "paper (Table 1)", "this reproduction"],
            &rows
        )
    );
}

fn print_table2(cfg: &CacheConfig, out: &Path) {
    println!("== Table 2: benchmark characteristics ==\n");
    let paper_ranges = [
        ("EM3D", "[40, 360]"),
        ("MCF", "[3000, 46000]"),
        ("MST", "[6300, 10000]"),
    ];
    let rows_data = table2(cfg);
    let fmt_range = |r: Option<(u32, u32)>| match r {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "(no overflow)".into(),
    };
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .zip(paper_ranges)
        .map(|(r, (_, paper_sa))| {
            vec![
                r.benchmark.to_string(),
                r.input.clone(),
                r.iterations.to_string(),
                fmt_range(r.sa_range),
                fmt_range(r.sa_sampled),
                paper_sa.to_string(),
                r.distance_bound
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                format!("{:.3}", r.calr),
                format!("{:.2}", r.rp),
            ]
        })
        .collect();
    let header = [
        "benchmark",
        "input (scaled)",
        "outer iters",
        "SA(L,Sx) full",
        "SA(L,Sx) sampled",
        "paper SA",
        "dist bound",
        "CALR",
        "RP",
    ];
    println!("{}", render_table(&header, &rows));
    write_csv(&out.join("table2.csv"), &header, &rows).expect("write table2.csv");
}

fn print_table2_paper(out: &Path) {
    println!("== Table 2 at PAPER scale: paper inputs on the 4MB 16-way L2 ==");
    println!("   (streaming analysis; takes a minute)\n");
    let rows_data = table2_paper(10_000);
    let fmt = |r: Option<(u32, u32)>| match r {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "(no overflow)".into(),
    };
    let header = [
        "benchmark",
        "input",
        "SA(L,Sx) measured",
        "paper SA",
        "bound",
        "paper bound",
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.input.clone(),
                fmt(r.sa_range),
                r.paper_range.to_string(),
                r.distance_bound
                    .map(|d| format!("< {}", d + 1))
                    .unwrap_or("-".into()),
                r.paper_bound.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    write_csv(&out.join("table2_paper.csv"), &header, &rows).expect("write table2_paper.csv");
}

fn print_selection(cfg: &CacheConfig, out: &Path) {
    println!(
        "== Benchmark selection (paper SIV.B): L2-miss cycle share, threshold {:.0}% ==\n",
        SELECTION_THRESHOLD * 100.0
    );
    let header = [
        "candidate",
        "miss cycles",
        "total cycles",
        "miss share",
        "verdict",
        "paper",
    ];
    let rows: Vec<Vec<String>> = selection(cfg)
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.profile.miss_cycles.to_string(),
                r.profile.total().to_string(),
                format!("{:.1}%", r.profile.miss_share() * 100.0),
                if r.selected {
                    "selected".into()
                } else {
                    "rejected".into()
                },
                match r.name.as_str() {
                    "EM3D" | "MCF" | "MST" => "selected".into(),
                    _ => "screened out".to_string(),
                },
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    write_csv(&out.join("selection.csv"), &header, &rows).expect("write selection.csv");
}

fn sweep_rows(s: &Sweep) -> Vec<Vec<String>> {
    s.points
        .iter()
        .map(|p| {
            vec![
                p.distance.to_string(),
                format!("{:.4}", p.runtime_norm),
                format!("{:.4}", p.memory_accesses_norm),
                format!("{:.4}", p.hot_misses_norm),
                format!("{:.2}", p.behavior.totally_hit_pct),
                format!("{:.2}", p.behavior.totally_miss_pct),
                format!("{:.2}", p.behavior.partially_hit_pct),
                p.pollution.stats.total().to_string(),
                format!("{:.4}", p.pollution.dead_prefetch_rate),
            ]
        })
        .collect()
}

const SWEEP_HEADER: [&str; 9] = [
    "distance",
    "runtime_norm",
    "mem_accesses_norm",
    "hot_misses_norm",
    "d_totally_hit_pct",
    "d_totally_miss_pct",
    "d_partially_hit_pct",
    "pollution_events",
    "dead_prefetch_rate",
];

fn print_fig2(cfg: CacheConfig, out: &Path) {
    println!("== Figure 2: EM3D performance vs prefetch distance ==");
    println!("   (paper: all three normalized curves rise with distance)\n");
    let s = fig2(cfg);
    let rows = sweep_rows(&s);
    println!("{}", render_table(&SWEEP_HEADER, &rows));
    write_csv(&out.join("fig2_em3d.csv"), &SWEEP_HEADER, &rows).expect("write fig2 csv");
    let xs: Vec<f64> = s.points.iter().map(|p| p.distance as f64).collect();
    let series = vec![
        Series::new(
            "Normalized_Runtime",
            &xs,
            &s.points.iter().map(|p| p.runtime_norm).collect::<Vec<_>>(),
        ),
        Series::new(
            "Normalized_MemoryAccesses",
            &xs,
            &s.points
                .iter()
                .map(|p| p.memory_accesses_norm)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Normalized_HotMisses",
            &xs,
            &s.points
                .iter()
                .map(|p| p.hot_misses_norm)
                .collect::<Vec<_>>(),
        ),
    ];
    let svg = line_chart(
        "Fig. 2: EM3D performance vs prefetch distance",
        "prefetch distance (log)",
        "normalized to original",
        &series,
        ChartConfig::default(),
    );
    save_svg(&out.join("fig2_em3d.svg"), &svg).expect("write fig2 svg");
}

fn print_fig_behavior(name: &str, b: Benchmark, cfg: CacheConfig, out: &Path) {
    let series = fig_behavior(b, cfg);
    println!(
        "== Figure {}: {} behaviour change vs prefetch distance (bound = {:?}) ==\n",
        &name[3..],
        series.benchmark,
        series.bound
    );
    let rows = sweep_rows(&series.sweep);
    println!("{}", render_table(&SWEEP_HEADER, &rows));
    let stem = format!("{name}_{}", series.benchmark.to_lowercase());
    write_csv(&out.join(format!("{stem}.csv")), &SWEEP_HEADER, &rows).expect("write behaviour csv");
    let pts = &series.sweep.points;
    let xs: Vec<f64> = pts.iter().map(|p| p.distance as f64).collect();
    let behaviour = vec![
        Series::new(
            "Totally_hit",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.totally_hit_pct)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Totally_miss",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.totally_miss_pct)
                .collect::<Vec<_>>(),
        ),
        Series::new(
            "Partially_hit",
            &xs,
            &pts.iter()
                .map(|p| p.behavior.partially_hit_pct)
                .collect::<Vec<_>>(),
        ),
    ];
    let fig_no = &name[3..];
    let svg = line_chart(
        &format!(
            "Fig. {fig_no}(a): {} access-behaviour change (bound {:?})",
            series.benchmark, series.bound
        ),
        "prefetch distance (log)",
        "change, % of original memory accesses",
        &behaviour,
        ChartConfig::default(),
    );
    save_svg(&out.join(format!("{stem}_behavior.svg")), &svg).expect("write behaviour svg");
    let runtime = vec![Series::new(
        "Normalized runtime",
        &xs,
        &pts.iter().map(|p| p.runtime_norm).collect::<Vec<_>>(),
    )];
    let svg = line_chart(
        &format!("Fig. {fig_no}(b): {} normalized runtime", series.benchmark),
        "prefetch distance (log)",
        "runtime / original",
        &runtime,
        ChartConfig::default(),
    );
    save_svg(&out.join(format!("{stem}_runtime.svg")), &svg).expect("write runtime svg");
    let _ = experiments::distances_for(b);
}
