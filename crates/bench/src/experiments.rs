//! Drivers for every table and figure of the paper.
//!
//! Every driver has a `*_jobs` (or `*_at`) form that fans its
//! independent simulations out on the `sp_runner` executor and returns
//! the executor's timing report alongside the artifact; the plain forms
//! are serial (`jobs = 1`) wrappers kept for callers that don't care.

use sp_cachesim::{CacheConfig, HwBackend};
use sp_core::prelude::*;
use sp_core::{estimate_calr, map_jobs, run_jobs, sampled_set_affinity, RunnerReport, Sweep};
use sp_profiler::{select_benchmarks, BurstSampler, SelectionRow};
use sp_workloads::{Benchmark, Candidate, KernelKind, ScaleTier, Workload, WorkloadBuilder};

/// Which input sizes the drivers simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// `Workload::tiny` inputs — seconds-fast, used by the golden-output
    /// tests and `reproduce --smoke`.
    Test,
    /// `Workload::scaled` inputs — the default reproduction scale.
    Scaled,
}

impl Scale {
    /// Build `b` at this scale.
    pub fn workload(self, b: Benchmark) -> Workload {
        match self {
            Scale::Test => Workload::tiny(b),
            Scale::Scaled => Workload::scaled(b),
        }
    }

    /// The workload-builder tier this scale maps to.
    pub fn tier(self) -> ScaleTier {
        match self {
            Scale::Test => ScaleTier::Tiny,
            Scale::Scaled => ScaleTier::Scaled,
        }
    }
}

/// Distance grid for the EM3D sweeps (Figures 2 and 4). The paper sweeps
/// 2..22 around its bound of 20; our scaled bound is ~64, so the grid
/// brackets it the same way (several points below, several above).
pub const DISTANCES_EM3D: &[u32] = &[2, 5, 10, 20, 40, 80, 160, 320];

/// Distance grid for the MCF sweep (Figure 5; paper shows up to 2000,
/// bound < 1500 — ours is ~1300).
pub const DISTANCES_MCF: &[u32] = &[10, 50, 200, 400, 800, 1600, 3200];

/// Distance grid for the MST sweep (Figure 6; paper shows up to 100 with
/// flattening past 30 — our scaled bound is ~330, bracketed likewise).
pub const DISTANCES_MST: &[u32] = &[5, 15, 30, 60, 120, 240, 480, 960];

/// Distance grid shared by the extension kernels (TreeAdd, Health,
/// MatMul, and the four LDS kernels): their working sets — and hence
/// Set-Affinity bounds — sit well below the trio's, so a shorter
/// log-spaced grid brackets every bound.
pub const DISTANCES_LDS: &[u32] = &[2, 4, 8, 16, 32, 64, 128, 256];

/// The sweep grid for a benchmark.
pub fn distances_for(b: Benchmark) -> &'static [u32] {
    distances_for_kernel(KernelKind::from_benchmark(b))
}

/// The sweep grid for any workload-builder kernel.
pub fn distances_for_kernel(k: KernelKind) -> &'static [u32] {
    match k {
        KernelKind::Em3d => DISTANCES_EM3D,
        KernelKind::Mcf => DISTANCES_MCF,
        KernelKind::Mst => DISTANCES_MST,
        _ => DISTANCES_LDS,
    }
}

/// One row of Table 2 (benchmark characteristics).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name as the paper spells it.
    pub benchmark: &'static str,
    /// Input description (Table 2, column 2).
    pub input: String,
    /// Iterations of the outer hot loop (column 3).
    pub iterations: usize,
    /// `SA(L, Sx)` range from the full stream (column 4).
    pub sa_range: Option<(u32, u32)>,
    /// `SA(L, Sx)` range estimated from burst samples (the paper's
    /// low-overhead profiling path, §IV.C).
    pub sa_sampled: Option<(u32, u32)>,
    /// The derived prefetch-distance upper limit (`min SA / 2`, §V.A).
    pub distance_bound: Option<u32>,
    /// Measured CALR of the hot loop (drives `RP`; all three are ~0).
    pub calr: f64,
    /// The RP the selection rule picks.
    pub rp: f64,
}

/// Regenerate Table 2 on the given cache configuration.
pub fn table2(cfg: &CacheConfig) -> Vec<Table2Row> {
    table2_at(cfg, Scale::Scaled, 1).0
}

/// One benchmark's Table 2 row: the full profile → Set Affinity →
/// distance-bound pipeline. Shared by [`table2_at`] (which fans the
/// three benchmarks out) and the sp-serve `affinity` request handler.
pub fn table2_row(cfg: &CacheConfig, scale: Scale, b: Benchmark) -> Table2Row {
    kernel_row(cfg, scale, KernelKind::from_benchmark(b))
}

/// [`table2_row`] generalized over every workload-builder kernel: the
/// same profile pipeline applies unchanged to the extension kernels,
/// so the sp-serve `affinity` handler and the LDS drivers reuse it.
pub fn kernel_row(cfg: &CacheConfig, scale: Scale, kind: KernelKind) -> Table2Row {
    let w = WorkloadBuilder::new(kind).tier(scale.tier()).build();
    let trace = w.trace();
    let rec = recommend_distance(&trace, cfg);
    // Adaptive burst sampling: a burst can only observe Set
    // Affinities shorter than itself, so double the burst length
    // (at a fixed 50% duty cycle) until overflow is observed.
    let mut sampled = sp_core::SetAffinityReport::default();
    for on in [512usize, 2048, 8192, 32768, 131_072] {
        let bursts = BurstSampler::new(on, on).sample(&trace);
        sampled = sampled_set_affinity(&bursts, cfg.l2);
        if sampled.range().is_some() {
            break;
        }
    }
    let calr = estimate_calr(&trace, cfg.l1, cfg.l2, cfg.policy, cfg.latency).calr;
    Table2Row {
        benchmark: kind.name(),
        input: w.input_description(),
        iterations: w.hot_iterations(),
        sa_range: rec.affinity.range(),
        sa_sampled: sampled.range(),
        distance_bound: rec.max_distance,
        calr,
        rp: select_rp(calr),
    }
}

/// [`table2`] at an explicit scale, one fan-out job per benchmark.
pub fn table2_at(cfg: &CacheConfig, scale: Scale, jobs: usize) -> (Vec<Table2Row>, RunnerReport) {
    map_jobs(Benchmark::ALL.to_vec(), |b| table2_row(cfg, scale, b), jobs)
}

/// One row of the **paper-scale** Table 2: Set Affinity measured on the
/// real Core 2 geometry (4MB 16-way L2) with the paper's input sizes,
/// via the streaming reference iterators (the traces would not fit in
/// memory materialized). Comparable 1:1 with the paper's SA column.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2PaperRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Input description.
    pub input: String,
    /// Measured `SA(L, Sx)` range.
    pub sa_range: Option<(u32, u32)>,
    /// Derived distance bound.
    pub distance_bound: Option<u32>,
    /// The paper's published range, for the printout.
    pub paper_range: &'static str,
    /// The paper's published bound.
    pub paper_bound: &'static str,
}

/// Regenerate Table 2 at **paper scale**: paper inputs on the
/// `core2_q6600` L2. Slow (~10^8 references for EM3D/MST) but runs in
/// constant memory. `mst_nodes` lets callers shrink MST (its full trace
/// is O(n^2) iterations); pass 10_000 for the paper's input.
pub fn table2_paper(mst_nodes: usize) -> Vec<Table2PaperRow> {
    table2_paper_jobs(mst_nodes, 1).0
}

/// [`table2_paper`] with the three benchmark streams fanned out as
/// independent jobs — each builds its own layout and streams its own
/// references, so the minute-long analysis parallelizes cleanly.
pub fn table2_paper_jobs(mst_nodes: usize, jobs: usize) -> (Vec<Table2PaperRow>, RunnerReport) {
    use sp_core::runner::Job;
    use sp_core::set_affinity_stream;
    use sp_workloads::{Em3d, Em3dConfig, Mcf, McfConfig, Mst, MstConfig};
    let l2 = CacheConfig::core2_q6600().l2;

    let grid: Vec<Job<'static, Table2PaperRow>> = vec![
        Box::new(move || {
            let em3d = Em3d::build(Em3dConfig::paper());
            let r = set_affinity_stream(em3d.ref_iter().map(|(i, m)| (i, m.vaddr)), l2);
            Table2PaperRow {
                benchmark: "EM3D",
                input: format!(
                    "{} nodes, arity {}",
                    em3d.config().nodes,
                    em3d.config().degree
                ),
                sa_range: r.range(),
                distance_bound: r.distance_bound(),
                paper_range: "[40, 360]",
                paper_bound: "< 20",
            }
        }),
        Box::new(move || {
            let mcf = Mcf::build(McfConfig::paper());
            let r = set_affinity_stream(mcf.ref_iter().map(|(i, m)| (i, m.vaddr)), l2);
            Table2PaperRow {
                benchmark: "MCF",
                input: format!("{} arcs, {} nodes", mcf.config().arcs, mcf.config().nodes),
                sa_range: r.range(),
                distance_bound: r.distance_bound(),
                paper_range: "[3000, 46000]",
                paper_bound: "< 1500",
            }
        }),
        Box::new(move || {
            let mst = Mst::build(MstConfig {
                nodes: mst_nodes,
                ..MstConfig::paper()
            });
            let r = set_affinity_stream(mst.ref_iter().map(|(i, m)| (i, m.vaddr)), l2);
            Table2PaperRow {
                benchmark: "MST",
                input: format!("{} nodes", mst.config().nodes),
                sa_range: r.range(),
                distance_bound: r.distance_bound(),
                paper_range: "[6300, 10000]",
                paper_bound: "< 3150",
            }
        }),
    ];
    run_jobs(grid, jobs)
}

/// The L2-miss cycle share above which a candidate is "memory intensive"
/// (paper §IV.B keeps applications with a "significant number of cycles
/// attributed to the L2 cache misses").
pub const SELECTION_THRESHOLD: f64 = 0.3;

/// The paper's benchmark-selection screen (§IV.B) over the candidate
/// pool: the three selected applications plus screened-out contrasts.
pub fn selection(cfg: &CacheConfig) -> Vec<SelectionRow> {
    selection_jobs(cfg, 1).0
}

/// [`selection`] with the candidate traces built in parallel (the
/// expensive part; the screen itself is a cheap pass over the traces).
pub fn selection_jobs(cfg: &CacheConfig, jobs: usize) -> (Vec<SelectionRow>, RunnerReport) {
    let (candidates, report) = map_jobs(
        Candidate::ALL.to_vec(),
        |c| (c.name().to_string(), c.trace_scaled()),
        jobs,
    );
    (
        select_benchmarks(&candidates, cfg, SELECTION_THRESHOLD),
        report,
    )
}

/// Figure 2: EM3D's normalized hot-loop L2 misses, memory accesses, and
/// runtime over the distance grid.
pub fn fig2(cfg: CacheConfig) -> Sweep {
    fig2_at(cfg, Scale::Scaled, 1).0
}

/// [`fig2`] at an explicit scale, one fan-out job per grid point.
pub fn fig2_at(cfg: CacheConfig, scale: Scale, jobs: usize) -> (Sweep, RunnerReport) {
    let w = scale.workload(Benchmark::Em3d);
    sweep_distances_jobs(&w.trace(), cfg, 0.5, distances_for(Benchmark::Em3d), jobs)
}

/// [`fig2_at`] with the epoch flight recorder attached at the default
/// window length ([`sp_cachesim::DEFAULT_EPOCH_LEN`]). The
/// `epoch_overhead` bench suite times this against `fig2_em3d_sweep`
/// to pin the enabled-recorder cost; the recorder-disabled path is
/// compiled out entirely and gated by the other suites.
#[allow(clippy::type_complexity)]
pub fn fig2_epochs_at(
    cfg: CacheConfig,
    scale: Scale,
    jobs: usize,
) -> (Sweep, sp_core::SweepEpochs, RunnerReport) {
    let w = scale.workload(Benchmark::Em3d);
    let ct = std::sync::Arc::new(sp_core::compile_trace(&w.trace(), &cfg));
    sp_core::sweep_epochs_compiled_jobs_with(
        &ct,
        cfg,
        0.5,
        distances_for(Benchmark::Em3d),
        sp_core::EngineOptions::default(),
        sp_cachesim::DEFAULT_EPOCH_LEN,
        jobs,
    )
    .expect("compiled against this geometry")
}

/// Epoch window length of the fig5-MCF flight-recorder fixture.
pub const FIG5_EPOCH_LEN: u64 = 256;

/// L2 geometry of the fig5-MCF flight-recorder fixture: 16KB 2-way —
/// small enough that the *tiny* MCF working set overflows it the way
/// the paper's full-size MCF overflows a 4MB L2, so the sweep crosses
/// the SA/2 bound inside the grid and the displacement cases switch on
/// past it.
pub const FIG5_EPOCH_L2_KB: u64 = 16;
/// See [`FIG5_EPOCH_L2_KB`].
pub const FIG5_EPOCH_L2_WAYS: u32 = 2;

/// The fig5-MCF epoch fixture: the Figure 5 grid re-run with the epoch
/// flight recorder on the tiny input and the [`FIG5_EPOCH_L2_KB`]
/// geometry, plus the SA/2 bound for the report annotation. Always
/// test scale — the artifacts (`results/fig5_mcf_epochs.ndjson`,
/// `results/fig5_mcf_epoch_report.md`) are golden-pinned byte-for-byte
/// (`tests/report_golden.rs`, the CI `report-smoke` diff), so they
/// must be cheap to regenerate and independent of `--smoke`. Identical
/// to what `spt report --bench mcf --size tiny --l2-kb 16 --ways 2
/// --epoch-len 256` computes.
#[allow(clippy::type_complexity)]
pub fn fig5_epoch_fixture(jobs: usize) -> (Sweep, sp_core::SweepEpochs, Option<u32>, RunnerReport) {
    let mut cfg = CacheConfig::scaled_default();
    cfg.l2 = sp_cachesim::CacheGeometry::new(
        FIG5_EPOCH_L2_KB * 1024,
        FIG5_EPOCH_L2_WAYS,
        cfg.l2.line_size,
    );
    cfg.validate();
    let trace = Scale::Test.workload(Benchmark::Mcf).trace();
    let bound = recommend_distance(&trace, &cfg).max_distance;
    let ct = std::sync::Arc::new(sp_core::compile_trace(&trace, &cfg));
    let (sweep, epochs, report) = sp_core::sweep_epochs_compiled_jobs_with(
        &ct,
        cfg,
        0.5,
        distances_for(Benchmark::Mcf),
        sp_core::EngineOptions::default(),
        FIG5_EPOCH_LEN,
        jobs,
    )
    .expect("compiled against this geometry");
    (sweep, epochs, bound, report)
}

/// [`fig2_at`] through the lane-batched engine: jobs schedule
/// lane-batches of grid points, `lanes` per batch. Bit-identical to
/// [`fig2_at`] (pinned by the lane-vs-scalar differential suite).
pub fn fig2_batched_at(
    cfg: CacheConfig,
    scale: Scale,
    jobs: usize,
    lanes: usize,
) -> (Sweep, RunnerReport) {
    let w = scale.workload(Benchmark::Em3d);
    sp_core::sweep_distances_batched_jobs_with(
        &w.trace(),
        cfg,
        0.5,
        distances_for(Benchmark::Em3d),
        sp_core::EngineOptions::default(),
        jobs,
        lanes,
    )
}

/// The LDS extension sweep: the hash-join probe kernel on the
/// pointer-chase backend over the LDS grid — the benchmark suite's
/// pinned sample of the workload-builder and backend paths (the other
/// kernels and backends are covered by the CI smoke matrix).
pub fn lds_sweep_at(cfg: CacheConfig, scale: Scale, jobs: usize) -> (Sweep, RunnerReport) {
    let cfg = cfg.with_hw_backend(HwBackend::PointerChase);
    let trace = WorkloadBuilder::new(KernelKind::HashJoin)
        .tier(scale.tier())
        .trace();
    sweep_distances_jobs(
        &trace,
        cfg,
        0.5,
        distances_for_kernel(KernelKind::HashJoin),
        jobs,
    )
}

/// The behaviour series of Figures 4(a)/5(a)/6(a) plus the runtime curve
/// of 4(b)/5(b)/6(b) for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorSeries {
    /// Which benchmark.
    pub benchmark: &'static str,
    /// The underlying sweep.
    pub sweep: Sweep,
    /// The Set-Affinity distance bound for this benchmark (vertical line
    /// the curves should bend around).
    pub bound: Option<u32>,
}

/// Figures 4, 5, 6: full behaviour sweep for `b` (RP = 0.5, §V.B).
pub fn fig_behavior(b: Benchmark, cfg: CacheConfig) -> BehaviorSeries {
    fig_behavior_at(b, cfg, Scale::Scaled, 1).0
}

/// [`fig_behavior`] at an explicit scale, one fan-out job per grid point.
pub fn fig_behavior_at(
    b: Benchmark,
    cfg: CacheConfig,
    scale: Scale,
    jobs: usize,
) -> (BehaviorSeries, RunnerReport) {
    let w = scale.workload(b);
    let trace = w.trace();
    let rec = recommend_distance(&trace, &cfg);
    let (sweep, report) = sweep_distances_jobs(&trace, cfg, 0.5, distances_for(b), jobs);
    (
        BehaviorSeries {
            benchmark: b.name(),
            sweep,
            bound: rec.max_distance,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_grids_bracket_each_bound() {
        let cfg = CacheConfig::scaled_default();
        for row in table2(&cfg) {
            let ds = match row.benchmark {
                "EM3D" => distances_for(Benchmark::Em3d),
                "MCF" => distances_for(Benchmark::Mcf),
                "MST" => distances_for(Benchmark::Mst),
                _ => unreachable!(),
            };
            let bound = row.distance_bound.expect("all three workloads overflow");
            assert!(
                ds.iter().any(|&d| d < bound),
                "{}: need points below {bound}",
                row.benchmark
            );
            assert!(
                ds.iter().any(|&d| d > bound),
                "{}: need points above {bound}",
                row.benchmark
            );
        }
    }

    #[test]
    fn selection_accepts_paper_trio_and_rejects_matmul() {
        let cfg = CacheConfig::scaled_default();
        let rows = selection(&cfg);
        assert_eq!(rows.len(), sp_workloads::Candidate::ALL.len());
        for r in &rows {
            match r.name.as_str() {
                "EM3D" | "MCF" | "MST" => {
                    assert!(
                        r.selected,
                        "{} must be selected ({:.2})",
                        r.name,
                        r.profile.miss_share()
                    )
                }
                "MatMul" => {
                    assert!(
                        !r.selected,
                        "MatMul must be rejected ({:.2})",
                        r.profile.miss_share()
                    )
                }
                _ => {}
            }
        }
    }

    #[test]
    fn parallel_drivers_match_serial_at_test_scale() {
        let cfg = CacheConfig::scaled_default();
        let serial = table2_at(&cfg, Scale::Test, 1).0;
        let (parallel, rep) = table2_at(&cfg, Scale::Test, 4);
        assert_eq!(parallel, serial);
        assert_eq!(rep.jobs, Benchmark::ALL.len());

        let fig_serial = fig2_at(cfg, Scale::Test, 1).0;
        let (fig_parallel, rep) = fig2_at(cfg, Scale::Test, 4);
        assert_eq!(fig_parallel, fig_serial);
        assert_eq!(rep.jobs, distances_for(Benchmark::Em3d).len() + 1);
    }

    #[test]
    fn table2_matches_paper_shape() {
        let cfg = CacheConfig::scaled_default();
        let rows = table2(&cfg);
        assert_eq!(rows.len(), 3);
        let sa_min = |r: &Table2Row| r.sa_range.unwrap().0;
        let em3d = &rows[0];
        let mcf = &rows[1];
        let mst = &rows[2];
        // The paper's ordering: EM3D's Set Affinity is far below MCF's
        // and MST's, so its tolerated distance is far smaller.
        assert!(sa_min(em3d) * 4 < sa_min(mcf));
        assert!(sa_min(em3d) * 4 < sa_min(mst));
        // All three hot loops are memory-bound: CALR ~ 0 => RP = 0.5.
        for r in &rows {
            assert!(r.calr < 0.25, "{}: calr {}", r.benchmark, r.calr);
            // CALR ~ 0 => RP ~ 0.5 (the rule interpolates, so allow the
            // small CALR-proportional excess).
            assert!((r.rp - 0.5).abs() < 0.05, "{}: rp {}", r.benchmark, r.rp);
        }
    }
}
