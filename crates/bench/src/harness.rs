//! A minimal, std-only micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets (all `harness = false`) run on this Criterion-shaped shim
//! instead of Criterion itself. It covers exactly the surface the bench
//! files use — groups, sample size, element throughput, parameterized
//! IDs — and prints one line per benchmark with min/mean timings.
//!
//! Passing `--test` (as `cargo test --benches` does) switches to a
//! single-iteration smoke run so benches double as compile-and-run
//! checks without the measurement cost.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state: global sample defaults and quick mode.
pub struct Criterion {
    default_samples: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
            quick: false,
        }
    }
}

impl Criterion {
    /// Build from the process arguments: `--test` (or `--quick`) runs
    /// every benchmark once, just to prove it executes.
    pub fn from_args() -> Criterion {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion {
            quick,
            ..Criterion::default()
        }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            quick: self.quick,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Elements processed per iteration, for per-element rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
}

/// A benchmark's display name, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    quick: bool,
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// The lifetime parameter mirrors Criterion's API so bench files compile
// unchanged; the shim holds no borrow.
#[allow(clippy::needless_lifetimes)]
impl<'a> BenchGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id.clone();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.quick { 1 } else { self.samples };
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b);
        let (min, mean) = b.summary();
        let mut line = format!(
            "{}/{}: min {} mean {} ({} samples)",
            self.name,
            id,
            fmt_duration(min),
            fmt_duration(mean),
            b.times.len()
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!(", {:.1} Melem/s", n as f64 / secs / 1e6));
            }
        }
        println!("{line}");
    }
}

/// Passed to the measured closure; [`iter`](Self::iter) times the body.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: one warmup call, then `sample_size` measured calls.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.times.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = *self.times.iter().min().unwrap();
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        (min, mean)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collect benchmark functions into one named runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $name(&mut c);
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record_samples() {
        let mut c = Criterion {
            default_samples: 3,
            quick: false,
        };
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_function("id", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("sp", 20).id, "sp/20");
        assert_eq!(BenchmarkId::from_parameter("lru").id, "lru");
    }

    #[test]
    fn durations_format_at_every_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000s");
    }
}
