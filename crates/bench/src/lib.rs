//! # sp-bench
//!
//! Experiment drivers shared by the Criterion benches and the
//! `reproduce` binary. One module per paper artifact:
//!
//! * `reproduce table1` — the hardware configuration (simulated).
//! * [`experiments::table2`] — benchmark characteristics: outer-hot-loop
//!   iterations and the Set Affinity range `SA(L, Sx)` per application.
//! * [`experiments::fig2`] — EM3D: normalized hot misses / memory
//!   accesses / runtime vs. prefetch distance.
//! * [`experiments::fig_behavior`] — Figures 4–6: per-benchmark access
//!   behaviour change and normalized runtime vs. prefetch distance.
//!
//! Every driver is deterministic; the `reproduce` binary prints aligned
//! text tables and writes CSV files under `results/`.

pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod plot;
pub mod report;

pub use baseline::{
    bench_json, check_against, parse_refs_per_sec, prior_trajectory, render_entries,
    rolling_refs_per_sec, run_baseline, run_baseline_with, BenchEntry, BATCHED_SWEEP_LANES,
    ROLLING_WINDOW, SUITE_NAMES,
};
pub use experiments::{
    distances_for, distances_for_kernel, fig2, fig2_at, fig2_batched_at, fig2_epochs_at,
    fig5_epoch_fixture, fig_behavior, fig_behavior_at, kernel_row, lds_sweep_at, table2, table2_at,
    table2_row, BehaviorSeries, Scale, Table2Row, DISTANCES_EM3D, DISTANCES_LDS, DISTANCES_MCF,
    DISTANCES_MST, FIG5_EPOCH_L2_KB, FIG5_EPOCH_L2_WAYS, FIG5_EPOCH_LEN,
};
pub use plot::{line_chart, save_svg, ChartConfig, Series};
pub use report::{
    csv_string, epoch_ndjson, epoch_report_markdown, paper_sa_range, render_runner_summary,
    render_table, sparkline, sweep_rows, table2_rows, write_atomic, write_csv, EpochReportMeta,
    SWEEP_HEADER, TABLE2_HEADER,
};
