//! Minimal dependency-free SVG line charts, so `reproduce` can emit the
//! paper's figures as images next to the CSV data.

use std::fmt::Write as _;
use std::path::Path;

/// One line of a chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from parallel slices.
    pub fn new(label: impl Into<String>, xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel");
        Series {
            label: label.into(),
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
        }
    }
}

/// Chart layout parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChartConfig {
    /// Canvas width, px.
    pub width: u32,
    /// Canvas height, px.
    pub height: u32,
    /// Use a log10 x axis (distance sweeps span decades).
    pub log_x: bool,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            width: 720,
            height: 440,
            log_x: true,
        }
    }
}

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 56.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| span / s <= n as f64)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= hi + 1e-9 * span {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v).trim_end_matches(".0").to_string()
    } else {
        format!("{:.2}", v)
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Render a line chart as an SVG document.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    cfg: ChartConfig,
) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let tx = |x: f64| if cfg.log_x { x.max(1e-12).log10() } else { x };
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, y)| (tx(x), y)))
        .collect();
    assert!(!all.is_empty(), "series must contain points");
    let (mut x_lo, mut x_hi) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
        (lo.min(x), hi.max(x))
    });
    let (mut y_lo, mut y_hi) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
        (lo.min(y), hi.max(y))
    });
    if x_lo == x_hi {
        x_lo -= 0.5;
        x_hi += 0.5;
    }
    if y_lo == y_hi {
        y_lo -= 0.5;
        y_hi += 0.5;
    }
    // Pad y a little.
    let pad = (y_hi - y_lo) * 0.06;
    y_lo -= pad;
    y_hi += pad;

    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="24" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_L,
        xml_escape(title)
    );
    // Axes frame.
    let _ = writeln!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
    );
    // Y ticks + gridlines.
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = py(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_num(t)
        );
    }
    // X ticks: at the data points (sweeps have few, meaningful x values).
    let mut xs: Vec<f64> = series[0].points.iter().map(|&(x, _)| x).collect();
    xs.dedup();
    for &x in &xs {
        let xp = px(x);
        let _ = writeln!(
            svg,
            r##"<line x1="{xp:.1}" y1="{:.1}" x2="{xp:.1}" y2="{:.1}" stroke="#333"/>"##,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 5.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{xp:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 18.0,
            fmt_num(x)
        );
    }
    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 12.0,
        xml_escape(x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(y_label)
    );
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend.
        let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
        let lx = MARGIN_L + plot_w + 12.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Write an SVG document to `path`, creating parent directories.
pub fn save_svg(path: &Path, svg: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, svg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        vec![
            Series::new("a", &[1.0, 10.0, 100.0], &[0.5, 0.6, 1.2]),
            Series::new("b", &[1.0, 10.0, 100.0], &[1.0, 1.0, 1.0]),
        ]
    }

    #[test]
    fn chart_contains_all_structural_elements() {
        let svg = line_chart(
            "T",
            "distance",
            "normalized",
            &demo(),
            ChartConfig::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">T<"));
        assert!(svg.contains("distance"));
        assert!(svg.contains(">a<") && svg.contains(">b<"));
    }

    #[test]
    fn chart_is_deterministic() {
        let c = ChartConfig::default();
        assert_eq!(
            line_chart("T", "x", "y", &demo(), c),
            line_chart("T", "x", "y", &demo(), c)
        );
    }

    #[test]
    fn escapes_markup_in_labels() {
        let s = vec![Series::new("<evil> & co", &[1.0], &[1.0])];
        let svg = line_chart("a<b", "x", "y", &s, ChartConfig::default());
        assert!(!svg.contains("<evil>"));
        assert!(svg.contains("&lt;evil&gt; &amp; co"));
    }

    #[test]
    fn nice_ticks_cover_the_range() {
        let ticks = nice_ticks(0.0, 1.0, 6);
        assert!(ticks.len() >= 3 && ticks.len() <= 8);
        assert!(*ticks.first().unwrap() >= 0.0);
        assert!(*ticks.last().unwrap() <= 1.0 + 1e-9);
        // Degenerate range.
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn single_point_series_renders() {
        let s = vec![Series::new("p", &[42.0], &[0.7])];
        let svg = line_chart(
            "one",
            "x",
            "y",
            &s,
            ChartConfig {
                log_x: false,
                ..Default::default()
            },
        );
        assert!(svg.contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_chart_rejected() {
        let _ = line_chart("t", "x", "y", &[], ChartConfig::default());
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("sp_plot_test");
        let path = dir.join("t.svg");
        save_svg(
            &path,
            &line_chart("t", "x", "y", &demo(), ChartConfig::default()),
        )
        .unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
