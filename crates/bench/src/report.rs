//! Plain-text table rendering and CSV output for the `reproduce` binary.

use std::io::Write;
use std::path::Path;

/// Render rows as an aligned text table. `header` and every row must
/// have the same number of columns.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            out.extend(std::iter::repeat_n(' ', w - c.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.extend(std::iter::repeat_n('-', rule));
    out.push('\n');
    for r in rows {
        line(&mut out, r);
    }
    out
}

/// Write rows as CSV (naive quoting: fields containing commas or quotes
/// are double-quoted). Creates parent directories as needed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for r in rows {
        writeln!(
            f,
            "{}",
            r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    v");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_quotes_special_fields() {
        let dir = std::env::temp_dir().join("sp_bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["x,y".into(), "plain".into()],
                vec!["q\"q".into(), "2".into()],
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",plain\n\"q\"\"q\",2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
