//! Plain-text table rendering, CSV output, and the parallel-execution
//! summary for the `reproduce` binary.

use crate::experiments::Table2Row;
use sp_core::{RunnerReport, Sweep};
use std::io::Write;
use std::path::Path;

/// Render rows as an aligned text table. `header` and every row must
/// have the same number of columns.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            out.extend(std::iter::repeat_n(' ', w - c.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.extend(std::iter::repeat_n('-', rule));
    out.push('\n');
    for r in rows {
        line(&mut out, r);
    }
    out
}

/// Render rows as CSV text (naive quoting: fields containing commas or
/// quotes are double-quoted). The golden-output tests compare this
/// string byte-for-byte against checked-in fixtures, so it must stay
/// identical to what [`write_csv`] puts on disk.
pub fn csv_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Write `contents` to `path` atomically: the bytes go to a temp file
/// beside the target which is then renamed over it, so a crashed or
/// interrupted run can never leave a truncated artifact. Missing parent
/// directories are created. Every exported artifact — sweep CSVs,
/// `BENCH_cachesim.json`, event NDJSON streams — goes through here.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("{} has no file name", path.display())))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(contents.as_bytes())?;
        f.flush()?;
        f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Write rows as CSV ([`csv_string`]) through [`write_atomic`].
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    write_atomic(path, &csv_string(header, rows))
}

/// The CSV/table header every distance-sweep artifact (Figure 2 and
/// Figures 4–6) is reported under.
pub const SWEEP_HEADER: [&str; 9] = [
    "distance",
    "runtime_norm",
    "mem_accesses_norm",
    "hot_misses_norm",
    "d_totally_hit_pct",
    "d_totally_miss_pct",
    "d_partially_hit_pct",
    "pollution_events",
    "dead_prefetch_rate",
];

/// Format a sweep's points as [`SWEEP_HEADER`] rows — shared by the
/// `reproduce` binary and the golden-output tests so the fixtures pin
/// exactly what the binary writes.
pub fn sweep_rows(s: &Sweep) -> Vec<Vec<String>> {
    s.points
        .iter()
        .map(|p| {
            vec![
                p.distance.to_string(),
                format!("{:.4}", p.runtime_norm),
                format!("{:.4}", p.memory_accesses_norm),
                format!("{:.4}", p.hot_misses_norm),
                format!("{:.2}", p.behavior.totally_hit_pct),
                format!("{:.2}", p.behavior.totally_miss_pct),
                format!("{:.2}", p.behavior.partially_hit_pct),
                p.pollution.stats.total().to_string(),
                format!("{:.4}", p.pollution.dead_prefetch_rate),
            ]
        })
        .collect()
}

/// The CSV/table header Table 2 is reported under.
pub const TABLE2_HEADER: [&str; 9] = [
    "benchmark",
    "input (scaled)",
    "outer iters",
    "SA(L,Sx) full",
    "SA(L,Sx) sampled",
    "paper SA",
    "dist bound",
    "CALR",
    "RP",
];

/// The paper's published `SA(L, Sx)` range for a benchmark (Table 2,
/// column 4) — printed beside the measured one.
pub fn paper_sa_range(benchmark: &str) -> &'static str {
    match benchmark {
        "EM3D" => "[40, 360]",
        "MCF" => "[3000, 46000]",
        "MST" => "[6300, 10000]",
        _ => "-",
    }
}

/// Format Table 2 rows under [`TABLE2_HEADER`] — shared by the
/// `reproduce` binary and the golden-output tests so the fixtures pin
/// exactly what the binary writes.
pub fn table2_rows(rows: &[Table2Row]) -> Vec<Vec<String>> {
    let fmt_range = |r: Option<(u32, u32)>| match r {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "(no overflow)".into(),
    };
    rows.iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.input.clone(),
                r.iterations.to_string(),
                fmt_range(r.sa_range),
                fmt_range(r.sa_sampled),
                paper_sa_range(r.benchmark).to_string(),
                r.distance_bound
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                format!("{:.3}", r.calr),
                format!("{:.2}", r.rp),
            ]
        })
        .collect()
}

/// Summary of a fan-out (or a live pool snapshot): how wide it ran and
/// what it bought. `busy` is the serial-equivalent cost (sum of per-job
/// wall times), so `busy / wall` is the realized speedup. The second
/// line renders the queue depth and per-worker utilization the sp-serve
/// `stats` reply reports, so both surfaces share this one source of
/// truth.
pub fn render_runner_summary(r: &RunnerReport) -> String {
    let mut out = format!(
        "parallel execution: {} jobs on {} workers; wall {:.2}s, serial-equivalent {:.2}s, speedup {:.2}x",
        r.jobs,
        r.workers,
        r.wall.as_secs_f64(),
        r.busy.as_secs_f64(),
        r.speedup()
    );
    if !r.per_worker.is_empty() {
        out.push_str(&format!(
            "\n  queue depth {}; utilization {:.0}%; per-worker",
            r.queue_depth,
            r.utilization() * 100.0
        ));
        for (w, stat) in r.per_worker.iter().enumerate() {
            out.push_str(&format!(
                " w{w}:{}j/{:.2}s",
                stat.jobs,
                stat.busy.as_secs_f64()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    v");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn runner_summary_reports_the_width_and_speedup() {
        let (_, rep) = sp_core::map_jobs((0..6).collect::<Vec<u32>>(), |x| x + 1, 2);
        let s = render_runner_summary(&rep);
        assert!(s.contains("6 jobs on 2 workers"), "got: {s}");
        assert!(s.contains("speedup"), "got: {s}");
        assert!(s.contains("queue depth 0"), "got: {s}");
        assert!(s.contains("utilization"), "got: {s}");
        assert!(s.contains("w0:"), "per-worker lane missing: {s}");
        assert!(s.contains("w1:"), "per-worker lane missing: {s}");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let dir = std::env::temp_dir().join("sp_bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["x,y".into(), "plain".into()],
                vec!["q\"q".into(), "2".into()],
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",plain\n\"q\"\"q\",2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_droppings() {
        let dir = std::env::temp_dir().join("sp_bench_write_atomic_test");
        let path = dir.join("events.ndjson");
        write_atomic(&path, "{\"ev\":\"a\"}\n").unwrap();
        write_atomic(&path, "{\"ev\":\"b\"}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ev\":\"b\"}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert!(write_atomic(Path::new("/"), "x").is_err(), "no file name");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_is_atomic_and_overwrites_cleanly() {
        let dir = std::env::temp_dir().join("sp_bench_csv_atomic_test");
        let path = dir.join("nested").join("t.csv");
        write_csv(&path, &["a"], &[vec!["1".into()]]).unwrap();
        // Overwriting an existing (e.g. longer) artifact replaces it
        // wholesale — rename semantics, never an in-place truncate.
        write_csv(&path, &["a"], &[vec!["22".into()], vec!["3".into()]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n22\n3\n");
        // No temp-file droppings beside the artifact.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
