//! Plain-text table rendering, CSV output, the parallel-execution
//! summary for the `reproduce` binary, and the epoch-telemetry report
//! generators behind `spt report`.

use crate::experiments::Table2Row;
use sp_cachesim::EpochSeries;
use sp_core::{RunnerReport, Sweep, SweepEpochs};
use std::io::Write;
use std::path::Path;

/// Render rows as an aligned text table. `header` and every row must
/// have the same number of columns.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            out.extend(std::iter::repeat_n(' ', w - c.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.extend(std::iter::repeat_n('-', rule));
    out.push('\n');
    for r in rows {
        line(&mut out, r);
    }
    out
}

/// Render rows as CSV text (naive quoting: fields containing commas or
/// quotes are double-quoted). The golden-output tests compare this
/// string byte-for-byte against checked-in fixtures, so it must stay
/// identical to what [`write_csv`] puts on disk.
pub fn csv_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Write `contents` to `path` atomically: the bytes go to a temp file
/// beside the target which is then renamed over it, so a crashed or
/// interrupted run can never leave a truncated artifact. Missing parent
/// directories are created. Every exported artifact — sweep CSVs,
/// `BENCH_cachesim.json`, event NDJSON streams — goes through here.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("{} has no file name", path.display())))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(contents.as_bytes())?;
        f.flush()?;
        f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Write rows as CSV ([`csv_string`]) through [`write_atomic`].
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    write_atomic(path, &csv_string(header, rows))
}

/// The CSV/table header every distance-sweep artifact (Figure 2 and
/// Figures 4–6) is reported under.
pub const SWEEP_HEADER: [&str; 9] = [
    "distance",
    "runtime_norm",
    "mem_accesses_norm",
    "hot_misses_norm",
    "d_totally_hit_pct",
    "d_totally_miss_pct",
    "d_partially_hit_pct",
    "pollution_events",
    "dead_prefetch_rate",
];

/// Format a sweep's points as [`SWEEP_HEADER`] rows — shared by the
/// `reproduce` binary and the golden-output tests so the fixtures pin
/// exactly what the binary writes.
pub fn sweep_rows(s: &Sweep) -> Vec<Vec<String>> {
    s.points
        .iter()
        .map(|p| {
            vec![
                p.distance.to_string(),
                format!("{:.4}", p.runtime_norm),
                format!("{:.4}", p.memory_accesses_norm),
                format!("{:.4}", p.hot_misses_norm),
                format!("{:.2}", p.behavior.totally_hit_pct),
                format!("{:.2}", p.behavior.totally_miss_pct),
                format!("{:.2}", p.behavior.partially_hit_pct),
                p.pollution.stats.total().to_string(),
                format!("{:.4}", p.pollution.dead_prefetch_rate),
            ]
        })
        .collect()
}

/// The CSV/table header Table 2 is reported under.
pub const TABLE2_HEADER: [&str; 9] = [
    "benchmark",
    "input (scaled)",
    "outer iters",
    "SA(L,Sx) full",
    "SA(L,Sx) sampled",
    "paper SA",
    "dist bound",
    "CALR",
    "RP",
];

/// The paper's published `SA(L, Sx)` range for a benchmark (Table 2,
/// column 4) — printed beside the measured one.
pub fn paper_sa_range(benchmark: &str) -> &'static str {
    match benchmark {
        "EM3D" => "[40, 360]",
        "MCF" => "[3000, 46000]",
        "MST" => "[6300, 10000]",
        _ => "-",
    }
}

/// Format Table 2 rows under [`TABLE2_HEADER`] — shared by the
/// `reproduce` binary and the golden-output tests so the fixtures pin
/// exactly what the binary writes.
pub fn table2_rows(rows: &[Table2Row]) -> Vec<Vec<String>> {
    let fmt_range = |r: Option<(u32, u32)>| match r {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "(no overflow)".into(),
    };
    rows.iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.input.clone(),
                r.iterations.to_string(),
                fmt_range(r.sa_range),
                fmt_range(r.sa_sampled),
                paper_sa_range(r.benchmark).to_string(),
                r.distance_bound
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                format!("{:.3}", r.calr),
                format!("{:.2}", r.rp),
            ]
        })
        .collect()
}

/// Summary of a fan-out (or a live pool snapshot): how wide it ran and
/// what it bought. `busy` is the serial-equivalent cost (sum of per-job
/// wall times), so `busy / wall` is the realized speedup. The second
/// line renders the queue depth and per-worker utilization the sp-serve
/// `stats` reply reports, so both surfaces share this one source of
/// truth.
pub fn render_runner_summary(r: &RunnerReport) -> String {
    let mut out = format!(
        "parallel execution: {} jobs on {} workers; wall {:.2}s, serial-equivalent {:.2}s, speedup {:.2}x",
        r.jobs,
        r.workers,
        r.wall.as_secs_f64(),
        r.busy.as_secs_f64(),
        r.speedup()
    );
    if !r.per_worker.is_empty() {
        out.push_str(&format!(
            "\n  queue depth {}; utilization {:.0}%; per-worker",
            r.queue_depth,
            r.utilization() * 100.0
        ));
        for (w, stat) in r.per_worker.iter().enumerate() {
            out.push_str(&format!(
                " w{w}:{}j/{:.2}s",
                stat.jobs,
                stat.busy.as_secs_f64()
            ));
        }
    }
    out
}

/// The eight bar glyphs [`sparkline`] renders with, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a unicode sparkline, each value normalized to
/// the series maximum (an all-zero or empty series renders flat).
/// Purely arithmetic — the same series always renders the same string,
/// so report fixtures can pin it byte-for-byte.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK[0]
            } else {
                // Round-to-nearest level so v == max hits the top bar.
                let level = (v as u128 * (SPARK.len() as u128 - 1) + max as u128 / 2) / max as u128;
                SPARK[level as usize]
            }
        })
        .collect()
}

/// Five-level shade for the displacement heatmap: `·` is exactly zero,
/// then quartiles of the sweep-wide peak.
fn shade(v: u64, max: u64) -> char {
    const CELLS: [char; 4] = ['░', '▒', '▓', '█'];
    if v == 0 || max == 0 {
        '·'
    } else {
        let level = (v as u128 * CELLS.len() as u128).div_ceil(max as u128);
        CELLS[(level as usize).clamp(1, CELLS.len()) - 1]
    }
}

/// Header metadata for [`epoch_report_markdown`] — everything the
/// report states that isn't derivable from the sweep itself.
pub struct EpochReportMeta<'a> {
    /// Benchmark name as printed (`"MCF"`).
    pub bench: &'a str,
    /// Scale tier as printed (`"test"`, `"tiny"`, `"full"`).
    pub scale: &'a str,
    /// Helper trigger rate used for the sweep.
    pub rp: f64,
    /// The SA/2 prefetch-distance bound, when one was computed —
    /// distances past it are flagged `!` in the heatmap.
    pub bound: Option<u32>,
}

/// Encode a sweep's epoch series as NDJSON: the baseline run's windows
/// first (tagged `"distance":null`), then each swept distance's
/// windows in sweep order (tagged `"distance":D`). One window per
/// line, so the stream greps and folds without a JSON parser.
pub fn epoch_ndjson(sweep: &Sweep, epochs: &SweepEpochs) -> String {
    assert_eq!(
        sweep.points.len(),
        epochs.points.len(),
        "sweep and epoch series disagree on the distance grid"
    );
    let mut out = epochs.baseline.to_ndjson("\"distance\":null,");
    for (p, s) in sweep.points.iter().zip(&epochs.points) {
        out.push_str(&s.to_ndjson(&format!("\"distance\":{},", p.distance)));
    }
    out
}

/// One sparkline row of a series block: label, bars, and the numbers
/// the bars are normalized to.
fn spark_row(label: &str, values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    let total: u64 = values.iter().sum();
    format!(
        "{label:<10} {}  max {max}/epoch, total {total}\n",
        sparkline(values)
    )
}

/// Render a sweep's epoch telemetry as a self-contained markdown
/// report: per-distance sparklines for the miss / displacement / late
/// series, then a distances-by-epochs heatmap of total displacement
/// events with the SA/2 bound annotated. No timestamps, no host state
/// — the same sweep always renders the same bytes, which is what lets
/// CI pin the fig5-MCF report as a golden fixture.
pub fn epoch_report_markdown(
    meta: &EpochReportMeta<'_>,
    sweep: &Sweep,
    epochs: &SweepEpochs,
) -> String {
    assert_eq!(
        sweep.points.len(),
        epochs.points.len(),
        "sweep and epoch series disagree on the distance grid"
    );
    let mut out = format!(
        "# Epoch telemetry — {} ({} scale)\n\n",
        meta.bench, meta.scale
    );
    out.push_str(
        "Flight-recorder view of the distance sweep: every series below is \
         windowed\ninto fixed epochs of main-thread references, so the report \
         shows *when*\ncache pollution happens, not just the run totals.\n\n",
    );
    out.push_str(&format!(
        "- epoch length: {} main-thread references per window\n",
        epochs.baseline.epoch_len
    ));
    out.push_str(&format!("- helper trigger rate RP: {:.2}\n", meta.rp));
    match meta.bound {
        Some(b) => out.push_str(&format!(
            "- SA/2 distance bound: **{b}** — distances past it are marked `!`\n"
        )),
        None => out.push_str("- SA/2 distance bound: not computed for this run\n"),
    }
    out.push_str(&format!(
        "- paper SA range (Table 2): {}\n\n",
        paper_sa_range(meta.bench)
    ));

    out.push_str("## Per-distance series\n\n");
    let over = |d: u32| meta.bound.is_some_and(|b| d > b);
    let series_block = |out: &mut String, title: &str, s: &EpochSeries| {
        out.push_str(&format!("### {title}\n\n```\n"));
        let misses: Vec<u64> = s.epochs.iter().map(|w| w.main[3]).collect();
        let pollution: Vec<u64> = s.epochs.iter().map(|w| w.total_pollution()).collect();
        let late: Vec<u64> = s.epochs.iter().map(|w| w.late).collect();
        out.push_str(&spark_row("misses", &misses));
        out.push_str(&spark_row("pollution", &pollution));
        out.push_str(&spark_row("late pf", &late));
        out.push_str("```\n\n");
    };
    series_block(&mut out, "baseline (no helper)", &epochs.baseline);
    for (p, s) in sweep.points.iter().zip(&epochs.points) {
        let flag = if over(p.distance) {
            " `!` over the SA/2 bound"
        } else {
            ""
        };
        series_block(&mut out, &format!("distance {}{}", p.distance, flag), s);
    }

    out.push_str("## Displacement heatmap\n\n");
    out.push_str(
        "Rows are prefetch distances, columns are epochs; each cell shades the\n\
         window's total displacement events (reuse + unused-helper + unused-hw\n\
         evictions) against the sweep-wide peak.\n\n",
    );
    let peak = epochs
        .points
        .iter()
        .flat_map(|s| s.epochs.iter())
        .map(|w| w.total_pollution())
        .max()
        .unwrap_or(0);
    let width = sweep
        .points
        .iter()
        .map(|p| p.distance.to_string().len())
        .max()
        .unwrap_or(1);
    out.push_str("```\n");
    for (p, s) in sweep.points.iter().zip(&epochs.points) {
        let mark = if over(p.distance) { "!" } else { " " };
        let cells: String = s
            .epochs
            .iter()
            .map(|w| shade(w.total_pollution(), peak))
            .collect();
        out.push_str(&format!(
            "{mark} {:>width$}  {cells}\n",
            p.distance,
            width = width
        ));
    }
    out.push_str("```\n\n");
    out.push_str(&format!(
        "Legend: `·` none, `░`/`▒`/`▓`/`█` quartiles of the peak \
         ({peak} events/epoch).\n"
    ));
    if meta.bound.is_some() {
        out.push_str("`!` marks distances over the SA/2 bound.\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    v");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn runner_summary_reports_the_width_and_speedup() {
        let (_, rep) = sp_core::map_jobs((0..6).collect::<Vec<u32>>(), |x| x + 1, 2);
        let s = render_runner_summary(&rep);
        assert!(s.contains("6 jobs on 2 workers"), "got: {s}");
        assert!(s.contains("speedup"), "got: {s}");
        assert!(s.contains("queue depth 0"), "got: {s}");
        assert!(s.contains("utilization"), "got: {s}");
        assert!(s.contains("w0:"), "per-worker lane missing: {s}");
        assert!(s.contains("w1:"), "per-worker lane missing: {s}");
    }

    #[test]
    fn sparkline_normalizes_to_the_series_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let s = sparkline(&[0, 7, 14]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'), "zero renders the lowest bar: {s}");
        assert!(s.ends_with('█'), "the max renders the top bar: {s}");
        // Normalization is per-series: scaling every value leaves the
        // rendering unchanged.
        assert_eq!(sparkline(&[1, 2, 4]), sparkline(&[100, 200, 400]));
    }

    fn tiny_epoch_sweep() -> (Sweep, SweepEpochs) {
        let w = sp_workloads::Workload::tiny(sp_workloads::Benchmark::Em3d);
        let cfg = sp_cachesim::CacheConfig::scaled_default();
        let ct = std::sync::Arc::new(sp_core::compile_trace(&w.trace(), &cfg));
        let (sweep, epochs, _) = sp_core::sweep_epochs_compiled_jobs_with(
            &ct,
            cfg,
            0.5,
            &[2, 8],
            sp_core::EngineOptions::default(),
            256,
            1,
        )
        .unwrap();
        (sweep, epochs)
    }

    #[test]
    fn epoch_ndjson_tags_every_window_with_its_distance() {
        let (sweep, epochs) = tiny_epoch_sweep();
        let nd = epoch_ndjson(&sweep, &epochs);
        let lines: Vec<&str> = nd.lines().collect();
        let windows: usize =
            epochs.baseline.len() + epochs.points.iter().map(|s| s.len()).sum::<usize>();
        assert_eq!(lines.len(), windows, "one line per window");
        assert!(lines[0].starts_with("{\"distance\":null,\"epoch\":0,"));
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.starts_with("{\"distance\":2,"))
                .count(),
            epochs.points[0].len()
        );
        assert!(
            lines.iter().all(|l| l.ends_with('}')),
            "one object per line"
        );
        for key in [
            "\"pollution\":",
            "\"late\":",
            "\"top_sets\":",
            "\"mshr_peak\":",
        ] {
            assert!(lines[0].contains(key), "missing {key} in: {}", lines[0]);
        }
    }

    #[test]
    fn epoch_report_flags_distances_over_the_bound() {
        let (sweep, epochs) = tiny_epoch_sweep();
        let meta = EpochReportMeta {
            bench: "EM3D",
            scale: "test",
            rp: 0.5,
            bound: Some(4),
        };
        let md = epoch_report_markdown(&meta, &sweep, &epochs);
        assert!(md.starts_with("# Epoch telemetry — EM3D (test scale)\n"));
        assert!(md.contains("- SA/2 distance bound: **4**"), "got:\n{md}");
        assert!(md.contains("paper SA range (Table 2): [40, 360]"));
        assert!(md.contains("### baseline (no helper)"));
        assert!(
            md.contains("### distance 2\n"),
            "in-bound distance unflagged"
        );
        assert!(
            md.contains("### distance 8 `!` over the SA/2 bound"),
            "over-bound distance must be flagged:\n{md}"
        );
        assert!(md.contains("! 8  "), "heatmap row marker missing:\n{md}");
        for label in ["misses", "pollution", "late pf"] {
            assert!(md.contains(label), "sparkline row {label} missing");
        }
        // Deterministic: no timestamps or host state leak in.
        assert_eq!(md, epoch_report_markdown(&meta, &sweep, &epochs));
        // Without a bound nothing is flagged.
        let unbounded = epoch_report_markdown(
            &EpochReportMeta {
                bound: None,
                ..meta
            },
            &sweep,
            &epochs,
        );
        assert!(unbounded.contains("not computed"));
        assert!(!unbounded.contains('!'), "no `!` markers without a bound");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let dir = std::env::temp_dir().join("sp_bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["x,y".into(), "plain".into()],
                vec!["q\"q".into(), "2".into()],
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",plain\n\"q\"\"q\",2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_droppings() {
        let dir = std::env::temp_dir().join("sp_bench_write_atomic_test");
        let path = dir.join("events.ndjson");
        write_atomic(&path, "{\"ev\":\"a\"}\n").unwrap();
        write_atomic(&path, "{\"ev\":\"b\"}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ev\":\"b\"}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert!(write_atomic(Path::new("/"), "x").is_err(), "no file name");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_is_atomic_and_overwrites_cleanly() {
        let dir = std::env::temp_dir().join("sp_bench_csv_atomic_test");
        let path = dir.join("nested").join("t.csv");
        write_csv(&path, &["a"], &[vec!["1".into()]]).unwrap();
        // Overwriting an existing (e.g. longer) artifact replaces it
        // wholesale — rename semantics, never an in-place truncate.
        write_csv(&path, &["a"], &[vec!["22".into()], vec!["3".into()]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n22\n3\n");
        // No temp-file droppings beside the artifact.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
