//! Golden-output tests: the Table 2 and Figure 2 artifacts at test
//! scale, compared **byte-for-byte** against checked-in fixture CSVs.
//!
//! The drivers are deterministic (fixed PRNG streams, pure simulations,
//! submission-order fan-out), so these pin the numbers themselves — a
//! change to any simulator constant, workload layout, or CSV formatting
//! shows up as a fixture diff, never as silent drift.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! SP_BLESS=1 cargo test -p sp-bench --test golden_outputs
//! ```

use sp_bench::experiments::{fig2_at, fig_behavior_at, table2_at, Scale};
use sp_bench::report::{csv_string, sweep_rows, table2_rows, SWEEP_HEADER, TABLE2_HEADER};
use sp_cachesim::CacheConfig;
use sp_workloads::Benchmark;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture(name);
    if std::env::var_os("SP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with SP_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its fixture; if the change is intentional, \
         re-bless with SP_BLESS=1"
    );
}

#[test]
fn table2_rows_match_fixture() {
    let (rows, _) = table2_at(&CacheConfig::scaled_default(), Scale::Test, 1);
    check_golden(
        "table2_test_scale.csv",
        &csv_string(&TABLE2_HEADER, &table2_rows(&rows)),
    );
}

#[test]
fn fig2_rows_match_fixture() {
    let (sweep, _) = fig2_at(CacheConfig::scaled_default(), Scale::Test, 1);
    check_golden(
        "fig2_em3d_test_scale.csv",
        &csv_string(&SWEEP_HEADER, &sweep_rows(&sweep)),
    );
}

#[test]
fn fig5_mcf_rows_match_fixture() {
    let (series, _) = fig_behavior_at(
        Benchmark::Mcf,
        CacheConfig::scaled_default(),
        Scale::Test,
        1,
    );
    check_golden(
        "fig5_mcf_test_scale.csv",
        &csv_string(&SWEEP_HEADER, &sweep_rows(&series.sweep)),
    );
}

#[test]
fn fig6_mst_rows_match_fixture() {
    let (series, _) = fig_behavior_at(
        Benchmark::Mst,
        CacheConfig::scaled_default(),
        Scale::Test,
        1,
    );
    check_golden(
        "fig6_mst_test_scale.csv",
        &csv_string(&SWEEP_HEADER, &sweep_rows(&series.sweep)),
    );
}

/// The golden artifacts must be identical when produced by the parallel
/// path — the same property `tests/parallel_determinism.rs` checks on
/// raw results, asserted here at the final-CSV level.
#[test]
fn parallel_csv_bytes_equal_serial() {
    let cfg = CacheConfig::scaled_default();
    let serial = csv_string(&SWEEP_HEADER, &sweep_rows(&fig2_at(cfg, Scale::Test, 1).0));
    for jobs in [2, 4] {
        let par = csv_string(
            &SWEEP_HEADER,
            &sweep_rows(&fig2_at(cfg, Scale::Test, jobs).0),
        );
        assert_eq!(serial, par, "fig2 CSV at --jobs {jobs} diverged");
    }
    let t_serial = csv_string(
        &TABLE2_HEADER,
        &table2_rows(&table2_at(&cfg, Scale::Test, 1).0),
    );
    let t_par = csv_string(
        &TABLE2_HEADER,
        &table2_rows(&table2_at(&cfg, Scale::Test, 4).0),
    );
    assert_eq!(t_serial, t_par, "table2 CSV at --jobs 4 diverged");
}
