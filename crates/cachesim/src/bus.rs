//! The shared memory bus.
//!
//! All fills — demand misses, helper-thread prefetches, hardware
//! prefetches — contend for one bus that can *start* a new line transfer
//! every `service` cycles. This is the mechanism behind the paper's
//! "wastes precious bandwidth" effect: prefetch traffic queues behind (and
//! ahead of) demand traffic, so over-aggressive prefetching delays the
//! main thread's own misses.

use crate::clock::Cycle;

/// A single shared bus with FIFO queueing.
#[derive(Debug, Clone)]
pub struct Bus {
    service: Cycle,
    next_free: Cycle,
    busy_cycles: Cycle,
    requests: u64,
    queued: u64,
}

impl Bus {
    /// A bus that can start one transfer every `service` cycles.
    pub fn new(service: Cycle) -> Self {
        assert!(service > 0, "bus service time must be positive");
        Bus {
            service,
            next_free: 0,
            busy_cycles: 0,
            requests: 0,
            queued: 0,
        }
    }

    /// Forget all traffic, as if freshly constructed (the service time is
    /// part of the configuration and survives).
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.busy_cycles = 0;
        self.requests = 0;
        self.queued = 0;
    }

    /// Issue a transfer request at `now`; returns the cycle at which the
    /// transfer *starts* (equal to `now` if the bus is idle).
    pub fn request(&mut self, now: Cycle) -> Cycle {
        self.requests += 1;
        let start = now.max(self.next_free);
        if start > now {
            self.queued += 1;
        }
        self.next_free = start + self.service;
        self.busy_cycles += self.service;
        start
    }

    /// Cycle at which the bus next becomes free.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles of bus occupancy so far.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Total transfer requests so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests that had to wait for an earlier transfer.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Bus utilization over `elapsed` cycles (clamped to 1.0).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = Bus::new(16);
        assert_eq!(b.request(100), 100);
        assert_eq!(b.next_free(), 116);
        assert_eq!(b.queued(), 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut b = Bus::new(16);
        assert_eq!(b.request(0), 0);
        assert_eq!(b.request(0), 16);
        assert_eq!(b.request(0), 32);
        assert_eq!(b.queued(), 2);
        assert_eq!(b.requests(), 3);
        assert_eq!(b.busy_cycles(), 48);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut b = Bus::new(10);
        assert_eq!(b.request(0), 0);
        assert_eq!(b.request(50), 50);
        assert_eq!(b.queued(), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut b = Bus::new(10);
        b.request(0);
        b.request(0);
        assert!((b.utilization(40) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(0), 0.0);
        assert_eq!(b.utilization(1), 1.0); // clamped
    }

    #[test]
    fn reset_clears_all_traffic_counters() {
        let mut b = Bus::new(16);
        b.request(0);
        b.request(0);
        b.reset();
        assert_eq!(b.requests(), 0);
        assert_eq!(b.queued(), 0);
        assert_eq!(b.busy_cycles(), 0);
        assert_eq!(b.request(0), 0, "bus is idle again");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rejected() {
        let _ = Bus::new(0);
    }
}
