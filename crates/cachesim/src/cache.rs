//! One set-associative cache level.

use crate::geometry::CacheGeometry;
use crate::replacement::{Policy, PolicyEngine};
use crate::stats::Entity;
use sp_trace::VAddr;

/// Metadata of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Tag of the cached block.
    pub tag: u64,
    /// Entity whose request filled the line.
    pub filler: Entity,
    /// `true` if the fill was speculative (software or hardware prefetch).
    pub prefetched: bool,
    /// `true` once a demand access has touched the line since its fill.
    pub used_since_fill: bool,
    /// `true` if the line has been written.
    pub dirty: bool,
}

impl Line {
    fn invalid() -> Self {
        Line {
            valid: false,
            tag: 0,
            filler: Entity::Main,
            prefetched: false,
            used_since_fill: false,
            dirty: false,
        }
    }
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block address of the displaced line.
    pub block: VAddr,
    /// Who had filled the displaced line.
    pub filler: Entity,
    /// Whether the displaced line had been brought in by a prefetch.
    pub prefetched: bool,
    /// Whether the displaced line had been demanded since its fill.
    pub used_since_fill: bool,
    /// Whether the displaced line was dirty.
    pub dirty: bool,
}

/// A single set-associative cache level with pluggable replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geo: CacheGeometry,
    lines: Vec<Line>,
    engine: PolicyEngine,
}

impl SetAssocCache {
    /// An empty cache of the given geometry and policy.
    pub fn new(geo: CacheGeometry, policy: Policy) -> Self {
        let n = geo.lines() as usize;
        SetAssocCache {
            geo,
            lines: vec![Line::invalid(); n],
            engine: PolicyEngine::new(policy, geo.sets() as usize, geo.ways as usize),
        }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    fn line_index(&self, set: u64, way: usize) -> usize {
        set as usize * self.geo.ways as usize + way
    }

    /// Find the way holding `addr`'s block, without touching any state.
    pub fn probe(&self, addr: VAddr) -> Option<usize> {
        let set = self.geo.set_of(addr);
        let tag = self.geo.tag_of(addr);
        (0..self.geo.ways as usize).find(|&w| {
            let l = &self.lines[self.line_index(set, w)];
            l.valid && l.tag == tag
        })
    }

    /// `true` if `addr`'s block is cached.
    pub fn contains(&self, addr: VAddr) -> bool {
        self.probe(addr).is_some()
    }

    /// Record a demand access that hits. Returns the line's pre-touch
    /// metadata, or `None` on a miss (in which case nothing changes).
    ///
    /// On a hit the line is promoted per the replacement policy, its
    /// `used_since_fill` bit is set, and `is_store` marks it dirty.
    pub fn demand_touch(&mut self, addr: VAddr, is_store: bool) -> Option<Line> {
        self.touch(addr, is_store, true)
    }

    /// Like [`demand_touch`](Self::demand_touch), but with control over
    /// whether the touch counts as a *use* of the line. Helper-thread
    /// accesses promote the line but do not mark it used: the pollution
    /// cases of the paper (§II.C) are about data "used by the processor",
    /// i.e. the main thread.
    pub fn touch(&mut self, addr: VAddr, is_store: bool, mark_used: bool) -> Option<Line> {
        let way = self.probe(addr)?;
        let set = self.geo.set_of(addr);
        let idx = self.line_index(set, way);
        let before = self.lines[idx];
        if mark_used {
            self.lines[idx].used_since_fill = true;
        }
        if is_store {
            self.lines[idx].dirty = true;
        }
        self.engine.on_hit(set as usize, way);
        Some(before)
    }

    /// Fill `addr`'s block on behalf of `filler`.
    ///
    /// `prefetched` distinguishes speculative fills (their first demand
    /// touch counts as a *useful* prefetch; eviction before any touch
    /// counts as pollution). If the block is already present, the fill is
    /// a no-op other than a policy promotion and returns `None`.
    /// Otherwise, returns the displaced line's metadata if a valid line
    /// had to be evicted.
    pub fn fill(&mut self, addr: VAddr, filler: Entity, prefetched: bool) -> Option<Evicted> {
        let set = self.geo.set_of(addr);
        let tag = self.geo.tag_of(addr);
        if let Some(way) = self.probe(addr) {
            self.engine.on_fill(set as usize, way);
            return None;
        }
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let way = (0..self.geo.ways as usize)
            .find(|&w| !self.lines[self.line_index(set, w)].valid)
            .unwrap_or_else(|| self.engine.victim(set as usize));
        let idx = self.line_index(set, way);
        let old = self.lines[idx];
        let evicted = old.valid.then(|| Evicted {
            block: self.geo.block_from(set, old.tag),
            filler: old.filler,
            prefetched: old.prefetched,
            used_since_fill: old.used_since_fill,
            dirty: old.dirty,
        });
        self.lines[idx] = Line {
            valid: true,
            tag,
            filler,
            prefetched,
            // A demand fill is used by the access that requested it.
            used_since_fill: !prefetched,
            dirty: false,
        };
        self.engine.on_fill(set as usize, way);
        evicted
    }

    /// Drop `addr`'s block if present; returns `true` if a line was
    /// invalidated.
    pub fn invalidate(&mut self, addr: VAddr) -> bool {
        if let Some(way) = self.probe(addr) {
            let set = self.geo.set_of(addr);
            let idx = self.line_index(set, way);
            self.lines[idx].valid = false;
            true
        } else {
            false
        }
    }

    /// Number of valid lines in `set`.
    pub fn occupancy(&self, set: u64) -> usize {
        (0..self.geo.ways as usize)
            .filter(|&w| self.lines[self.line_index(set, w)].valid)
            .count()
    }

    /// Block addresses currently cached in `set` (test/debug helper).
    pub fn set_blocks(&self, set: u64) -> Vec<VAddr> {
        (0..self.geo.ways as usize)
            .filter_map(|w| {
                let l = &self.lines[self.line_index(set, w)];
                l.valid.then(|| self.geo.block_from(set, l.tag))
            })
            .collect()
    }

    /// Total valid lines in the cache.
    pub fn total_occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Metadata of `addr`'s line, if cached (read-only).
    pub fn line_meta(&self, addr: VAddr) -> Option<Line> {
        let way = self.probe(addr)?;
        let set = self.geo.set_of(addr);
        Some(self.lines[self.line_index(set, way)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256B.
        SetAssocCache::new(CacheGeometry::new(256, 2, 64), Policy::Lru)
    }

    /// Two addresses mapping to set 0, distinct tags.
    fn s0(tag: u64) -> VAddr {
        tag * 2 * 64
    }

    #[test]
    fn fill_then_probe_hits() {
        let mut c = tiny();
        assert!(!c.contains(s0(0)));
        assert_eq!(c.fill(s0(0), Entity::Main, false), None);
        assert!(c.contains(s0(0)));
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.occupancy(1), 0);
    }

    #[test]
    fn lru_eviction_returns_victim_metadata() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        // Set 0 full; next fill evicts the LRU line (tag 0).
        let ev = c.fill(s0(2), Entity::Main, false).expect("eviction");
        assert_eq!(ev.block, s0(0));
        assert_eq!(ev.filler, Entity::Main);
        assert!(!ev.prefetched);
        assert!(ev.used_since_fill, "demand fills count as used");
        assert!(!c.contains(s0(0)));
        assert!(c.contains(s0(1)));
        assert!(c.contains(s0(2)));
    }

    #[test]
    fn demand_touch_promotes_and_marks_used() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        let before = c.demand_touch(s0(0), false).expect("hit");
        assert!(before.used_since_fill);
        // Tag 0 is now MRU, so tag 1 (helper prefetch, never demanded)
        // gets evicted next.
        let ev = c.fill(s0(2), Entity::Main, false).unwrap();
        assert_eq!(ev.block, s0(1));
        assert!(ev.prefetched);
        assert!(!ev.used_since_fill);
    }

    #[test]
    fn prefetch_fill_unused_until_touched() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Helper, true);
        let meta = c.line_meta(s0(0)).unwrap();
        assert!(meta.prefetched && !meta.used_since_fill);
        c.demand_touch(s0(0), false).unwrap();
        assert!(c.line_meta(s0(0)).unwrap().used_since_fill);
    }

    #[test]
    fn refill_of_present_block_is_noop() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        assert_eq!(c.fill(s0(0), Entity::Helper, true), None);
        // Original metadata wins (the block was already there).
        assert_eq!(c.line_meta(s0(0)).unwrap().filler, Entity::Main);
        assert_eq!(c.occupancy(0), 1);
    }

    #[test]
    fn store_touch_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.demand_touch(s0(0), true).unwrap();
        c.fill(s0(1), Entity::Main, false);
        let ev = c.fill(s0(2), Entity::Main, false).unwrap();
        assert_eq!(ev.block, s0(0));
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        assert!(c.invalidate(s0(0)));
        assert!(!c.contains(s0(0)));
        assert!(!c.invalidate(s0(0)));
    }

    #[test]
    fn miss_touch_changes_nothing() {
        let mut c = tiny();
        assert_eq!(c.demand_touch(s0(0), false), None);
        assert_eq!(c.total_occupancy(), 0);
    }

    #[test]
    fn set_isolation() {
        let mut c = tiny();
        c.fill(0, Entity::Main, false); // set 0
        c.fill(64, Entity::Main, false); // set 1
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.occupancy(1), 1);
        assert_eq!(c.set_blocks(0), vec![0]);
        assert_eq!(c.set_blocks(1), vec![64]);
    }

    #[test]
    fn occupancy_never_exceeds_ways() {
        let mut c = tiny();
        for tag in 0..10 {
            c.fill(s0(tag), Entity::Main, false);
            assert!(c.occupancy(0) <= 2);
        }
        assert_eq!(c.occupancy(0), 2);
    }
}
