//! One set-associative cache level.
//!
//! Storage is struct-of-arrays: per-line tags, metadata flag bytes, and
//! filler entities live in three parallel flat vectors, indexed
//! `set * ways + way`. The way search ([`find_way`](SetAssocCache::find_way))
//! is a branch-light scan over the set's contiguous `u64` tag slice, and
//! every mutating operation does exactly one such scan — callers get the
//! way index back and reuse it instead of re-probing.
//!
//! The `*_at` methods take precomputed `(set, tag)` projections (from a
//! compiled trace); the address-taking methods are thin wrappers that
//! project first. Both paths share one implementation, so their counter
//! behaviour is identical by construction.
//!
//! ## Lane batching
//!
//! [`SetAssocCache::new_batch`] builds `lanes` independent copies of the
//! cache in one lane-structured allocation: line columns are indexed
//! `(set * lanes + lane) * ways + way`, so the tag slices of every lane
//! of one set are contiguous. A batched sweep replays the same reference
//! (same set index) against all lanes back to back, and this layout puts
//! the k probes on adjacent cache lines of the *host*. Every operation
//! has a `*_lane` form taking the lane index; the scalar API is the
//! `lane = 0` special case (with `lanes = 1` the index degenerates to
//! `set * ways + way`), so both paths run the same code.

use crate::geometry::CacheGeometry;
use crate::replacement::{Policy, PolicyEngine};
use crate::stats::Entity;
use sp_trace::VAddr;

/// Metadata of one cache line (the assembled read-only view; storage is
/// the flag byte + tag + filler columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Tag of the cached block.
    pub tag: u64,
    /// Entity whose request filled the line.
    pub filler: Entity,
    /// `true` if the fill was speculative (software or hardware prefetch).
    pub prefetched: bool,
    /// `true` once a demand access has touched the line since its fill.
    pub used_since_fill: bool,
    /// `true` if the line has been written.
    pub dirty: bool,
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block address of the displaced line.
    pub block: VAddr,
    /// Who had filled the displaced line.
    pub filler: Entity,
    /// Whether the displaced line had been brought in by a prefetch.
    pub prefetched: bool,
    /// Whether the displaced line had been demanded since its fill.
    pub used_since_fill: bool,
    /// Whether the displaced line was dirty.
    pub dirty: bool,
}

const FLAG_VALID: u8 = 1;
const FLAG_PREFETCHED: u8 = 2;
const FLAG_USED: u8 = 4;
const FLAG_DIRTY: u8 = 8;

/// A single set-associative cache level with pluggable replacement.
///
/// The tag column stores *keyed* tags — `(tag << 1) | 1` for a valid
/// line, an even value (0) otherwise — so the way probe compares one
/// `u64` per way with no second validity load. Tags are address bits
/// shifted right by at least the line offset, so the top bit lost to the
/// key shift can never be set.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geo: CacheGeometry,
    // Hot-path constants derived from `geo` once at construction.
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    /// Independent cache copies sharing this allocation (1 = scalar).
    lanes: usize,
    // Parallel per-line columns, indexed `(set * lanes + lane) * ways + way`.
    tags: Vec<u64>,
    meta: Vec<u8>,
    fillers: Vec<Entity>,
    engine: PolicyEngine,
}

/// The stored form of a valid tag: odd, so it never equals an empty slot.
#[inline]
fn tag_key(tag: u64) -> u64 {
    (tag << 1) | 1
}

impl SetAssocCache {
    /// An empty cache of the given geometry and policy.
    pub fn new(geo: CacheGeometry, policy: Policy) -> Self {
        Self::new_batch(geo, policy, 1)
    }

    /// `lanes` empty, fully independent caches of the given geometry in
    /// one lane-structured allocation (see the module docs).
    pub fn new_batch(geo: CacheGeometry, policy: Policy, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        let n = geo.lines() as usize * lanes;
        SetAssocCache {
            geo,
            ways: geo.ways as usize,
            line_shift: geo.line_shift(),
            set_mask: geo.sets() - 1,
            tag_shift: geo.tag_shift(),
            lanes,
            tags: vec![0; n],
            meta: vec![0; n],
            fillers: vec![Entity::Main; n],
            engine: PolicyEngine::new_batch(policy, geo.sets() as usize, geo.ways as usize, lanes),
        }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    /// How many independent lanes this cache holds (1 for a scalar one).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The replacement-state row of `(set, lane)` — the index the policy
    /// engine and the line columns (scaled by `ways`) are keyed by.
    #[inline]
    fn row(&self, set: u32, lane: usize) -> usize {
        set as usize * self.lanes + lane
    }

    /// Clear every line and the replacement state without reallocating
    /// any storage. Afterwards the cache is indistinguishable from a
    /// freshly built one.
    pub fn reset(&mut self) {
        // Fillers may stay stale: an even tag key marks the slot empty.
        self.tags.fill(0);
        self.meta.fill(0);
        self.engine.reset();
    }

    #[inline]
    fn set_of(&self, addr: VAddr) -> u32 {
        ((addr >> self.line_shift) & self.set_mask) as u32
    }

    #[inline]
    fn tag_of(&self, addr: VAddr) -> u64 {
        addr >> self.tag_shift
    }

    fn line_at(&self, idx: usize) -> Line {
        let m = self.meta[idx];
        Line {
            valid: m & FLAG_VALID != 0,
            tag: self.tags[idx] >> 1,
            filler: self.fillers[idx],
            prefetched: m & FLAG_PREFETCHED != 0,
            used_since_fill: m & FLAG_USED != 0,
            dirty: m & FLAG_DIRTY != 0,
        }
    }

    /// The way of `set` holding `tag`, if any — the single probe every
    /// operation is built on: one comparison per way against the set's
    /// contiguous key slice.
    #[inline]
    pub fn find_way(&self, set: u32, tag: u64) -> Option<usize> {
        self.find_way_lane(set, 0, tag)
    }

    /// [`find_way`](Self::find_way) in the given lane.
    #[inline]
    pub fn find_way_lane(&self, set: u32, lane: usize, tag: u64) -> Option<usize> {
        let base = self.row(set, lane) * self.ways;
        let key = tag_key(tag);
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == key)
    }

    /// Find the way holding `addr`'s block, without touching any state.
    pub fn probe(&self, addr: VAddr) -> Option<usize> {
        self.find_way(self.set_of(addr), self.tag_of(addr))
    }

    /// `true` if `addr`'s block is cached.
    pub fn contains(&self, addr: VAddr) -> bool {
        self.probe(addr).is_some()
    }

    /// Record a demand access that hits. Returns the line's pre-touch
    /// metadata, or `None` on a miss (in which case nothing changes).
    ///
    /// On a hit the line is promoted per the replacement policy, its
    /// `used_since_fill` bit is set, and `is_store` marks it dirty.
    pub fn demand_touch(&mut self, addr: VAddr, is_store: bool) -> Option<Line> {
        self.touch(addr, is_store, true)
    }

    /// Like [`demand_touch`](Self::demand_touch), but with control over
    /// whether the touch counts as a *use* of the line. Helper-thread
    /// accesses promote the line but do not mark it used: the pollution
    /// cases of the paper (§II.C) are about data "used by the processor",
    /// i.e. the main thread.
    pub fn touch(&mut self, addr: VAddr, is_store: bool, mark_used: bool) -> Option<Line> {
        self.touch_at(self.set_of(addr), self.tag_of(addr), is_store, mark_used)
    }

    /// [`touch`](Self::touch) in the given lane.
    pub fn touch_lane(
        &mut self,
        addr: VAddr,
        lane: usize,
        is_store: bool,
        mark_used: bool,
    ) -> Option<Line> {
        self.touch_at_lane(
            self.set_of(addr),
            lane,
            self.tag_of(addr),
            is_store,
            mark_used,
        )
    }

    /// [`touch`](Self::touch) with the `(set, tag)` projection already
    /// computed. One way lookup, no re-probe.
    pub fn touch_at(
        &mut self,
        set: u32,
        tag: u64,
        is_store: bool,
        mark_used: bool,
    ) -> Option<Line> {
        self.touch_at_lane(set, 0, tag, is_store, mark_used)
    }

    /// [`touch_at`](Self::touch_at) in the given lane.
    pub fn touch_at_lane(
        &mut self,
        set: u32,
        lane: usize,
        tag: u64,
        is_store: bool,
        mark_used: bool,
    ) -> Option<Line> {
        let way = self.find_way_lane(set, lane, tag)?;
        let row = self.row(set, lane);
        let before = self.line_at(row * self.ways + way);
        self.touch_way(row, way, is_store, mark_used);
        Some(before)
    }

    /// [`touch_at`](Self::touch_at) returning only what the L2 demand
    /// path classifies a hit by: whether the line was a never-used
    /// prefetch before this touch, and who filled it. Skips assembling
    /// the full pre-touch [`Line`].
    #[inline]
    pub fn touch_classify_at(
        &mut self,
        set: u32,
        tag: u64,
        is_store: bool,
        mark_used: bool,
    ) -> Option<(bool, Entity)> {
        self.touch_classify_at_lane(set, 0, tag, is_store, mark_used)
    }

    /// [`touch_classify_at`](Self::touch_classify_at) in the given lane.
    #[inline]
    pub fn touch_classify_at_lane(
        &mut self,
        set: u32,
        lane: usize,
        tag: u64,
        is_store: bool,
        mark_used: bool,
    ) -> Option<(bool, Entity)> {
        let way = self.find_way_lane(set, lane, tag)?;
        let row = self.row(set, lane);
        let idx = row * self.ways + way;
        let m = self.meta[idx];
        let fresh_prefetch = m & FLAG_PREFETCHED != 0 && m & FLAG_USED == 0;
        let filler = self.fillers[idx];
        self.touch_way(row, way, is_store, mark_used);
        Some((fresh_prefetch, filler))
    }

    /// [`touch_at`](Self::touch_at) when the caller only needs to know
    /// whether the access hit: skips the pre-touch [`Line`] snapshot.
    /// The L1 demand path never inspects the displaced metadata, so it
    /// uses this form.
    #[inline]
    pub fn touch_hit_at(&mut self, set: u32, tag: u64, is_store: bool, mark_used: bool) -> bool {
        self.touch_hit_at_lane(set, 0, tag, is_store, mark_used)
    }

    /// [`touch_hit_at`](Self::touch_hit_at) in the given lane.
    #[inline]
    pub fn touch_hit_at_lane(
        &mut self,
        set: u32,
        lane: usize,
        tag: u64,
        is_store: bool,
        mark_used: bool,
    ) -> bool {
        match self.find_way_lane(set, lane, tag) {
            Some(way) => {
                self.touch_way(self.row(set, lane), way, is_store, mark_used);
                true
            }
            None => false,
        }
    }

    #[inline]
    fn touch_way(&mut self, row: usize, way: usize, is_store: bool, mark_used: bool) {
        let idx = row * self.ways + way;
        let mut m = self.meta[idx];
        if mark_used {
            m |= FLAG_USED;
        }
        if is_store {
            m |= FLAG_DIRTY;
        }
        self.meta[idx] = m;
        self.engine.on_hit(row, way);
    }

    /// Fill `addr`'s block on behalf of `filler`.
    ///
    /// `prefetched` distinguishes speculative fills (their first demand
    /// touch counts as a *useful* prefetch; eviction before any touch
    /// counts as pollution). If the block is already present, the fill is
    /// a no-op other than a policy promotion and returns `None`.
    /// Otherwise, returns the displaced line's metadata if a valid line
    /// had to be evicted.
    pub fn fill(&mut self, addr: VAddr, filler: Entity, prefetched: bool) -> Option<Evicted> {
        self.fill_at(self.set_of(addr), self.tag_of(addr), filler, prefetched)
    }

    /// [`fill`](Self::fill) in the given lane.
    pub fn fill_lane(
        &mut self,
        addr: VAddr,
        lane: usize,
        filler: Entity,
        prefetched: bool,
    ) -> Option<Evicted> {
        self.fill_at_lane(
            self.set_of(addr),
            lane,
            self.tag_of(addr),
            filler,
            prefetched,
        )
    }

    /// [`fill`](Self::fill) with the `(set, tag)` projection already
    /// computed. A single scan finds both a matching way (upgrade path)
    /// and the first invalid way (allocation path).
    pub fn fill_at(
        &mut self,
        set: u32,
        tag: u64,
        filler: Entity,
        prefetched: bool,
    ) -> Option<Evicted> {
        self.fill_at_lane(set, 0, tag, filler, prefetched)
    }

    /// [`fill_at`](Self::fill_at) in the given lane.
    pub fn fill_at_lane(
        &mut self,
        set: u32,
        lane: usize,
        tag: u64,
        filler: Entity,
        prefetched: bool,
    ) -> Option<Evicted> {
        let row = self.row(set, lane);
        let base = row * self.ways;
        let key = tag_key(tag);
        let mut invalid_way = None;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            if t & 1 == 0 {
                invalid_way.get_or_insert(w);
            } else if t == key {
                // Already present: policy promotion only.
                self.engine.on_fill(row, w);
                return None;
            }
        }
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let way = invalid_way.unwrap_or_else(|| self.engine.victim(row));
        let idx = base + way;
        let evicted = (self.tags[idx] & 1 != 0).then(|| {
            let old = self.line_at(idx);
            Evicted {
                block: self.geo.block_from(set as u64, old.tag),
                filler: old.filler,
                prefetched: old.prefetched,
                used_since_fill: old.used_since_fill,
                dirty: old.dirty,
            }
        });
        self.tags[idx] = key;
        self.fillers[idx] = filler;
        self.meta[idx] = if prefetched {
            FLAG_VALID | FLAG_PREFETCHED
        } else {
            // A demand fill is used by the access that requested it.
            FLAG_VALID | FLAG_USED
        };
        self.engine.on_fill(row, way);
        evicted
    }

    /// Promote `(set, tag)` per the replacement policy if present (a
    /// prefetch hint to a cached block). Returns `true` if the block was
    /// there. Equivalent to the promotion-only branch of
    /// [`fill_at`](Self::fill_at), without scanning for an invalid way.
    pub fn promote(&mut self, set: u32, tag: u64) -> bool {
        self.promote_lane(set, 0, tag)
    }

    /// [`promote`](Self::promote) in the given lane.
    pub fn promote_lane(&mut self, set: u32, lane: usize, tag: u64) -> bool {
        match self.find_way_lane(set, lane, tag) {
            Some(way) => {
                self.engine.on_fill(self.row(set, lane), way);
                true
            }
            None => false,
        }
    }

    /// Drop `addr`'s block if present; returns `true` if a line was
    /// invalidated.
    pub fn invalidate(&mut self, addr: VAddr) -> bool {
        self.invalidate_lane(addr, 0)
    }

    /// [`invalidate`](Self::invalidate) in the given lane.
    pub fn invalidate_lane(&mut self, addr: VAddr, lane: usize) -> bool {
        let set = self.set_of(addr);
        match self.find_way_lane(set, lane, self.tag_of(addr)) {
            Some(way) => {
                let idx = self.row(set, lane) * self.ways + way;
                self.tags[idx] = 0;
                self.meta[idx] &= !FLAG_VALID;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines in `set` (lane 0).
    pub fn occupancy(&self, set: u64) -> usize {
        self.occupancy_lane(set, 0)
    }

    /// Number of valid lines in `set` of the given lane.
    pub fn occupancy_lane(&self, set: u64, lane: usize) -> usize {
        let base = self.row(set as u32, lane) * self.ways;
        self.meta[base..base + self.ways]
            .iter()
            .filter(|&&m| m & FLAG_VALID != 0)
            .count()
    }

    /// Block addresses currently cached in `set` of lane 0 (test/debug
    /// helper).
    pub fn set_blocks(&self, set: u64) -> Vec<VAddr> {
        let base = self.row(set as u32, 0) * self.ways;
        (0..self.ways)
            .filter(|w| self.meta[base + w] & FLAG_VALID != 0)
            .map(|w| self.geo.block_from(set, self.tags[base + w] >> 1))
            .collect()
    }

    /// Total valid lines in the cache, summed over every lane.
    pub fn total_occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & FLAG_VALID != 0).count()
    }

    /// Metadata of `addr`'s line in lane 0, if cached (read-only).
    pub fn line_meta(&self, addr: VAddr) -> Option<Line> {
        self.line_meta_lane(addr, 0)
    }

    /// Metadata of `addr`'s line in the given lane, if cached.
    pub fn line_meta_lane(&self, addr: VAddr, lane: usize) -> Option<Line> {
        let set = self.set_of(addr);
        let way = self.find_way_lane(set, lane, self.tag_of(addr))?;
        Some(self.line_at(self.row(set, lane) * self.ways + way))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256B.
        SetAssocCache::new(CacheGeometry::new(256, 2, 64), Policy::Lru)
    }

    /// Two addresses mapping to set 0, distinct tags.
    fn s0(tag: u64) -> VAddr {
        tag * 2 * 64
    }

    #[test]
    fn fill_then_probe_hits() {
        let mut c = tiny();
        assert!(!c.contains(s0(0)));
        assert_eq!(c.fill(s0(0), Entity::Main, false), None);
        assert!(c.contains(s0(0)));
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.occupancy(1), 0);
    }

    #[test]
    fn lru_eviction_returns_victim_metadata() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        // Set 0 full; next fill evicts the LRU line (tag 0).
        let ev = c.fill(s0(2), Entity::Main, false).expect("eviction");
        assert_eq!(ev.block, s0(0));
        assert_eq!(ev.filler, Entity::Main);
        assert!(!ev.prefetched);
        assert!(ev.used_since_fill, "demand fills count as used");
        assert!(!c.contains(s0(0)));
        assert!(c.contains(s0(1)));
        assert!(c.contains(s0(2)));
    }

    #[test]
    fn demand_touch_promotes_and_marks_used() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        let before = c.demand_touch(s0(0), false).expect("hit");
        assert!(before.used_since_fill);
        // Tag 0 is now MRU, so tag 1 (helper prefetch, never demanded)
        // gets evicted next.
        let ev = c.fill(s0(2), Entity::Main, false).unwrap();
        assert_eq!(ev.block, s0(1));
        assert!(ev.prefetched);
        assert!(!ev.used_since_fill);
    }

    #[test]
    fn prefetch_fill_unused_until_touched() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Helper, true);
        let meta = c.line_meta(s0(0)).unwrap();
        assert!(meta.prefetched && !meta.used_since_fill);
        c.demand_touch(s0(0), false).unwrap();
        assert!(c.line_meta(s0(0)).unwrap().used_since_fill);
    }

    #[test]
    fn refill_of_present_block_is_noop() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        assert_eq!(c.fill(s0(0), Entity::Helper, true), None);
        // Original metadata wins (the block was already there).
        assert_eq!(c.line_meta(s0(0)).unwrap().filler, Entity::Main);
        assert_eq!(c.occupancy(0), 1);
    }

    #[test]
    fn store_touch_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.demand_touch(s0(0), true).unwrap();
        c.fill(s0(1), Entity::Main, false);
        let ev = c.fill(s0(2), Entity::Main, false).unwrap();
        assert_eq!(ev.block, s0(0));
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        assert!(c.invalidate(s0(0)));
        assert!(!c.contains(s0(0)));
        assert!(!c.invalidate(s0(0)));
    }

    #[test]
    fn miss_touch_changes_nothing() {
        let mut c = tiny();
        assert_eq!(c.demand_touch(s0(0), false), None);
        assert_eq!(c.total_occupancy(), 0);
    }

    #[test]
    fn set_isolation() {
        let mut c = tiny();
        c.fill(0, Entity::Main, false); // set 0
        c.fill(64, Entity::Main, false); // set 1
        assert_eq!(c.occupancy(0), 1);
        assert_eq!(c.occupancy(1), 1);
        assert_eq!(c.set_blocks(0), vec![0]);
        assert_eq!(c.set_blocks(1), vec![64]);
    }

    #[test]
    fn occupancy_never_exceeds_ways() {
        let mut c = tiny();
        for tag in 0..10 {
            c.fill(s0(tag), Entity::Main, false);
            assert!(c.occupancy(0) <= 2);
        }
        assert_eq!(c.occupancy(0), 2);
    }

    #[test]
    fn at_variants_match_address_variants() {
        let mut a = tiny();
        let mut b = tiny();
        let g = a.geometry();
        for (i, addr) in [s0(0), s0(1), s0(2), 64, s0(0), 192].iter().enumerate() {
            let set = g.set_of(*addr) as u32;
            let tag = g.tag_of(*addr);
            let pf = i % 2 == 1;
            assert_eq!(
                a.fill(*addr, Entity::Main, pf),
                b.fill_at(set, tag, Entity::Main, pf)
            );
            assert_eq!(
                a.touch(*addr, false, true),
                b.touch_at(set, tag, false, true)
            );
        }
    }

    #[test]
    fn promote_matches_fill_of_present_block() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Main, false);
        let g = c.geometry();
        // Promote tag 0 (making tag 1 the LRU), as fill-of-present would.
        assert!(c.promote(g.set_of(s0(0)) as u32, g.tag_of(s0(0))));
        let ev = c.fill(s0(2), Entity::Main, false).unwrap();
        assert_eq!(ev.block, s0(1));
        // Promoting an absent block reports false and changes nothing.
        assert!(!c.promote(g.set_of(s0(7)) as u32, g.tag_of(s0(7))));
    }

    #[test]
    fn interleaved_lanes_match_scalar_replay() {
        // Interleave three different op streams across the lanes of one
        // batched cache: each lane must behave exactly like a scalar
        // cache replaying its stream alone.
        let geo = CacheGeometry::new(256, 2, 64);
        let lanes = 3;
        let mut batched = SetAssocCache::new_batch(geo, Policy::Lru, lanes);
        let mut scalars: Vec<_> = (0..lanes)
            .map(|_| SetAssocCache::new(geo, Policy::Lru))
            .collect();
        for step in 0..12u64 {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                let addr = s0((step + lane as u64 * 5) % 7);
                let pf = step % 2 == 0;
                assert_eq!(
                    batched.fill_lane(addr, lane, Entity::Main, pf),
                    scalar.fill(addr, Entity::Main, pf),
                    "fill step {step} lane {lane}"
                );
                assert_eq!(
                    batched.touch_lane(addr, lane, step % 3 == 0, true),
                    scalar.touch(addr, step % 3 == 0, true),
                    "touch step {step} lane {lane}"
                );
            }
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            for tag in 0..7 {
                assert_eq!(
                    batched.line_meta_lane(s0(tag), lane),
                    scalar.line_meta(s0(tag)),
                    "lane {lane} tag {tag}"
                );
            }
            assert_eq!(batched.occupancy_lane(0, lane), scalar.occupancy(0));
        }
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut c = tiny();
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        c.demand_touch(s0(1), true);
        c.reset();
        assert_eq!(c.total_occupancy(), 0);
        assert!(!c.contains(s0(0)));
        // Replacement state is fresh too: replay the LRU eviction test.
        c.fill(s0(0), Entity::Main, false);
        c.fill(s0(1), Entity::Helper, true);
        let ev = c.fill(s0(2), Entity::Main, false).expect("eviction");
        assert_eq!(ev.block, s0(0), "LRU order must restart from scratch");
    }
}
