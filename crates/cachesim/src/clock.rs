//! Simulation time and the latency model.

/// A point in simulated time, in CPU cycles.
pub type Cycle = u64;

/// Fixed-latency timing model of the memory hierarchy.
///
/// Defaults approximate a Core 2-class machine (paper Table 1): 3-cycle
/// L1D, 14-cycle shared L2, ~200-cycle DRAM, and a bus that can start one
/// fill every `bus_service` cycles (the bandwidth knob — queueing behind
/// it is how prefetch traffic "wastes precious bandwidth", paper §V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1D hit latency, cycles.
    pub l1_hit: Cycle,
    /// Shared L2 hit latency, cycles (on top of the L1 probe).
    pub l2_hit: Cycle,
    /// DRAM access latency, cycles (on top of L1+L2 probes), excluding
    /// bus queueing.
    pub mem: Cycle,
    /// Minimum gap between consecutive fill *starts* on the shared bus;
    /// effectively `line_size / bandwidth`.
    pub bus_service: Cycle,
    /// Cycles the issuing core spends on a software-prefetch instruction
    /// (it does not stall for the fill).
    pub prefetch_issue: Cycle,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 3,
            l2_hit: 14,
            mem: 200,
            bus_service: 16,
            prefetch_issue: 1,
        }
    }
}

impl LatencyConfig {
    /// Total unloaded latency of a demand access that misses everywhere.
    pub fn full_miss(&self) -> Cycle {
        self.l1_hit + self.l2_hit + self.mem
    }

    /// Total latency of an L2 hit.
    pub fn l2_total(&self) -> Cycle {
        self.l1_hit + self.l2_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_ordered() {
        let l = LatencyConfig::default();
        assert!(l.l1_hit < l.l2_hit);
        assert!(l.l2_hit < l.mem);
        assert_eq!(l.full_miss(), l.l1_hit + l.l2_hit + l.mem);
        assert_eq!(l.l2_total(), l.l1_hit + l.l2_hit);
    }
}
