//! Whole-system configuration and presets.

use crate::clock::LatencyConfig;
use crate::geometry::CacheGeometry;
use crate::replacement::Policy;

/// L1/L2 inclusion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inclusion {
    /// Evicting an L2 line back-invalidates it from every L1 (the Core 2
    /// family's inclusive LLC). Under this policy, L2 pollution evicts
    /// L1-resident data too — pollution bites slightly harder.
    Inclusive,
    /// L1s may keep lines the L2 evicted (default: simpler and the
    /// counters the paper measures are L2-side either way).
    #[default]
    NonInclusive,
}

/// Which hardware-prefetcher backend the per-core slots run.
///
/// The paper's machine pairs a streamer with a DPL stride prefetcher
/// per core ([`HwBackend::StreamerDpl`], the default); the other
/// variants swap that pair for a single backend so sweeps can compare
/// prefetching strategies on the same workload. Selection is
/// orthogonal to [`CacheConfig::hw_prefetchers`], which turns the
/// hardware path off entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HwBackend {
    /// The Core 2 pair: streaming + DPL stride prefetchers (default).
    #[default]
    StreamerDpl,
    /// Streaming (sequential) prefetcher only.
    Streamer,
    /// DPL (IP-indexed stride) prefetcher only.
    Dpl,
    /// Pointer-chase (content-directed) prefetcher: learns block
    /// successor edges and chases them to a depth budget.
    PointerChase,
    /// Perceptron-gated stride prefetcher: stride candidates filtered
    /// by a learned feature-weight gate.
    Perceptron,
}

impl HwBackend {
    /// Every backend, in wire order.
    pub const ALL: [HwBackend; 5] = [
        HwBackend::StreamerDpl,
        HwBackend::Streamer,
        HwBackend::Dpl,
        HwBackend::PointerChase,
        HwBackend::Perceptron,
    ];

    /// Wire/flag spelling (`--prefetcher` values, serve request keys).
    pub fn name(self) -> &'static str {
        match self {
            HwBackend::StreamerDpl => "streamer+dpl",
            HwBackend::Streamer => "streamer",
            HwBackend::Dpl => "dpl",
            HwBackend::PointerChase => "pointer-chase",
            HwBackend::Perceptron => "perceptron",
        }
    }

    /// Parse a wire spelling; the error lists every valid backend.
    pub fn parse(s: &str) -> Result<HwBackend, String> {
        HwBackend::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = HwBackend::ALL.iter().map(|b| b.name()).collect();
                format!("unknown prefetcher {s}; expected {}", names.join("|"))
            })
    }
}

/// Configuration of the simulated CMP memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cores sharing the L2 (the SP experiments use 2: main +
    /// helper, like one die of the paper's Q6600).
    pub cores: u8,
    /// Private L1D geometry (per core).
    pub l1: CacheGeometry,
    /// Shared L2 (last-level) geometry.
    pub l2: CacheGeometry,
    /// L2 replacement policy (L1s always use LRU).
    pub policy: Policy,
    /// L1/L2 inclusion policy.
    pub inclusion: Inclusion,
    /// Latency model.
    pub latency: LatencyConfig,
    /// L2 MSHR entries (outstanding fills).
    pub mshr_entries: usize,
    /// Whether the per-core hardware prefetchers are enabled. The paper's
    /// *Original Set Affinity* is measured with these disabled ("L2
    /// prefetchers are all disabled", Definition 2).
    pub hw_prefetchers: bool,
    /// Streaming-prefetcher slots per core.
    pub stream_slots: usize,
    /// Blocks prefetched ahead per streamer trigger.
    pub stream_degree: u32,
    /// DPL (stride) table entries per core.
    pub dpl_entries: usize,
    /// Strides prefetched ahead per DPL trigger.
    pub dpl_degree: u32,
    /// Which backend the hardware-prefetcher slots run.
    pub hw_backend: HwBackend,
    /// Pointer-chase correlation-table entries per core.
    pub pchase_entries: usize,
    /// Blocks the pointer-chase backend chases per trigger.
    pub pchase_depth: u32,
}

impl CacheConfig {
    /// The default, **scaled** configuration used by the reproduction:
    /// the paper's geometry shrunk 16x (L2 4MB -> 256KB, L1 32KB -> 4KB)
    /// so the scaled workloads exert the same per-set pressure as the
    /// paper's full-size inputs did on the real machine (DESIGN.md §2).
    pub fn scaled_default() -> Self {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(4 * 1024, 8, 64),
            l2: CacheGeometry::new(256 * 1024, 16, 64),
            policy: Policy::Lru,
            inclusion: Inclusion::NonInclusive,
            latency: LatencyConfig::default(),
            mshr_entries: 16,
            hw_prefetchers: true,
            stream_slots: 8,
            stream_degree: 2,
            dpl_entries: 16,
            dpl_degree: 2,
            hw_backend: HwBackend::StreamerDpl,
            pchase_entries: 256,
            pchase_depth: 2,
        }
    }

    /// The paper's hardware (Table 1): Intel Core 2 Quad Q6600 — per die,
    /// two cores with 32KB 8-way L1Ds sharing a 4MB 16-way unified L2,
    /// 64-byte lines.
    pub fn core2_q6600() -> Self {
        CacheConfig {
            l1: CacheGeometry::new(32 * 1024, 8, 64),
            l2: CacheGeometry::new(4 * 1024 * 1024, 16, 64),
            ..Self::scaled_default()
        }
    }

    /// The same configuration with hardware prefetchers disabled (the
    /// paper's *original* run mode, Definition 2).
    pub fn without_hw_prefetchers(mut self) -> Self {
        self.hw_prefetchers = false;
        self
    }

    /// Replace the L2 replacement policy (for the replacement ablation).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the hardware-prefetcher backend (and enable the hardware
    /// path, which a backend choice implies).
    pub fn with_hw_backend(mut self, backend: HwBackend) -> Self {
        self.hw_backend = backend;
        self.hw_prefetchers = true;
        self
    }

    /// Make the L2 inclusive (back-invalidating), as on the real Core 2.
    pub fn inclusive(mut self) -> Self {
        self.inclusion = Inclusion::Inclusive;
        self
    }

    /// The address-mapping geometry compiled traces must match to run on
    /// a [`MemorySystem`](crate::MemorySystem) built from this config.
    pub fn trace_geometry(&self) -> sp_trace::TraceGeometry {
        sp_trace::TraceGeometry {
            l1: self.l1.level_geometry(),
            l2: self.l2.level_geometry(),
        }
    }

    /// Validate cross-field invariants.
    ///
    /// # Panics
    /// If the L1 line size differs from the L2's (the hierarchy moves
    /// whole L2 lines), or there are no cores.
    pub fn validate(&self) {
        assert!(self.cores >= 1, "need at least one core");
        assert_eq!(
            self.l1.line_size, self.l2.line_size,
            "L1 and L2 must share a line size"
        );
        assert!(self.mshr_entries > 0, "need at least one MSHR");
        assert!(
            self.pchase_entries > 0 && self.pchase_depth > 0,
            "pointer-chase table and depth must be non-zero"
        );
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CacheConfig::scaled_default().validate();
        CacheConfig::core2_q6600().validate();
    }

    #[test]
    fn paper_l2_matches_table1() {
        let c = CacheConfig::core2_q6600();
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.line_size, 64);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 8);
    }

    #[test]
    fn scaled_l2_is_16x_smaller_same_shape() {
        let s = CacheConfig::scaled_default();
        let p = CacheConfig::core2_q6600();
        assert_eq!(p.l2.size_bytes / s.l2.size_bytes, 16);
        assert_eq!(s.l2.ways, p.l2.ways);
        assert_eq!(s.l2.line_size, p.l2.line_size);
    }

    #[test]
    fn builder_helpers() {
        let c = CacheConfig::scaled_default().without_hw_prefetchers();
        assert!(!c.hw_prefetchers);
        let c = c.with_policy(Policy::Fifo);
        assert_eq!(c.policy, Policy::Fifo);
        assert_eq!(
            c.inclusion,
            Inclusion::NonInclusive,
            "non-inclusive by default"
        );
        assert_eq!(c.inclusive().inclusion, Inclusion::Inclusive);
    }

    #[test]
    fn backend_names_round_trip_and_unknowns_list_the_valid_set() {
        for b in HwBackend::ALL {
            assert_eq!(HwBackend::parse(b.name()), Ok(b));
        }
        assert_eq!(HwBackend::default(), HwBackend::StreamerDpl);
        let err = HwBackend::parse("markov").unwrap_err();
        assert!(err.contains("unknown prefetcher markov"), "{err}");
        for b in HwBackend::ALL {
            assert!(err.contains(b.name()), "{err} missing {}", b.name());
        }
    }

    #[test]
    fn with_hw_backend_selects_and_enables() {
        let c = CacheConfig::scaled_default()
            .without_hw_prefetchers()
            .with_hw_backend(HwBackend::PointerChase);
        assert_eq!(c.hw_backend, HwBackend::PointerChase);
        assert!(c.hw_prefetchers, "choosing a backend implies enabling");
        c.validate();
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn validate_rejects_mismatched_lines() {
        let mut c = CacheConfig::scaled_default();
        c.l1 = CacheGeometry::new(4 * 1024, 8, 32);
        c.validate();
    }
}
