//! Epoch-windowed telemetry: the flight recorder for cache pollution.
//!
//! Every surface built so far — [`crate::stats::MemStats`] counters,
//! [`crate::events::EventSummary`] folds, the Prometheus exposition —
//! is a *run aggregate*: it says how much pollution happened, never
//! *when*. The paper's argument is temporal (prefetches land too far
//! ahead of the main thread's return), and the planned adaptive
//! distance controller needs a phase-wise signal to steer on. This
//! module adds that signal without touching the aggregates.
//!
//! [`EpochSink`] is an [`EventSink`] that folds the event stream into
//! fixed-size windows of [`EpochWindow`]s. Windows advance on
//! *main-thread references* (via the sink's demand-tick channel), not
//! on cycles: epoch `i` always means "the main thread's references
//! `[i*N, (i+1)*N)`", so series at different prefetch distances line
//! up reference-for-reference — exactly what the per-distance epoch
//! heatmap in `spt report` compares.
//!
//! Invariants the test suite pins:
//!
//! * **Zero cost disabled** — the recorder rides the existing
//!   `EventSink` generic; `NullSink` replays compile it out entirely
//!   (the `epoch_overhead` bench suite proves the disabled path, the
//!   demand-tick guard mirrors the `ENABLED` guard).
//! * **Non-perturbing enabled** — the sink only observes; counters are
//!   bit-identical with and without it (differential suites).
//! * **Exact refinement** — [`EpochSeries::totals`] folds back to the
//!   run-aggregate counters exactly: per-thread hit classes, issued /
//!   first-use prefetch counts, and the three displacement cases.

use crate::clock::Cycle;
use crate::events::{Event, EventSink, Timeliness};
use crate::stats::{Entity, HitClass, PollutionStats};
use sp_trace::VAddr;
use std::collections::{BTreeMap, HashMap};

/// Default epoch length, in main-thread references.
pub const DEFAULT_EPOCH_LEN: u64 = 10_000;

/// How many of the hottest sets each window keeps (by fill pressure).
pub const EPOCH_TOP_SETS: usize = 4;

/// Log2 buckets in the per-set fill-count histogram: `[0]` counts sets
/// with exactly 1 fill, `[1]` sets with 2–3, `[2]` sets with 4–7, …
/// capped at `2^(LEN-1)` and up in the last bucket.
pub const EPOCH_HIST_BUCKETS: usize = 8;

/// Index into the `[l1, total_hit, partial, miss]` hit-class arrays.
fn class_index(c: HitClass) -> usize {
    match c {
        HitClass::L1Hit => 0,
        HitClass::TotalHit => 1,
        HitClass::PartialHit => 2,
        HitClass::TotalMiss => 3,
    }
}

/// One fixed-size window of the telemetry series. All counters cover
/// events observed while this window was current; `top_sets` and
/// `fill_histogram` are materialized from the window's per-set fill
/// tally when it closes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochWindow {
    /// Window number, starting at 0.
    pub index: u64,
    /// Main-thread references retired in this window (== the epoch
    /// length for every window but the final partial one).
    pub refs: u64,
    /// Helper-thread covered loads completed in this window.
    pub helper_refs: u64,
    /// Main-thread hit classes `[l1, total_hit, partial, miss]`.
    pub main: [u64; 4],
    /// Helper-thread hit classes `[l1, total_hit, partial, miss]`.
    pub helper: [u64; 4],
    /// Prefetches issued, by class (see [`crate::events::PfClass`]).
    pub issued: [u64; 5],
    /// Speculative L2 fills, by class.
    pub filled: [u64; 5],
    /// First main-thread uses, by class.
    pub first_uses: [u64; 5],
    /// Never-used prefetches evicted, by class.
    pub evicted_unused: [u64; 5],
    /// The paper's displacement cases `[reuse, unused_helper,
    /// unused_hw]`.
    pub pollution: [u64; 3],
    /// First uses whose fill was still in flight.
    pub late: u64,
    /// First uses within the early threshold of their fill.
    pub on_time: u64,
    /// First uses past the early threshold (eviction-risk residency).
    pub early: u64,
    /// L2 fills by origin `[demand, helper, hw]`.
    pub l2_fills: [u64; 3],
    /// Peak per-core MSHR occupancy observed at access completion.
    pub mshr_peak: u64,
    /// Sum of MSHR occupancies over all ticks (divide by `refs +
    /// helper_refs` for the mean).
    pub mshr_sum: u64,
    /// The window's hottest sets: `(set, fills)` sorted by descending
    /// fills, ties by ascending set index. At most [`EPOCH_TOP_SETS`].
    pub top_sets: Vec<(u32, u64)>,
    /// Log2 histogram of per-set fill counts (see
    /// [`EPOCH_HIST_BUCKETS`]); index `b` counts sets with fills in
    /// `[2^b, 2^(b+1))`.
    pub fill_histogram: Vec<u64>,
}

impl EpochWindow {
    /// Total demand + helper ticks in this window.
    pub fn ticks(&self) -> u64 {
        self.refs + self.helper_refs
    }

    /// Main-thread miss rate (totally-missed fraction; 0.0 when empty).
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.main[class_index(HitClass::TotalMiss)] as f64 / self.refs as f64
        }
    }

    /// Total displacement events across the three cases.
    pub fn total_pollution(&self) -> u64 {
        self.pollution.iter().sum()
    }

    /// Timeliness bucket accessor by enum, for report loops.
    pub fn timeliness(&self, t: Timeliness) -> u64 {
        match t {
            Timeliness::Late => self.late,
            Timeliness::OnTime => self.on_time,
            Timeliness::Early => self.early,
        }
    }

    /// Mean MSHR occupancy at completion (0.0 when empty).
    pub fn mshr_mean(&self) -> f64 {
        let t = self.ticks();
        if t == 0 {
            0.0
        } else {
            self.mshr_sum as f64 / t as f64
        }
    }

    /// Fold `other`'s counters into this window (series totals; the
    /// set-shape fields don't aggregate and stay as they are).
    fn accumulate(&mut self, other: &EpochWindow) {
        self.refs += other.refs;
        self.helper_refs += other.helper_refs;
        for i in 0..4 {
            self.main[i] += other.main[i];
            self.helper[i] += other.helper[i];
        }
        for i in 0..5 {
            self.issued[i] += other.issued[i];
            self.filled[i] += other.filled[i];
            self.first_uses[i] += other.first_uses[i];
            self.evicted_unused[i] += other.evicted_unused[i];
        }
        for i in 0..3 {
            self.pollution[i] += other.pollution[i];
            self.l2_fills[i] += other.l2_fills[i];
        }
        self.late += other.late;
        self.on_time += other.on_time;
        self.early += other.early;
        self.mshr_peak = self.mshr_peak.max(other.mshr_peak);
        self.mshr_sum += other.mshr_sum;
    }

    /// Encode as one NDJSON line (no trailing newline). `extra` is
    /// spliced verbatim after the opening brace — callers use it to
    /// prepend identifying fields (`"distance":8,`); pass `""` for
    /// none.
    pub fn ndjson(&self, extra: &str) -> String {
        fn arr(xs: &[u64]) -> String {
            let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", body.join(","))
        }
        let tops: Vec<String> = self
            .top_sets
            .iter()
            .map(|(s, f)| format!("[{s},{f}]"))
            .collect();
        format!(
            "{{{extra}\"epoch\":{},\"refs\":{},\"helper_refs\":{},\
             \"main\":{},\"helper\":{},\"issued\":{},\"filled\":{},\
             \"first_uses\":{},\"evicted_unused\":{},\"pollution\":{},\
             \"late\":{},\"on_time\":{},\"early\":{},\"l2_fills\":{},\
             \"mshr_peak\":{},\"mshr_sum\":{},\"top_sets\":[{}],\
             \"fill_histogram\":{}}}",
            self.index,
            self.refs,
            self.helper_refs,
            arr(&self.main),
            arr(&self.helper),
            arr(&self.issued),
            arr(&self.filled),
            arr(&self.first_uses),
            arr(&self.evicted_unused),
            arr(&self.pollution),
            self.late,
            self.on_time,
            self.early,
            arr(&self.l2_fills),
            self.mshr_peak,
            self.mshr_sum,
            tops.join(","),
            arr(&self.fill_histogram),
        )
    }
}

/// A finished telemetry series: every closed window plus the final
/// partial one, in order. Equal runs produce equal series
/// (`PartialEq`), which is what the jobs/lanes determinism suite pins.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSeries {
    /// Window length in main-thread references.
    pub epoch_len: u64,
    /// The timeliness threshold the fold classified against.
    pub early_threshold: Cycle,
    /// The windows, in execution order.
    pub epochs: Vec<EpochWindow>,
}

impl EpochSeries {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when no window was recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Fold the whole series into one window (index 0, set-shape
    /// fields empty). The numeric fields must equal the run-aggregate
    /// counters exactly — epochs are a refinement of the aggregates,
    /// not a second truth; `totals_match_run` spells out the mapping.
    pub fn totals(&self) -> EpochWindow {
        let mut t = EpochWindow::default();
        for w in &self.epochs {
            t.accumulate(w);
        }
        t
    }

    /// The aggregate [`PollutionStats`] this series folds to (same
    /// contract as [`crate::events::EventSummary::pollution_stats`]).
    pub fn pollution_stats(&self) -> PollutionStats {
        let t = self.totals();
        PollutionStats {
            reuse_evictions: t.pollution[0],
            unused_helper_evictions: t.pollution[1],
            unused_hw_evictions: t.pollution[2],
            dead_prefetches: t.evicted_unused.iter().sum(),
        }
    }

    /// Encode the series as NDJSON, one window per line (trailing
    /// newline included when non-empty). `extra` is spliced into every
    /// line — see [`EpochWindow::ndjson`].
    pub fn to_ndjson(&self, extra: &str) -> String {
        let mut out = String::new();
        for w in &self.epochs {
            out.push_str(&w.ndjson(extra));
            out.push('\n');
        }
        out
    }
}

/// The recording sink: an [`EventSink`] with `DEMAND_TICKS` that folds
/// the stream into [`EpochWindow`]s and closes a window every
/// `epoch_len` main-thread references. Call [`EpochSink::finish`] after
/// the run's final drain to collect the [`EpochSeries`] (the partial
/// last window — including end-of-run `Cycle::MAX` drain events —
/// folds in).
#[derive(Debug, Clone)]
pub struct EpochSink {
    epoch_len: u64,
    early_threshold: Cycle,
    cur: EpochWindow,
    /// Fills per set in the current window (BTreeMap: deterministic
    /// iteration for top-K/histogram materialization).
    cur_sets: BTreeMap<u32, u64>,
    /// Speculatively filled blocks awaiting first use — carried
    /// *across* windows so timeliness matches the run-level fold: a
    /// fill in epoch 3 first used in epoch 5 classifies (and counts)
    /// in epoch 5.
    pending: HashMap<VAddr, Cycle>,
    done: Vec<EpochWindow>,
}

impl EpochSink {
    /// A recorder with the given window length (clamped to ≥ 1) and
    /// early-use threshold (see
    /// [`crate::events::default_early_threshold`]).
    pub fn new(epoch_len: u64, early_threshold: Cycle) -> EpochSink {
        EpochSink {
            epoch_len: epoch_len.max(1),
            early_threshold,
            cur: EpochWindow::default(),
            cur_sets: BTreeMap::new(),
            pending: HashMap::new(),
            done: Vec::new(),
        }
    }

    /// Materialize the current window's set shape and push it.
    fn close_window(&mut self) {
        let sets = std::mem::take(&mut self.cur_sets);
        let mut hist = vec![0u64; EPOCH_HIST_BUCKETS];
        let mut ranked: Vec<(u32, u64)> = Vec::with_capacity(sets.len());
        for (set, fills) in sets {
            let bucket = (63 - fills.leading_zeros() as usize).min(EPOCH_HIST_BUCKETS - 1);
            hist[bucket] += 1;
            ranked.push((set, fills));
        }
        // Hottest first; ties by ascending set index (determinism).
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(EPOCH_TOP_SETS);
        let next_index = self.cur.index + 1;
        let mut w = std::mem::take(&mut self.cur);
        w.top_sets = ranked;
        w.fill_histogram = hist;
        self.done.push(w);
        self.cur.index = next_index;
    }

    /// `true` when the current window has observed nothing at all.
    fn cur_is_blank(&self) -> bool {
        let z = EpochWindow {
            index: self.cur.index,
            ..EpochWindow::default()
        };
        self.cur == z && self.cur_sets.is_empty()
    }

    /// Finish recording: close the final partial window (if it saw
    /// anything) and return the series.
    pub fn finish(mut self) -> EpochSeries {
        if !self.cur_is_blank() {
            self.close_window();
        }
        EpochSeries {
            epoch_len: self.epoch_len,
            early_threshold: self.early_threshold,
            epochs: self.done,
        }
    }
}

impl EventSink for EpochSink {
    const ENABLED: bool = true;
    const DEMAND_TICKS: bool = true;

    fn emit(&mut self, ev: Event) {
        match ev {
            Event::PrefetchIssued { class, .. } => self.cur.issued[class.index()] += 1,
            Event::PrefetchFilled {
                class, block, at, ..
            } => {
                self.cur.filled[class.index()] += 1;
                self.pending.insert(block, at);
            }
            Event::PrefetchFirstUse {
                class, block, at, ..
            } => {
                self.cur.first_uses[class.index()] += 1;
                match self.pending.remove(&block) {
                    None => self.cur.late += 1,
                    Some(fill_at) => {
                        if at.saturating_sub(fill_at) > self.early_threshold {
                            self.cur.early += 1;
                        } else {
                            self.cur.on_time += 1;
                        }
                    }
                }
            }
            Event::PrefetchEvictedUnused { class, block, .. } => {
                self.cur.evicted_unused[class.index()] += 1;
                self.pending.remove(&block);
            }
            Event::PollutionEviction { case, .. } => {
                self.cur.pollution[case.index()] += 1;
            }
            Event::L2Fill { origin, set, .. } => {
                self.cur.l2_fills[origin.index()] += 1;
                *self.cur_sets.entry(set).or_insert(0) += 1;
            }
        }
    }

    fn demand_tick(&mut self, entity: Entity, class: HitClass, _set: u32, mshr: usize, _at: Cycle) {
        let i = class_index(class);
        self.cur.mshr_sum += mshr as u64;
        self.cur.mshr_peak = self.cur.mshr_peak.max(mshr as u64);
        match entity {
            Entity::Main => {
                self.cur.refs += 1;
                self.cur.main[i] += 1;
                // Only the main thread's progress advances the window:
                // epoch boundaries are positions in the *demanded*
                // reference stream, comparable across distances.
                if self.cur.refs == self.epoch_len {
                    self.close_window();
                }
            }
            _ => {
                self.cur.helper_refs += 1;
                self.cur.helper[i] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::PfClass;

    fn tick(sink: &mut EpochSink, n: u64, class: HitClass) {
        for _ in 0..n {
            sink.demand_tick(Entity::Main, class, 0, 2, 100);
        }
    }

    #[test]
    fn windows_close_on_main_refs_only() {
        let mut s = EpochSink::new(10, 1000);
        tick(&mut s, 25, HitClass::L1Hit);
        for _ in 0..7 {
            s.demand_tick(Entity::Helper, HitClass::TotalMiss, 3, 4, 50);
        }
        let series = s.finish();
        assert_eq!(series.len(), 3);
        assert_eq!(series.epochs[0].refs, 10);
        assert_eq!(series.epochs[1].refs, 10);
        assert_eq!(series.epochs[2].refs, 5);
        // All helper ticks landed in the first window (emitted first in
        // this synthetic stream? no — emitted after 25 main ticks, so
        // they land in the final partial window).
        assert_eq!(series.epochs[2].helper_refs, 7);
        assert_eq!(series.epochs[2].helper[3], 7);
        let t = series.totals();
        assert_eq!(t.refs, 25);
        assert_eq!(t.helper_refs, 7);
        assert_eq!(t.main[0], 25);
        assert_eq!(t.mshr_peak, 4);
        assert_eq!(t.mshr_sum, 25 * 2 + 7 * 4);
    }

    #[test]
    fn exact_epoch_multiple_leaves_no_partial_window() {
        let mut s = EpochSink::new(5, 1000);
        tick(&mut s, 10, HitClass::TotalMiss);
        let series = s.finish();
        assert_eq!(series.len(), 2);
        assert!(series.epochs.iter().all(|w| w.refs == 5));
        assert_eq!(series.totals().main[3], 10);
        assert!((series.epochs[0].miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeliness_carries_across_window_boundaries() {
        let mut s = EpochSink::new(2, 100);
        s.emit(Event::PrefetchFilled {
            class: PfClass::Helper,
            block: 64,
            set: 1,
            at: 10,
        });
        tick(&mut s, 2, HitClass::L1Hit); // closes window 0
        s.emit(Event::PrefetchFirstUse {
            class: PfClass::Helper,
            block: 64,
            set: 1,
            at: 50,
        });
        // Unseen fill -> late; seen but idle past threshold -> early.
        s.emit(Event::PrefetchFirstUse {
            class: PfClass::Helper,
            block: 128,
            set: 1,
            at: 60,
        });
        let series = s.finish();
        assert_eq!(series.epochs[0].on_time, 0, "fill alone is not a use");
        assert_eq!(series.epochs[1].on_time, 1, "classified where used");
        assert_eq!(series.epochs[1].late, 1);
        let t = series.totals();
        assert_eq!((t.late, t.on_time, t.early), (1, 1, 0));
    }

    #[test]
    fn set_shape_materializes_per_window() {
        let mut s = EpochSink::new(1, 100);
        for (set, n) in [(7u32, 5u64), (3, 5), (1, 2), (9, 1), (2, 1), (4, 1)] {
            for _ in 0..n {
                s.emit(Event::L2Fill {
                    origin: crate::events::FillOrigin::Demand,
                    victim: None,
                    set,
                    at: 1,
                });
            }
        }
        tick(&mut s, 1, HitClass::L1Hit);
        let series = s.finish();
        let w = &series.epochs[0];
        // Ties by fills break toward the lower set index.
        assert_eq!(w.top_sets, vec![(3, 5), (7, 5), (1, 2), (2, 1)]);
        // Histogram: three sets with 1 fill (bucket 0), one with 2
        // (bucket 1), two with 5 (bucket 2).
        assert_eq!(&w.fill_histogram[..3], &[3, 1, 2]);
        assert_eq!(w.l2_fills, [15, 0, 0]);
    }

    #[test]
    fn ndjson_splices_extra_fields_and_is_one_line_per_epoch() {
        let mut s = EpochSink::new(4, 100);
        tick(&mut s, 6, HitClass::TotalHit);
        let series = s.finish();
        let nd = series.to_ndjson("\"distance\":8,");
        assert_eq!(nd.lines().count(), 2);
        for line in nd.lines() {
            assert!(line.starts_with("{\"distance\":8,\"epoch\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(nd.contains("\"refs\":4"));
        assert!(nd.contains("\"refs\":2"));
    }

    #[test]
    fn empty_run_yields_empty_series() {
        let series = EpochSink::new(10, 100).finish();
        assert!(series.is_empty());
        assert_eq!(series.totals(), EpochWindow::default());
    }
}
