//! Event-level observability: the prefetch lifecycle / eviction
//! attribution trace behind `spt events` and the serve-side metrics
//! surface.
//!
//! # Design
//!
//! The hot paths of [`crate::hierarchy::MemorySystem`] are generic over
//! an [`EventSink`]; every emission site is guarded by the sink's
//! associated `const ENABLED`, so the default [`NullSink`]
//! instantiation monomorphizes to *exactly* the code that existed
//! before events — no trait objects, no branches, no dead stores. The
//! `spt bench` suite runs the `NullSink` path and is checked against
//! the committed baseline, which is the enforcement of that guarantee.
//!
//! # Taxonomy
//!
//! Prefetch lifecycle (per prefetched block):
//!
//! ```text
//! Issued ──► Filled ──► FirstUse          (useful; late/on-time/early)
//!                  └──► EvictedUnused     (dead prefetch)
//! ```
//!
//! A `FirstUse` *without* a preceding `Filled` is the late-prefetch
//! signature: the main thread demanded the block while its fill was
//! still in flight (the paper's *partially cache hit*).
//!
//! Eviction attribution mirrors the paper's three displacement cases
//! (§II.C) one-to-one with the [`crate::stats::PollutionStats`]
//! counters: every counter increment has exactly one matching
//! [`Event::PollutionEviction`] emission, so folding a run's event
//! stream reproduces its aggregate pollution statistics *exactly*
//! (asserted by `tests/events_differential.rs`).
//!
//! [`Event::L2Fill`] carries the per-set pressure signal: which origin
//! (demand / helper prefetch / hardware prefetch) filled which set, and
//! whose line it displaced — enough to reconstruct occupancy-by-origin
//! and distinct-fill churn per set, making Set Affinity observable at
//! runtime instead of only profiled.

use crate::clock::{Cycle, LatencyConfig};
use crate::stats::{Entity, HitClass, PollutionStats};
use sp_trace::VAddr;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Software/hardware prefetch class, indexing the same
/// `[helper, stream, dpl, pchase, perceptron]` arrays as
/// [`crate::stats::MemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfClass {
    /// Helper-thread software prefetch (including speculative backbone
    /// loads).
    Helper,
    /// Hardware streaming prefetcher.
    Stream,
    /// Hardware DPL (stride) prefetcher.
    Dpl,
    /// Pointer-chase (content-directed) prefetcher.
    Pchase,
    /// Perceptron-gated stride prefetcher.
    Perceptron,
}

impl PfClass {
    /// The class of a prefetching entity (`None` for the main thread).
    pub fn of(e: Entity) -> Option<PfClass> {
        match e {
            Entity::Main => None,
            Entity::Helper => Some(PfClass::Helper),
            Entity::HwStream(_) => Some(PfClass::Stream),
            Entity::HwDpl(_) => Some(PfClass::Dpl),
            Entity::HwPchase(_) => Some(PfClass::Pchase),
            Entity::HwPerceptron(_) => Some(PfClass::Perceptron),
        }
    }

    /// Index into the `[helper, stream, dpl, pchase, perceptron]` stat
    /// arrays.
    pub fn index(self) -> usize {
        match self {
            PfClass::Helper => 0,
            PfClass::Stream => 1,
            PfClass::Dpl => 2,
            PfClass::Pchase => 3,
            PfClass::Perceptron => 4,
        }
    }

    /// Wire/label spelling.
    pub fn name(self) -> &'static str {
        match self {
            PfClass::Helper => "helper",
            PfClass::Stream => "stream",
            PfClass::Dpl => "dpl",
            PfClass::Pchase => "pchase",
            PfClass::Perceptron => "perceptron",
        }
    }

    /// All classes, in stat-array order.
    pub const ALL: [PfClass; 5] = [
        PfClass::Helper,
        PfClass::Stream,
        PfClass::Dpl,
        PfClass::Pchase,
        PfClass::Perceptron,
    ];
}

/// Provenance of an L2 line: who brought it in, and was it demanded or
/// speculative. This is the per-set occupancy taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOrigin {
    /// A demand fill (main thread, or a prefetch a demand merged into —
    /// the line holds demanded data either way).
    Demand,
    /// A still-speculative helper-thread prefetch fill.
    Helper,
    /// A still-speculative hardware-prefetcher fill.
    Hw,
}

impl FillOrigin {
    /// Classify a fill by its filler entity and speculation flag.
    pub fn of(filler: Entity, prefetched: bool) -> FillOrigin {
        if !prefetched {
            FillOrigin::Demand
        } else if filler == Entity::Helper {
            FillOrigin::Helper
        } else {
            FillOrigin::Hw
        }
    }

    /// Index into `[demand, helper, hw]` arrays.
    pub fn index(self) -> usize {
        match self {
            FillOrigin::Demand => 0,
            FillOrigin::Helper => 1,
            FillOrigin::Hw => 2,
        }
    }

    /// Wire/label spelling.
    pub fn name(self) -> &'static str {
        match self {
            FillOrigin::Demand => "demand",
            FillOrigin::Helper => "helper",
            FillOrigin::Hw => "hw",
        }
    }

    /// All origins, in index order.
    pub const ALL: [FillOrigin; 3] = [FillOrigin::Demand, FillOrigin::Helper, FillOrigin::Hw];
}

/// The paper's three pollution displacement cases (§II.C), aligned with
/// the [`PollutionStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollutionCase {
    /// Case 1: a prefetch displaced demanded data the main thread later
    /// re-missed on (attributed lazily, at the re-miss).
    Reuse,
    /// Case 2: a prefetch displaced a not-yet-used helper-prefetched
    /// block.
    UnusedHelper,
    /// Case 3: a prefetch displaced a not-yet-used hardware-prefetched
    /// block.
    UnusedHw,
}

impl PollutionCase {
    /// Index into `[case1, case2, case3]` arrays.
    pub fn index(self) -> usize {
        match self {
            PollutionCase::Reuse => 0,
            PollutionCase::UnusedHelper => 1,
            PollutionCase::UnusedHw => 2,
        }
    }

    /// Wire/label spelling.
    pub fn name(self) -> &'static str {
        match self {
            PollutionCase::Reuse => "reuse",
            PollutionCase::UnusedHelper => "unused_helper",
            PollutionCase::UnusedHw => "unused_hw",
        }
    }

    /// All cases, in index order.
    pub const ALL: [PollutionCase; 3] = [
        PollutionCase::Reuse,
        PollutionCase::UnusedHelper,
        PollutionCase::UnusedHw,
    ];
}

/// One observability event. Events are raw observations — timeliness
/// and per-set pressure are *derived* by [`EventSummary::absorb`], so
/// the stream itself stays cheap to emit and encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A prefetch was issued (whether or not it leads to a fill; dropped
    /// prefetches — already cached, in flight, MSHR full — issue but
    /// never fill). Mirrors `prefetches_issued`.
    PrefetchIssued {
        /// Issuing class.
        class: PfClass,
        /// Target block address.
        block: VAddr,
        /// Issue time.
        at: Cycle,
    },
    /// A speculative fill landed in the L2. Mirrors prefetch-flagged
    /// L2 installs.
    PrefetchFilled {
        /// Filling class.
        class: PfClass,
        /// Block address.
        block: VAddr,
        /// L2 set index.
        set: u32,
        /// Fill completion time (`u64::MAX` for fills drained at end of
        /// run, after the last access).
        at: Cycle,
    },
    /// First main-thread demand touch of a prefetched block. Mirrors
    /// `prefetches_useful`. Emitted with no preceding
    /// [`Event::PrefetchFilled`] when the fill was still in flight —
    /// the *late* prefetch signature.
    PrefetchFirstUse {
        /// Class of the prefetch being used.
        class: PfClass,
        /// Block address.
        block: VAddr,
        /// L2 set index.
        set: u32,
        /// Demand-touch time.
        at: Cycle,
    },
    /// A prefetched block was evicted without ever being demanded.
    /// Mirrors `dead_prefetches`.
    PrefetchEvictedUnused {
        /// Class of the dead prefetch.
        class: PfClass,
        /// Block address.
        block: VAddr,
        /// L2 set index.
        set: u32,
        /// Eviction time.
        at: Cycle,
    },
    /// One pollution displacement event, per the paper's three cases.
    /// Mirrors the [`PollutionStats`] case counters exactly. Case 1 is
    /// emitted at the main thread's re-miss (when the pollution is
    /// *detected*), cases 2 and 3 at the eviction itself.
    PollutionEviction {
        /// Which displacement case.
        case: PollutionCase,
        /// The victim block.
        block: VAddr,
        /// Its L2 set index.
        set: u32,
        /// Detection time.
        at: Cycle,
    },
    /// Any L2 fill, with origin and victim provenance — the per-set
    /// pressure signal. Mirrors `l2_fills`.
    L2Fill {
        /// Origin of the incoming line.
        origin: FillOrigin,
        /// Origin of the displaced line, if a valid line was evicted.
        victim: Option<FillOrigin>,
        /// L2 set index.
        set: u32,
        /// Fill time (`u64::MAX` for end-of-run drains).
        at: Cycle,
    },
}

impl Event {
    /// Encode as one NDJSON line (no trailing newline).
    pub fn ndjson(&self) -> String {
        match *self {
            Event::PrefetchIssued { class, block, at } => format!(
                "{{\"ev\":\"prefetch_issued\",\"class\":\"{}\",\"block\":{block},\"at\":{at}}}",
                class.name()
            ),
            Event::PrefetchFilled {
                class,
                block,
                set,
                at,
            } => format!(
                "{{\"ev\":\"prefetch_filled\",\"class\":\"{}\",\"block\":{block},\"set\":{set},\"at\":{at}}}",
                class.name()
            ),
            Event::PrefetchFirstUse {
                class,
                block,
                set,
                at,
            } => format!(
                "{{\"ev\":\"prefetch_first_use\",\"class\":\"{}\",\"block\":{block},\"set\":{set},\"at\":{at}}}",
                class.name()
            ),
            Event::PrefetchEvictedUnused {
                class,
                block,
                set,
                at,
            } => format!(
                "{{\"ev\":\"prefetch_evicted_unused\",\"class\":\"{}\",\"block\":{block},\"set\":{set},\"at\":{at}}}",
                class.name()
            ),
            Event::PollutionEviction {
                case,
                block,
                set,
                at,
            } => format!(
                "{{\"ev\":\"pollution\",\"case\":\"{}\",\"block\":{block},\"set\":{set},\"at\":{at}}}",
                case.name()
            ),
            Event::L2Fill {
                origin,
                victim,
                set,
                at,
            } => {
                let victim = match victim {
                    Some(v) => format!("\"{}\"", v.name()),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"ev\":\"l2_fill\",\"origin\":\"{}\",\"victim\":{victim},\"set\":{set},\"at\":{at}}}",
                    origin.name()
                )
            }
        }
    }
}

/// Where the memory system sends its events.
///
/// The contract that makes events free when disabled: every emission
/// site in the hot path is written `if S::ENABLED { sink.emit(..) }`,
/// so a sink with `ENABLED = false` compiles the entire event layer —
/// including the argument construction — out of the monomorphized
/// code. Implementations with `ENABLED = true` receive every event in
/// simulation order.
pub trait EventSink {
    /// Whether this sink observes anything. Emission sites are guarded
    /// by this constant, so `false` means zero overhead, not "called
    /// and ignored".
    const ENABLED: bool;

    /// Whether this sink also wants one [`EventSink::demand_tick`] per
    /// completed access. Separate from `ENABLED` so the existing
    /// event-stream sinks keep their exact behaviour (and cost): only
    /// sinks that opt in — the epoch recorder — pay for the tick, and
    /// the `false` default compiles the call sites out exactly like
    /// `ENABLED` does for `emit`.
    const DEMAND_TICKS: bool = false;

    /// Receive one event.
    fn emit(&mut self, ev: Event);

    /// Observe one completed access: who issued it, its hit class, the
    /// L2 set it indexed, the issuing core's MSHR occupancy at
    /// completion, and the access time. This is the epoch recorder's
    /// reference clock — demand-tick count, not cycles, advances epoch
    /// windows, so a window means "the next N references" at any
    /// distance. Default: ignored (see [`EventSink::DEMAND_TICKS`]).
    #[inline(always)]
    fn demand_tick(
        &mut self,
        _entity: Entity,
        _class: HitClass,
        _set: u32,
        _mshr: usize,
        _at: Cycle,
    ) {
    }
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// Fold-only sink: maintains an [`EventSummary`] without storing the
/// stream. The sweep harness uses this, so a whole distance grid costs
/// one summary per point instead of one event log per point.
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySink {
    /// The running fold.
    pub summary: EventSummary,
}

impl SummarySink {
    /// A sink folding with the given early-use threshold (see
    /// [`EventSummary::new`]).
    pub fn new(early_threshold: Cycle) -> SummarySink {
        SummarySink {
            summary: EventSummary::new(early_threshold),
        }
    }
}

impl EventSink for SummarySink {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, ev: Event) {
        self.summary.absorb(&ev);
    }
}

/// Ring-buffer sink: stores the most recent `capacity` events (or every
/// event when unbounded) plus the running summary. `spt events` uses
/// the unbounded form to export NDJSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSink {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    /// The running fold over *all* events, including dropped ones.
    pub summary: EventSummary,
}

impl RingSink {
    /// A ring keeping the last `capacity` events (`0` = unbounded).
    pub fn new(capacity: usize, early_threshold: Cycle) -> RingSink {
        RingSink {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
            summary: EventSummary::new(early_threshold),
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped from the front of a bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Encode the buffered events as NDJSON (one event per line,
    /// trailing newline included when non-empty).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.ndjson());
            out.push('\n');
        }
        out
    }
}

impl EventSink for RingSink {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: Event) {
        self.summary.absorb(&ev);
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Per-set pressure counters derived from the fill/eviction stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetPressure {
    /// Fills into this set by origin `[demand, helper, hw]` — the
    /// distinct-fill churn of the set.
    pub fills: [u64; 3],
    /// Net lines currently resident by origin (fills minus evictions);
    /// at end of run this is the set's occupancy-by-origin.
    pub occupancy: [i64; 3],
    /// Pollution events attributed to this set, by case.
    pub pollution: [u64; 3],
    /// Never-used prefetches evicted from this set.
    pub evicted_unused: u64,
}

impl SetPressure {
    /// Total fills into the set (all origins).
    pub fn total_fills(&self) -> u64 {
        self.fills.iter().sum()
    }

    /// Total pollution events in the set (all cases).
    pub fn total_pollution(&self) -> u64 {
        self.pollution.iter().sum()
    }

    fn merge(&mut self, other: &SetPressure) {
        for i in 0..3 {
            self.fills[i] += other.fills[i];
            self.occupancy[i] += other.occupancy[i];
            self.pollution[i] += other.pollution[i];
        }
        self.evicted_unused += other.evicted_unused;
    }
}

/// One row of the pollution-by-set-quartile table: sets ranked by fill
/// pressure and split into four contiguous groups, hottest first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuartileRow {
    /// Sets in this quartile.
    pub sets: usize,
    /// Fills across the quartile's sets.
    pub fills: u64,
    /// Pollution events by case.
    pub pollution: [u64; 3],
    /// Dead prefetches evicted from the quartile's sets.
    pub evicted_unused: u64,
}

/// Prefetch timeliness, classified at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timeliness {
    /// First use arrived before the fill completed (partial hit): part
    /// of the memory latency was exposed.
    Late,
    /// Fill completed before first use, within the early threshold.
    OnTime,
    /// The block sat unused past the early threshold before its first
    /// use — at risk of eviction the whole time.
    Early,
}

/// The default early-use threshold: a prefetch that sits unused for
/// more than eight memory latencies is classified *early*.
pub fn default_early_threshold(lat: &LatencyConfig) -> Cycle {
    lat.mem.saturating_mul(8)
}

/// The deterministic fold over an event stream: lifecycle counts and
/// accuracy per class, the timeliness histogram, pollution by case, and
/// per-set pressure. Equal streams fold to equal summaries
/// (`PartialEq`), which is what the `--jobs` determinism test pins.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSummary {
    /// First-use deltas above this are classified [`Timeliness::Early`].
    pub early_threshold: Cycle,
    /// Prefetches issued, by class.
    pub issued: [u64; 5],
    /// Speculative L2 fills, by class.
    pub filled: [u64; 5],
    /// First main-thread uses, by class (the useful prefetches).
    pub first_uses: [u64; 5],
    /// Never-used prefetches evicted, by class.
    pub evicted_unused: [u64; 5],
    /// Pollution events, by case `[reuse, unused_helper, unused_hw]`.
    pub pollution: [u64; 3],
    /// Useful prefetches whose fill was still in flight at first use.
    pub late: u64,
    /// Useful prefetches used within the early threshold of their fill.
    pub on_time: u64,
    /// Useful prefetches that idled past the early threshold.
    pub early: u64,
    /// Per-set pressure, keyed by L2 set index (only touched sets).
    pub per_set: BTreeMap<u32, SetPressure>,
    /// Blocks filled speculatively and neither used nor evicted yet.
    pending: HashMap<VAddr, Cycle>,
}

impl EventSummary {
    /// An empty summary classifying first-use deltas against
    /// `early_threshold` (see [`default_early_threshold`]).
    pub fn new(early_threshold: Cycle) -> EventSummary {
        EventSummary {
            early_threshold,
            issued: [0; 5],
            filled: [0; 5],
            first_uses: [0; 5],
            evicted_unused: [0; 5],
            pollution: [0; 3],
            late: 0,
            on_time: 0,
            early: 0,
            per_set: BTreeMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Fold one event in.
    pub fn absorb(&mut self, ev: &Event) {
        match *ev {
            Event::PrefetchIssued { class, .. } => self.issued[class.index()] += 1,
            Event::PrefetchFilled {
                class, block, at, ..
            } => {
                self.filled[class.index()] += 1;
                self.pending.insert(block, at);
            }
            Event::PrefetchFirstUse {
                class, block, at, ..
            } => {
                self.first_uses[class.index()] += 1;
                match self.pending.remove(&block) {
                    // No fill seen: the demand overtook the in-flight
                    // prefetch — late.
                    None => self.late += 1,
                    Some(fill_at) => {
                        if at.saturating_sub(fill_at) > self.early_threshold {
                            self.early += 1;
                        } else {
                            self.on_time += 1;
                        }
                    }
                }
            }
            Event::PrefetchEvictedUnused {
                class, block, set, ..
            } => {
                self.evicted_unused[class.index()] += 1;
                self.pending.remove(&block);
                self.per_set.entry(set).or_default().evicted_unused += 1;
            }
            Event::PollutionEviction { case, set, .. } => {
                self.pollution[case.index()] += 1;
                self.per_set.entry(set).or_default().pollution[case.index()] += 1;
            }
            Event::L2Fill {
                origin,
                victim,
                set,
                ..
            } => {
                let p = self.per_set.entry(set).or_default();
                p.fills[origin.index()] += 1;
                p.occupancy[origin.index()] += 1;
                if let Some(v) = victim {
                    p.occupancy[v.index()] -= 1;
                }
            }
        }
    }

    /// Fold another (finished) run's summary into this one. Pending
    /// fills are not carried over — they belong to the other run's
    /// block-address space.
    pub fn merge(&mut self, other: &EventSummary) {
        for i in 0..PfClass::ALL.len() {
            self.issued[i] += other.issued[i];
            self.filled[i] += other.filled[i];
            self.first_uses[i] += other.first_uses[i];
            self.evicted_unused[i] += other.evicted_unused[i];
        }
        for i in 0..PollutionCase::ALL.len() {
            self.pollution[i] += other.pollution[i];
        }
        self.late += other.late;
        self.on_time += other.on_time;
        self.early += other.early;
        for (set, p) in &other.per_set {
            self.per_set.entry(*set).or_default().merge(p);
        }
    }

    /// The aggregate [`PollutionStats`] this event stream folds to.
    /// Must equal the simulator's own counters exactly — events are a
    /// refinement of the aggregates, not a second truth.
    pub fn pollution_stats(&self) -> PollutionStats {
        PollutionStats {
            reuse_evictions: self.pollution[PollutionCase::Reuse.index()],
            unused_helper_evictions: self.pollution[PollutionCase::UnusedHelper.index()],
            unused_hw_evictions: self.pollution[PollutionCase::UnusedHw.index()],
            dead_prefetches: self.evicted_unused.iter().sum(),
        }
    }

    /// Useful-prefetch ratio for a class (0.0 when none issued), same
    /// definition as `MemStats::prefetch_accuracy`.
    pub fn accuracy(&self, class: PfClass) -> f64 {
        let i = class.index();
        if self.issued[i] == 0 {
            0.0
        } else {
            self.first_uses[i] as f64 / self.issued[i] as f64
        }
    }

    /// Prefetched blocks still resident and unused at end of run
    /// (filled, never demanded, never evicted).
    pub fn unresolved(&self) -> usize {
        self.pending.len()
    }

    /// Total pollution events across the three cases.
    pub fn total_pollution(&self) -> u64 {
        self.pollution.iter().sum()
    }

    /// Pollution by set quartile: touched sets ranked by fill pressure
    /// (hottest first, ties broken by set index for determinism) and
    /// split into four contiguous groups. Overflowed sets — the ones
    /// whose Set Affinity bounds the prefetch distance — land in Q1,
    /// so distances past `SA/2` show their pollution concentrating
    /// there.
    pub fn pollution_by_quartile(&self) -> [QuartileRow; 4] {
        let mut sets: Vec<(&u32, &SetPressure)> = self.per_set.iter().collect();
        // BTreeMap iteration is set-ascending, and the sort is stable,
        // so equal-pressure sets stay in index order.
        sets.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_fills()));
        let mut rows = [QuartileRow::default(); 4];
        if sets.is_empty() {
            return rows;
        }
        let chunk = sets.len().div_ceil(4);
        for (i, (_, p)) in sets.iter().enumerate() {
            let row = &mut rows[(i / chunk).min(3)];
            row.sets += 1;
            row.fills += p.total_fills();
            for c in 0..3 {
                row.pollution[c] += p.pollution[c];
            }
            row.evicted_unused += p.evicted_unused;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> EventSummary {
        EventSummary::new(100)
    }

    #[test]
    fn lifecycle_fold_counts_and_classifies_timeliness() {
        let mut s = summary();
        // On-time: filled at 10, used at 50 (delta 40 <= 100).
        s.absorb(&Event::PrefetchIssued {
            class: PfClass::Helper,
            block: 0x40,
            at: 0,
        });
        s.absorb(&Event::PrefetchFilled {
            class: PfClass::Helper,
            block: 0x40,
            set: 1,
            at: 10,
        });
        s.absorb(&Event::PrefetchFirstUse {
            class: PfClass::Helper,
            block: 0x40,
            set: 1,
            at: 50,
        });
        // Early: filled at 10, used at 500.
        s.absorb(&Event::PrefetchFilled {
            class: PfClass::Stream,
            block: 0x80,
            set: 2,
            at: 10,
        });
        s.absorb(&Event::PrefetchFirstUse {
            class: PfClass::Stream,
            block: 0x80,
            set: 2,
            at: 500,
        });
        // Late: first use with no fill seen.
        s.absorb(&Event::PrefetchFirstUse {
            class: PfClass::Helper,
            block: 0xc0,
            set: 3,
            at: 60,
        });
        assert_eq!(s.issued, [1, 0, 0, 0, 0]);
        assert_eq!(s.filled, [1, 1, 0, 0, 0]);
        assert_eq!(s.first_uses, [2, 1, 0, 0, 0]);
        assert_eq!((s.late, s.on_time, s.early), (1, 1, 1));
        assert_eq!(s.unresolved(), 0);
        assert!((s.accuracy(PfClass::Helper) - 2.0).abs() < 1e-12);
        assert_eq!(s.accuracy(PfClass::Dpl), 0.0);
    }

    #[test]
    fn pollution_fold_reproduces_pollution_stats() {
        let mut s = summary();
        s.absorb(&Event::PollutionEviction {
            case: PollutionCase::Reuse,
            block: 0,
            set: 0,
            at: 1,
        });
        s.absorb(&Event::PollutionEviction {
            case: PollutionCase::UnusedHelper,
            block: 64,
            set: 0,
            at: 2,
        });
        s.absorb(&Event::PrefetchEvictedUnused {
            class: PfClass::Helper,
            block: 64,
            set: 0,
            at: 2,
        });
        let p = s.pollution_stats();
        assert_eq!(p.reuse_evictions, 1);
        assert_eq!(p.unused_helper_evictions, 1);
        assert_eq!(p.unused_hw_evictions, 0);
        assert_eq!(p.dead_prefetches, 1);
        assert_eq!(s.total_pollution(), 2);
    }

    #[test]
    fn per_set_pressure_tracks_fills_and_occupancy() {
        let mut s = summary();
        s.absorb(&Event::L2Fill {
            origin: FillOrigin::Helper,
            victim: None,
            set: 5,
            at: 1,
        });
        s.absorb(&Event::L2Fill {
            origin: FillOrigin::Demand,
            victim: Some(FillOrigin::Helper),
            set: 5,
            at: 2,
        });
        let p = s.per_set.get(&5).unwrap();
        assert_eq!(p.fills, [1, 1, 0]);
        assert_eq!(p.occupancy, [1, 0, 0], "helper line displaced");
        assert_eq!(p.total_fills(), 2);
    }

    #[test]
    fn quartiles_rank_sets_by_fill_pressure() {
        let mut s = summary();
        // Sets 0..8 with descending pressure: set k gets 8-k fills.
        for set in 0u32..8 {
            for _ in 0..(8 - set) {
                s.absorb(&Event::L2Fill {
                    origin: FillOrigin::Demand,
                    victim: None,
                    set,
                    at: 0,
                });
            }
            s.absorb(&Event::PollutionEviction {
                case: PollutionCase::Reuse,
                block: 0,
                set,
                at: 0,
            });
        }
        let q = s.pollution_by_quartile();
        assert_eq!(q.iter().map(|r| r.sets).sum::<usize>(), 8);
        assert_eq!(q[0].sets, 2);
        assert_eq!(q[0].fills, 8 + 7, "hottest two sets first");
        assert_eq!(q[3].fills, 2 + 1);
        assert_eq!(q.iter().map(|r| r.pollution[0]).sum::<u64>(), 8);
        // Empty summary: all zero rows.
        assert_eq!(
            summary().pollution_by_quartile(),
            [QuartileRow::default(); 4]
        );
    }

    #[test]
    fn ring_sink_bounds_and_drops_oldest() {
        let mut r = RingSink::new(2, 100);
        for i in 0..5u64 {
            r.emit(Event::PrefetchIssued {
                class: PfClass::Helper,
                block: i * 64,
                at: i,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(
            r.summary.issued[0], 5,
            "summary folds every event, dropped or not"
        );
        let blocks: Vec<VAddr> = r
            .events()
            .map(|e| match e {
                Event::PrefetchIssued { block, .. } => *block,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(blocks, vec![192, 256], "oldest dropped first");
    }

    #[test]
    fn ndjson_lines_are_valid_and_distinct() {
        let evs = [
            Event::PrefetchIssued {
                class: PfClass::Helper,
                block: 64,
                at: 1,
            },
            Event::PrefetchFilled {
                class: PfClass::Stream,
                block: 64,
                set: 3,
                at: 2,
            },
            Event::PrefetchFirstUse {
                class: PfClass::Dpl,
                block: 64,
                set: 3,
                at: 3,
            },
            Event::PrefetchEvictedUnused {
                class: PfClass::Helper,
                block: 64,
                set: 3,
                at: 4,
            },
            Event::PollutionEviction {
                case: PollutionCase::UnusedHw,
                block: 64,
                set: 3,
                at: 5,
            },
            Event::L2Fill {
                origin: FillOrigin::Hw,
                victim: Some(FillOrigin::Demand),
                set: 3,
                at: 6,
            },
            Event::L2Fill {
                origin: FillOrigin::Demand,
                victim: None,
                set: 3,
                at: 7,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for ev in &evs {
            let line = ev.ndjson();
            assert!(
                line.starts_with("{\"ev\":\"") && line.ends_with('}'),
                "{line}"
            );
            assert!(!line.contains('\n'));
            assert!(seen.insert(line.clone()), "duplicate encoding {line}");
        }
        assert!(evs[5].ndjson().contains("\"victim\":\"demand\""));
        assert!(evs[6].ndjson().contains("\"victim\":null"));
    }

    #[test]
    fn merge_sums_counters_and_per_set_rows() {
        let mut a = summary();
        let mut b = summary();
        a.absorb(&Event::PrefetchIssued {
            class: PfClass::Helper,
            block: 0,
            at: 0,
        });
        b.absorb(&Event::PrefetchIssued {
            class: PfClass::Helper,
            block: 0,
            at: 0,
        });
        b.absorb(&Event::L2Fill {
            origin: FillOrigin::Hw,
            victim: None,
            set: 9,
            at: 0,
        });
        a.merge(&b);
        assert_eq!(a.issued[0], 2);
        assert_eq!(a.per_set.get(&9).unwrap().fills[2], 1);
    }

    #[test]
    fn taxonomy_labels_and_indices_are_consistent() {
        for (i, c) in PfClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, o) in FillOrigin::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
        for (i, c) in PollutionCase::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(PfClass::of(Entity::Main), None);
        assert_eq!(PfClass::of(Entity::HwStream(1)), Some(PfClass::Stream));
        assert_eq!(FillOrigin::of(Entity::HwDpl(0), true), FillOrigin::Hw);
        assert_eq!(FillOrigin::of(Entity::HwDpl(0), false), FillOrigin::Demand);
        assert_eq!(
            default_early_threshold(&LatencyConfig::default()),
            8 * LatencyConfig::default().mem
        );
    }
}
