//! Cache geometry and address mapping.

use sp_trace::VAddr;

/// Geometry of one cache level: capacity, associativity, line size.
///
/// All three must be powers of two and consistent
/// (`size = sets * ways * line_size` with `sets >= 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line (block) size in bytes.
    pub line_size: u64,
}

impl CacheGeometry {
    /// Build and validate a geometry.
    ///
    /// # Panics
    /// If any parameter is zero or not a power of two, or if the capacity
    /// is not divisible into at least one full set.
    pub fn new(size_bytes: u64, ways: u32, line_size: u64) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "associativity must be positive");
        assert!(
            ways.is_power_of_two(),
            "associativity must be a power of two"
        );
        let lines = size_bytes / line_size;
        assert!(
            lines >= ways as u64,
            "cache must hold at least one set ({} lines < {} ways)",
            lines,
            ways
        );
        CacheGeometry {
            size_bytes,
            ways,
            line_size,
        }
    }

    /// `log2(line_size)` — the offset-bit count.
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_size.trailing_zeros()
    }

    /// `log2(line_size * sets)` — the shift that isolates the tag bits.
    #[inline]
    pub fn tag_shift(&self) -> u32 {
        self.line_shift() + self.sets().trailing_zeros()
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        // All three parameters are powers of two (asserted in `new`), so
        // the division is a shift — this is on the per-access hot path.
        self.size_bytes >> (self.line_shift() + self.ways.trailing_zeros())
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.size_bytes >> self.line_shift()
    }

    /// Block-aligned address of `addr`.
    #[inline]
    pub fn block_of(&self, addr: VAddr) -> VAddr {
        addr & !(self.line_size - 1)
    }

    /// Index of the set `addr` maps to.
    #[inline]
    pub fn set_of(&self, addr: VAddr) -> u64 {
        (addr >> self.line_shift()) & (self.sets() - 1)
    }

    /// Tag of `addr` (the block address bits above the set index).
    #[inline]
    pub fn tag_of(&self, addr: VAddr) -> u64 {
        addr >> self.tag_shift()
    }

    /// Reconstruct the block address from a `(set, tag)` pair — the
    /// inverse of [`set_of`](Self::set_of)/[`tag_of`](Self::tag_of).
    #[inline]
    pub fn block_from(&self, set: u64, tag: u64) -> VAddr {
        ((tag << self.sets().trailing_zeros()) | set) << self.line_shift()
    }

    /// The address-mapping subset of this geometry, as the key type
    /// compiled traces are built against.
    pub fn level_geometry(&self) -> sp_trace::LevelGeometry {
        sp_trace::LevelGeometry::new(self.line_size, self.sets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 32KB, 8-way, 64B lines — the paper's L1D (Table 1).
    fn l1() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 8, 64)
    }

    #[test]
    fn l1_has_64_sets() {
        assert_eq!(l1().sets(), 64);
        assert_eq!(l1().lines(), 512);
    }

    #[test]
    fn paper_l2_has_4096_sets() {
        // 4MB, 16-way, 64B — the paper's shared L2 (Table 1).
        let l2 = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn set_and_tag_roundtrip() {
        let g = l1();
        for addr in [0u64, 64, 4096, 0xdead_bec0, 0xffff_ffc0] {
            let block = g.block_of(addr);
            let (s, t) = (g.set_of(addr), g.tag_of(addr));
            assert_eq!(g.block_from(s, t), block, "addr {addr:#x}");
        }
    }

    #[test]
    fn consecutive_blocks_map_to_consecutive_sets() {
        let g = l1();
        let s0 = g.set_of(0);
        let s1 = g.set_of(64);
        assert_eq!((s0 + 1) % g.sets(), s1);
    }

    #[test]
    fn same_set_different_tag_conflict() {
        let g = l1();
        let a = 0u64;
        let b = g.sets() * g.line_size; // one full way-stride apart
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of(a), g.tag_of(b));
    }

    #[test]
    fn block_of_strips_offset_bits() {
        let g = l1();
        assert_eq!(g.block_of(0x1043), 0x1040);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        let _ = CacheGeometry::new(3000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn rejects_too_small_cache() {
        let _ = CacheGeometry::new(128, 4, 64); // 2 lines < 4 ways
    }
}
