//! The CMP memory system: per-core L1s, shared L2, MSHRs, hardware
//! prefetchers, and the shared bus, glued into a single access interface.
//!
//! # Model
//!
//! * Accesses arrive in **globally monotonic time order** (the co-sim
//!   engine in `sp-core` interleaves the two threads' timelines before
//!   calling in). Completed MSHR fills are drained lazily at each access.
//! * Demand accesses stall the issuing thread until their data is
//!   available; software prefetches cost only their issue cycles.
//! * L1s are fill-on-L2-hit: a demand miss that goes to memory installs
//!   the line in the L2; the L1 copy appears when a later access hits the
//!   L2. This keeps fills single-pointed without a future-event queue and
//!   has no effect on the L2 counters the paper measures.
//! * Hardware prefetchers observe their core's demand stream *post-L1*
//!   (L2-side prefetchers, as on the Core 2) and fill only the L2.
//!
//! # Pollution accounting
//!
//! Case 1 of the paper (§II.C) — a prefetched block displacing data that
//! the processor will reuse — cannot be decided at eviction time without
//! future knowledge. The system therefore records blocks evicted by
//! prefetch fills and counts a **reuse eviction** when the main thread
//! later misses on such a block (the standard lazy attribution used by
//! pollution studies). Cases 2 and 3 — displacing a not-yet-used helper-
//! or hardware-prefetched block — are decided at eviction time.
//!
//! # Observability
//!
//! The access paths are generic over an [`EventSink`] (see
//! [`crate::events`]): the `*_ev` entry points take a sink and emit
//! prefetch-lifecycle and eviction-attribution events at exactly the
//! program points where the corresponding counters increment. The
//! sink-free entry points delegate with [`NullSink`], whose
//! `ENABLED = false` constant compiles the whole event layer out — the
//! default path is bit- and speed-identical to a build without events.

use crate::bus::Bus;
use crate::cache::SetAssocCache;
use crate::clock::Cycle;
use crate::config::{CacheConfig, HwBackend};
use crate::events::{Event, EventSink, FillOrigin, NullSink, PfClass, PollutionCase};
use crate::mshr::{InFlight, MshrFile};
use crate::prefetcher::{
    DplPrefetcher, HwPrefetcher, PerceptronPrefetcher, PointerChasePrefetcher, StreamPrefetcher,
};
use crate::stats::{prefetch_class, MemStats};
use sp_trace::{AccessKind, CompiledRef, MemRef, VAddr};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::stats::{Entity, HitClass};

/// Process-wide count of [`MemorySystem`] constructions.
static SIM_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Multiply-mix hasher for block addresses. The pollution candidate set
/// is touched on every main-thread miss, where the default SipHash is
/// measurable overhead; block addresses need no DoS resistance, so a
/// single multiply by a high-entropy odd constant (plus a fold of the
/// high bits into the low bucket-index bits) is enough.
#[derive(Default, Clone)]
struct BlockHasher(u64);

impl std::hash::Hasher for BlockHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        self.0 ^= self.0 >> 32;
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

type BuildBlockHasher = std::hash::BuildHasherDefault<BlockHasher>;

/// How many `MemorySystem`s this process has built so far.
///
/// Each build allocates the full hierarchy (L1s, L2, MSHRs, prefetcher
/// tables), so the delta across a benchmark run is the bench suite's
/// allocations-per-run proxy: reusing simulators via
/// [`MemorySystem::reset`] keeps the count flat where rebuilding grows it
/// once per run.
pub fn sim_build_count() -> u64 {
    SIM_BUILDS.load(Ordering::Relaxed)
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// L2-level classification (the paper's measurement classes).
    pub class: HitClass,
    /// Simulated time at which the issuing thread may proceed.
    pub complete_at: Cycle,
}

impl AccessResult {
    /// Latency relative to the issue time.
    pub fn latency(&self, issued_at: Cycle) -> Cycle {
        self.complete_at - issued_at
    }
}

/// The simulated memory system.
///
/// ```
/// use sp_cachesim::{CacheConfig, Entity, HitClass, MemorySystem};
/// use sp_trace::MemRef;
///
/// let mut mem = MemorySystem::new(CacheConfig::scaled_default().without_hw_prefetchers());
/// // Cold miss, then (after the fill lands) a totally hit, then L1.
/// let r1 = mem.demand_access(Entity::Main, MemRef::anon(0x4000), 0);
/// assert_eq!(r1.class, HitClass::TotalMiss);
/// let r2 = mem.demand_access(Entity::Main, MemRef::anon(0x4000), r1.complete_at + 1);
/// assert_eq!(r2.class, HitClass::TotalHit);
/// let r3 = mem.demand_access(Entity::Main, MemRef::anon(0x4000), r2.complete_at + 1);
/// assert_eq!(r3.class, HitClass::L1Hit);
/// ```
pub struct MemorySystem {
    cfg: CacheConfig,
    /// Independent simulation lanes sharing this system (1 = scalar).
    /// Caches carry the lane dimension inside their line columns; all
    /// other state is one entry per lane in the vectors below.
    lanes: usize,
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    mshr: Vec<MshrFile>,
    bus: Vec<Bus>,
    // Hardware-prefetcher state is per (lane, core): flat `lane * cores
    // + core`. Learned state (stream slots, DPL tables, perceptron
    // weights) diverges across lanes as soon as their timelines do, so
    // it can never be shared.
    streamers: Vec<StreamPrefetcher>,
    dpls: Vec<DplPrefetcher>,
    pchases: Vec<PointerChasePrefetcher>,
    perceptrons: Vec<PerceptronPrefetcher>,
    stats: Vec<MemStats>,
    /// Blocks whose L2 eviction was caused by a prefetch fill and that
    /// held demanded data — candidates for a case-1 pollution re-miss.
    /// One candidate set per lane.
    prefetch_victims: Vec<HashSet<VAddr, BuildBlockHasher>>,
    /// Scratch buffer for hardware-prefetcher candidates, reused across
    /// accesses so the training path never allocates. Shared across
    /// lanes: it is always empty between accesses.
    hw_cands: Vec<VAddr>,
    /// Latest access time seen per lane (monotonicity debug check).
    last_now: Vec<Cycle>,
}

impl MemorySystem {
    /// Build an empty memory system from `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::new_batch(cfg, 1)
    }

    /// Build `lanes` independent memory systems in one lane-structured
    /// allocation (see [`SetAssocCache::new_batch`]). Lane `k` behaves
    /// exactly like a scalar system: the scalar API is the `lane = 0`
    /// special case of the `*_lane` access methods.
    pub fn new_batch(cfg: CacheConfig, lanes: usize) -> Self {
        cfg.validate();
        assert!(lanes > 0, "need at least one lane");
        SIM_BUILDS.fetch_add(1, Ordering::Relaxed);
        let line = cfg.l2.line_size;
        let per_lane_cores = cfg.cores as usize * lanes;
        MemorySystem {
            lanes,
            l1: (0..cfg.cores)
                .map(|_| SetAssocCache::new_batch(cfg.l1, crate::replacement::Policy::Lru, lanes))
                .collect(),
            l2: SetAssocCache::new_batch(cfg.l2, cfg.policy, lanes),
            mshr: (0..lanes)
                .map(|_| MshrFile::new(cfg.mshr_entries))
                .collect(),
            bus: (0..lanes)
                .map(|_| Bus::new(cfg.latency.bus_service))
                .collect(),
            streamers: (0..per_lane_cores)
                .map(|_| StreamPrefetcher::new(cfg.stream_slots, cfg.stream_degree, line))
                .collect(),
            dpls: (0..per_lane_cores)
                .map(|_| DplPrefetcher::new(cfg.dpl_entries, cfg.dpl_degree, line))
                .collect(),
            pchases: (0..per_lane_cores)
                .map(|_| PointerChasePrefetcher::new(cfg.pchase_entries, cfg.pchase_depth))
                .collect(),
            perceptrons: (0..per_lane_cores)
                .map(|_| PerceptronPrefetcher::new(cfg.dpl_entries, 32, cfg.dpl_degree, line))
                .collect(),
            stats: vec![MemStats::default(); lanes],
            prefetch_victims: (0..lanes).map(|_| HashSet::default()).collect(),
            hw_cands: Vec::new(),
            cfg,
            last_now: vec![0; lanes],
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// How many independent lanes this system simulates (1 for scalar).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Return the system to its freshly-built state — empty caches, idle
    /// buses, no outstanding fills, zeroed statistics in every lane —
    /// without releasing any of the allocations. Lets sweep runners and
    /// services reuse one simulator across runs instead of rebuilding the
    /// hierarchy each time; [`sim_build_count`] stays flat across `reset`
    /// calls.
    pub fn reset(&mut self) {
        for l1 in &mut self.l1 {
            l1.reset();
        }
        self.l2.reset();
        for m in &mut self.mshr {
            m.reset();
        }
        for b in &mut self.bus {
            b.reset();
        }
        for s in &mut self.streamers {
            s.reset();
        }
        for d in &mut self.dpls {
            d.reset();
        }
        for p in &mut self.pchases {
            p.reset();
        }
        for p in &mut self.perceptrons {
            p.reset();
        }
        for s in &mut self.stats {
            *s = MemStats::default();
        }
        for v in &mut self.prefetch_victims {
            v.clear();
        }
        self.hw_cands.clear();
        self.last_now.fill(0);
    }

    /// Statistics accumulated so far (lane 0).
    pub fn stats(&self) -> &MemStats {
        &self.stats[0]
    }

    /// Statistics accumulated so far in the given lane.
    pub fn stats_lane(&self, lane: usize) -> &MemStats {
        &self.stats[lane]
    }

    /// Read-only view of the shared L2 (tests, diagnostics).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Which core an entity's demand accesses issue from: the main thread
    /// runs on core 0, the helper on core 1.
    pub fn core_of(entity: Entity) -> usize {
        match entity {
            Entity::Main => 0,
            Entity::Helper => 1,
            Entity::HwStream(c)
            | Entity::HwDpl(c)
            | Entity::HwPchase(c)
            | Entity::HwPerceptron(c) => c as usize,
        }
    }

    /// Install `block` in the L2 on behalf of `filler`, with full
    /// eviction/pollution accounting. The single point through which every
    /// L2 fill flows. Every pollution-counter increment here has exactly
    /// one matching event emission, so folding the stream reproduces the
    /// aggregates.
    fn l2_install<S: EventSink>(
        &mut self,
        lane: usize,
        block: VAddr,
        filler: Entity,
        prefetched: bool,
        now: Cycle,
        sink: &mut S,
    ) {
        let evicted = self.l2.fill_lane(block, lane, filler, prefetched);
        if let Some(ev) = evicted {
            self.stats[lane].l2_evictions += 1;
            if self.cfg.inclusion == crate::config::Inclusion::Inclusive {
                // Back-invalidate the victim from every private L1.
                for l1 in &mut self.l1 {
                    l1.invalidate_lane(ev.block, lane);
                }
            }
            if ev.dirty {
                // Dirty victim: the write-back occupies the shared bus
                // like any other line transfer.
                self.stats[lane].writebacks += 1;
                self.bus[lane].request(now);
            }
            let evictor_is_prefetch = prefetched && filler.is_prefetcher();
            if ev.prefetched && !ev.used_since_fill {
                // The victim was itself a never-used prefetch.
                self.stats[lane].pollution.dead_prefetches += 1;
                if S::ENABLED {
                    if let Some(class) = PfClass::of(ev.filler) {
                        sink.emit(Event::PrefetchEvictedUnused {
                            class,
                            block: ev.block,
                            set: self.cfg.l2.set_of(block) as u32,
                            at: now,
                        });
                    }
                }
                if evictor_is_prefetch {
                    match ev.filler {
                        Entity::Helper => {
                            self.stats[lane].pollution.unused_helper_evictions += 1;
                            if S::ENABLED {
                                sink.emit(Event::PollutionEviction {
                                    case: PollutionCase::UnusedHelper,
                                    block: ev.block,
                                    set: self.cfg.l2.set_of(block) as u32,
                                    at: now,
                                });
                            }
                        }
                        e if e.is_hw() => {
                            self.stats[lane].pollution.unused_hw_evictions += 1;
                            if S::ENABLED {
                                sink.emit(Event::PollutionEviction {
                                    case: PollutionCase::UnusedHw,
                                    block: ev.block,
                                    set: self.cfg.l2.set_of(block) as u32,
                                    at: now,
                                });
                            }
                        }
                        _ => {}
                    }
                }
            } else if evictor_is_prefetch {
                // The victim held demanded data; if the main thread
                // misses on it again, that's a case-1 pollution event.
                self.prefetch_victims[lane].insert(ev.block);
            }
        }
        self.stats[lane].l2_fills += 1;
        self.stats[lane].l2_fills_by[match filler {
            Entity::Main => 0,
            Entity::Helper => 1,
            Entity::HwStream(_) => 2,
            Entity::HwDpl(_) => 3,
            Entity::HwPchase(_) => 4,
            Entity::HwPerceptron(_) => 5,
        }] += 1;
        if S::ENABLED {
            let set = self.cfg.l2.set_of(block) as u32;
            // Victim origin mirrors what its own fill was charged as
            // (the `prefetched` flag survives demand touches), so per-set
            // occupancy-by-origin balances fill-for-fill.
            let victim = evicted.map(|ev| FillOrigin::of(ev.filler, ev.prefetched));
            sink.emit(Event::L2Fill {
                origin: FillOrigin::of(filler, prefetched),
                victim,
                set,
                at: now,
            });
            if prefetched {
                if let Some(class) = PfClass::of(filler) {
                    sink.emit(Event::PrefetchFilled {
                        class,
                        block,
                        set,
                        at: now,
                    });
                }
            }
        }
        // The block is resident again; a future miss on it is a fresh one.
        self.take_prefetch_victim(lane, block);
    }

    /// Remove `block` from the lane's pollution-candidate set, reporting
    /// whether it was present. The set is empty for long stretches (no
    /// prefetch has evicted demanded data yet), so skip hashing entirely
    /// then.
    #[inline]
    fn take_prefetch_victim(&mut self, lane: usize, block: VAddr) -> bool {
        !self.prefetch_victims[lane].is_empty() && self.prefetch_victims[lane].remove(&block)
    }

    /// Drain every MSHR fill of `lane` that has completed by `now` into
    /// the L2.
    fn drain<S: EventSink>(&mut self, lane: usize, now: Cycle, sink: &mut S) {
        // The overwhelmingly common case: nothing has completed yet.
        if self.mshr[lane].none_ready(now) {
            return;
        }
        // Pop in completion order — installing fills never adds MSHR
        // entries, so the loop drains exactly the entries ready at `now`.
        while let Some(e) = self.mshr[lane].pop_earliest_ready(now) {
            self.l2_install(
                lane,
                e.block,
                e.requester,
                e.prefetch,
                e.ready_at.max(now),
                sink,
            );
            if e.store {
                // A store was waiting on this fill: the line is dirty
                // from birth (write-allocate).
                self.l2.touch_lane(e.block, lane, true, false);
            }
        }
    }

    /// Start a memory fetch of `block` at `when`; returns its completion
    /// time. The caller must have checked the lane's MSHR has room.
    fn launch_fill(
        &mut self,
        lane: usize,
        block: VAddr,
        when: Cycle,
        requester: Entity,
        prefetch: bool,
        store: bool,
    ) -> Cycle {
        let start = self.bus[lane].request(when);
        if start > when {
            self.stats[lane].bus_queued += 1;
        }
        let ready_at = start + self.cfg.latency.mem;
        self.mshr[lane].allocate_unchecked(InFlight {
            block,
            ready_at,
            requester,
            prefetch,
            store,
        });
        ready_at
    }

    /// Issue a demand access (load or store) by `entity` at `now`.
    ///
    /// # Panics
    /// In debug builds, if `now` is not monotonically non-decreasing
    /// across calls, or if `mref.kind` is `Prefetch` (use
    /// [`prefetch_access`](Self::prefetch_access)).
    pub fn demand_access(&mut self, entity: Entity, mref: MemRef, now: Cycle) -> AccessResult {
        self.access_pre(0, entity, &self.project(mref), now, false, &mut NullSink)
    }

    /// A helper-thread *load of a delinquent reference*: a real, blocking
    /// load on the helper core (the helper "executes the load's
    /// computation", paper §II.A), whose L2 fill is nevertheless
    /// **speculative** — the line is marked prefetched, its first *main-
    /// thread* touch counts as a useful prefetch, and its eviction before
    /// main-thread use counts as pollution.
    pub fn helper_load(&mut self, mref: MemRef, now: Cycle) -> AccessResult {
        self.helper_load_pre(&self.project(mref), now)
    }

    /// Compute the cache-address projections of `mref` for this system's
    /// geometry — what [`sp_trace::CompiledTrace`] precomputes for whole
    /// traces. The scalar entry points project on the fly and feed the
    /// same `*_pre` implementations the compiled replay uses, so both
    /// paths produce identical counters by construction.
    pub fn project(&self, mref: MemRef) -> CompiledRef {
        CompiledRef {
            vaddr: mref.vaddr,
            block: self.cfg.l2.block_of(mref.vaddr),
            l1_set: self.cfg.l1.set_of(mref.vaddr) as u32,
            l1_tag: self.cfg.l1.tag_of(mref.vaddr),
            l2_set: self.cfg.l2.set_of(mref.vaddr) as u32,
            l2_tag: self.cfg.l2.tag_of(mref.vaddr),
            kind: mref.kind,
            site: mref.site,
            outer_iter: 0,
        }
    }

    /// [`demand_access`](Self::demand_access) with the projections already
    /// computed (compiled-trace replay).
    pub fn demand_access_pre(
        &mut self,
        entity: Entity,
        cr: &CompiledRef,
        now: Cycle,
    ) -> AccessResult {
        self.access_pre(0, entity, cr, now, false, &mut NullSink)
    }

    /// [`demand_access_pre`](Self::demand_access_pre) with an event sink
    /// attached. With [`NullSink`] this monomorphizes to exactly the
    /// sink-free path.
    pub fn demand_access_pre_ev<S: EventSink>(
        &mut self,
        entity: Entity,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        self.access_pre(0, entity, cr, now, false, sink)
    }

    /// [`demand_access_pre_ev`](Self::demand_access_pre_ev) against the
    /// given lane of a batched system.
    pub fn demand_access_lane_ev<S: EventSink>(
        &mut self,
        lane: usize,
        entity: Entity,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        self.access_pre(lane, entity, cr, now, false, sink)
    }

    /// [`helper_load`](Self::helper_load) with the projections already
    /// computed (compiled-trace replay).
    pub fn helper_load_pre(&mut self, cr: &CompiledRef, now: Cycle) -> AccessResult {
        self.helper_load_pre_ev(cr, now, &mut NullSink)
    }

    /// [`helper_load_pre`](Self::helper_load_pre) with an event sink
    /// attached.
    pub fn helper_load_pre_ev<S: EventSink>(
        &mut self,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        self.helper_load_lane_ev(0, cr, now, sink)
    }

    /// [`helper_load_pre_ev`](Self::helper_load_pre_ev) against the given
    /// lane of a batched system.
    pub fn helper_load_lane_ev<S: EventSink>(
        &mut self,
        lane: usize,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        self.stats[lane].prefetches_issued[0] += 1;
        if S::ENABLED {
            sink.emit(Event::PrefetchIssued {
                class: PfClass::Helper,
                block: cr.block,
                at: now,
            });
        }
        self.access_pre(lane, Entity::Helper, cr, now, true, sink)
    }

    fn access_pre<S: EventSink>(
        &mut self,
        lane: usize,
        entity: Entity,
        cr: &CompiledRef,
        now: Cycle,
        speculative: bool,
        sink: &mut S,
    ) -> AccessResult {
        debug_assert!(cr.kind != AccessKind::Prefetch, "use prefetch_access");
        debug_assert!(
            now >= self.last_now[lane],
            "accesses must arrive in time order"
        );
        self.last_now[lane] = now;
        debug_assert!(matches!(entity, Entity::Main | Entity::Helper));
        debug_assert_eq!(
            *cr,
            CompiledRef {
                outer_iter: cr.outer_iter,
                ..self.project(cr.mem_ref())
            },
            "projections must match this system's geometry"
        );
        self.drain(lane, now, sink);

        let core = Self::core_of(entity);
        let is_main = entity == Entity::Main;
        let lat = self.cfg.latency;
        let block = cr.block;
        let is_store = cr.kind == AccessKind::Store;

        // L1 probe.
        if self.l1[core].touch_hit_at_lane(cr.l1_set, lane, cr.l1_tag, is_store, true) {
            let result = AccessResult {
                class: HitClass::L1Hit,
                complete_at: now + lat.l1_hit,
            };
            self.note(lane, entity, HitClass::L1Hit, result.latency(now));
            if S::DEMAND_TICKS {
                sink.demand_tick(
                    entity,
                    HitClass::L1Hit,
                    cr.l2_set,
                    self.mshr[lane].len(),
                    now,
                );
            }
            return result;
        }
        let t_l2 = now + lat.l1_hit;

        // L2 probe. Only main-thread touches mark the line *used* (the
        // paper's pollution cases are about data the processor reuses).
        let (class, complete_at) = if let Some((fresh_prefetch, filler)) = self
            .l2
            .touch_classify_at_lane(cr.l2_set, lane, cr.l2_tag, is_store, is_main)
        {
            if is_main && fresh_prefetch {
                if let Some(cls) = prefetch_class(filler) {
                    self.stats[lane].prefetches_useful[cls] += 1;
                }
                if S::ENABLED {
                    if let Some(class) = PfClass::of(filler) {
                        sink.emit(Event::PrefetchFirstUse {
                            class,
                            block,
                            set: cr.l2_set,
                            at: now,
                        });
                    }
                }
            }
            // Install in the core's L1 (fill-on-L2-hit); a dirty L1
            // victim writes through to the L2 if still present there,
            // otherwise straight to memory (non-inclusive hierarchy).
            if let Some(l1_ev) =
                self.l1[core].fill_at_lane(cr.l1_set, lane, cr.l1_tag, entity, false)
            {
                if l1_ev.dirty && self.l2.touch_lane(l1_ev.block, lane, true, false).is_none() {
                    self.stats[lane].l1_writeback_misses += 1;
                    self.bus[lane].request(t_l2);
                }
            }
            (HitClass::TotalHit, t_l2 + lat.l2_hit)
        } else if let Some(merged) = if is_main {
            // In-flight: the paper's *partially* cache hit. Only a main-
            // thread access converts the fill into a demanded (used) one
            // (a single MSHR scan either way: merge returns None when the
            // block has no entry).
            self.mshr[lane].merge_demand(block, is_store)
        } else {
            self.mshr[lane].lookup(block)
        } {
            if is_main && merged.prefetch {
                if let Some(cls) = prefetch_class(merged.requester) {
                    self.stats[lane].prefetches_useful[cls] += 1;
                }
                // No PrefetchFilled precedes this FirstUse (the fill is
                // still in flight): the summary fold classifies it late.
                if S::ENABLED {
                    if let Some(class) = PfClass::of(merged.requester) {
                        sink.emit(Event::PrefetchFirstUse {
                            class,
                            block,
                            set: cr.l2_set,
                            at: now,
                        });
                    }
                }
            }
            if is_main && self.take_prefetch_victim(lane, block) {
                // An in-flight refetch of a block a prefetch evicted
                // earlier still re-pays (part of) the memory latency.
                self.stats[lane].pollution.reuse_evictions += 1;
                if S::ENABLED {
                    sink.emit(Event::PollutionEviction {
                        case: PollutionCase::Reuse,
                        block,
                        set: cr.l2_set,
                        at: now,
                    });
                }
            }
            (HitClass::PartialHit, merged.ready_at.max(t_l2 + lat.l2_hit))
        } else {
            // Totally miss: wait for MSHR room if the file is full.
            let mut when = t_l2 + lat.l2_hit;
            while self.mshr[lane].is_full() {
                let next = self.mshr[lane]
                    .earliest_ready()
                    .expect("full file has entries");
                when = when.max(next);
                self.drain(lane, when, sink);
            }
            if is_main && self.take_prefetch_victim(lane, block) {
                self.stats[lane].pollution.reuse_evictions += 1;
                if S::ENABLED {
                    sink.emit(Event::PollutionEviction {
                        case: PollutionCase::Reuse,
                        block,
                        set: cr.l2_set,
                        at: now,
                    });
                }
            }
            let ready = self.launch_fill(lane, block, when, entity, speculative, is_store);
            (HitClass::TotalMiss, ready)
        };

        let result = AccessResult { class, complete_at };
        self.note(lane, entity, class, result.latency(now));
        if S::DEMAND_TICKS {
            sink.demand_tick(entity, class, cr.l2_set, self.mshr[lane].len(), now);
        }

        // Train the core's hardware prefetchers on the post-L1 stream,
        // collecting candidates into the reused scratch buffer (taken out
        // of `self` so issuing can borrow the system mutably). Learned
        // state lives per (lane, core).
        if self.cfg.hw_prefetchers {
            let pidx = lane * self.cfg.cores as usize + core;
            let mut cands = std::mem::take(&mut self.hw_cands);
            match self.cfg.hw_backend {
                HwBackend::StreamerDpl => {
                    self.streamers[pidx].observe(cr.site, block, &mut cands);
                    let n_stream = cands.len();
                    self.dpls[pidx].observe(cr.site, cr.vaddr, &mut cands);
                    for (i, &b) in cands.iter().enumerate() {
                        let who = if i < n_stream {
                            Entity::HwStream(core as u8)
                        } else {
                            Entity::HwDpl(core as u8)
                        };
                        self.issue_prefetch_block(lane, b, who, t_l2, sink);
                    }
                }
                HwBackend::Streamer => {
                    self.streamers[pidx].observe(cr.site, block, &mut cands);
                    for &b in &cands {
                        self.issue_prefetch_block(
                            lane,
                            b,
                            Entity::HwStream(core as u8),
                            t_l2,
                            sink,
                        );
                    }
                }
                HwBackend::Dpl => {
                    self.dpls[pidx].observe(cr.site, cr.vaddr, &mut cands);
                    for &b in &cands {
                        self.issue_prefetch_block(lane, b, Entity::HwDpl(core as u8), t_l2, sink);
                    }
                }
                HwBackend::PointerChase => {
                    self.pchases[pidx].observe(cr.site, block, &mut cands);
                    for &b in &cands {
                        self.issue_prefetch_block(
                            lane,
                            b,
                            Entity::HwPchase(core as u8),
                            t_l2,
                            sink,
                        );
                    }
                }
                HwBackend::Perceptron => {
                    self.perceptrons[pidx].observe(cr.site, cr.vaddr, &mut cands);
                    for &b in &cands {
                        self.issue_prefetch_block(
                            lane,
                            b,
                            Entity::HwPerceptron(core as u8),
                            t_l2,
                            sink,
                        );
                    }
                }
            }
            cands.clear();
            self.hw_cands = cands;
        }
        result
    }

    /// Issue a software prefetch by the helper thread at `now`. The
    /// issuing core does not stall; the returned `complete_at` covers only
    /// the issue cost.
    pub fn prefetch_access(&mut self, mref: MemRef, now: Cycle) -> AccessResult {
        self.prefetch_access_pre(&self.project(mref), now)
    }

    /// [`prefetch_access`](Self::prefetch_access) with the projections
    /// already computed (compiled-trace replay).
    pub fn prefetch_access_pre(&mut self, cr: &CompiledRef, now: Cycle) -> AccessResult {
        self.prefetch_access_pre_ev(cr, now, &mut NullSink)
    }

    /// [`prefetch_access_pre`](Self::prefetch_access_pre) with an event
    /// sink attached.
    pub fn prefetch_access_pre_ev<S: EventSink>(
        &mut self,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        self.prefetch_access_lane_ev(0, cr, now, sink)
    }

    /// [`prefetch_access_pre_ev`](Self::prefetch_access_pre_ev) against
    /// the given lane of a batched system.
    pub fn prefetch_access_lane_ev<S: EventSink>(
        &mut self,
        lane: usize,
        cr: &CompiledRef,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        debug_assert!(
            now >= self.last_now[lane],
            "accesses must arrive in time order"
        );
        self.last_now[lane] = now;
        self.drain(lane, now, sink);
        self.stats[lane].prefetches_issued[0] += 1;
        // Issued is emitted even when the prefetch is dropped (already
        // cached, in flight, MSHR full) — mirroring `prefetches_issued`.
        if S::ENABLED {
            sink.emit(Event::PrefetchIssued {
                class: PfClass::Helper,
                block: cr.block,
                at: now,
            });
        }
        self.issue_prefetch_pre(lane, cr.block, cr.l2_set, cr.l2_tag, Entity::Helper, now);
        AccessResult {
            class: HitClass::L1Hit,
            complete_at: now + self.cfg.latency.prefetch_issue,
        }
    }

    /// Route a hardware-prefetcher candidate into the L2. Candidate
    /// blocks are computed at runtime, so their projections are too (two
    /// shifts — not worth precompiling).
    fn issue_prefetch_block<S: EventSink>(
        &mut self,
        lane: usize,
        block: VAddr,
        who: Entity,
        now: Cycle,
        sink: &mut S,
    ) {
        if let Some(cls) = prefetch_class(who) {
            self.stats[lane].prefetches_issued[cls] += 1;
        }
        if S::ENABLED {
            if let Some(class) = PfClass::of(who) {
                sink.emit(Event::PrefetchIssued {
                    class,
                    block,
                    at: now,
                });
            }
        }
        let set = self.cfg.l2.set_of(block) as u32;
        let tag = self.cfg.l2.tag_of(block);
        self.issue_prefetch_pre(lane, block, set, tag, who, now);
    }

    /// Shared prefetch path: drop if already cached, in flight, or no
    /// MSHR room (prefetches never stall anyone).
    fn issue_prefetch_pre(
        &mut self,
        lane: usize,
        block: VAddr,
        set: u32,
        tag: u64,
        who: Entity,
        now: Cycle,
    ) {
        if self.l2.promote_lane(set, lane, tag) {
            // Present: promoted so an imminent reuse isn't evicted
            // (prefetch hint), exactly as a refill of a cached block would.
            return;
        }
        if self.mshr[lane].lookup(block).is_some() || self.mshr[lane].is_full() {
            return;
        }
        self.launch_fill(lane, block, now, who, true, false);
    }

    fn note(&mut self, lane: usize, entity: Entity, class: HitClass, latency: Cycle) {
        let t = match entity {
            Entity::Main => &mut self.stats[lane].main,
            Entity::Helper => &mut self.stats[lane].helper,
            _ => return,
        };
        match class {
            HitClass::L1Hit => t.l1_hits += 1,
            HitClass::TotalHit => t.total_hits += 1,
            HitClass::PartialHit => t.partial_hits += 1,
            HitClass::TotalMiss => t.total_misses += 1,
        }
        t.stall_cycles += latency;
    }

    /// Finish outstanding fills and return the final statistics, leaving
    /// the system alive (typically to be [`reset`](Self::reset) and
    /// reused). The bus-occupancy snapshot is taken *before* the final
    /// drain, like [`finish`](Self::finish) always has.
    pub fn finish_stats(&mut self) -> MemStats {
        self.finish_stats_ev(&mut NullSink)
    }

    /// [`finish_stats`](Self::finish_stats) with an event sink attached;
    /// fills landing in this final drain carry `at = u64::MAX` (they
    /// complete after the last access).
    pub fn finish_stats_ev<S: EventSink>(&mut self, sink: &mut S) -> MemStats {
        self.finish_stats_lane_ev(0, sink)
    }

    /// [`finish_stats_ev`](Self::finish_stats_ev) for one lane of a
    /// batched system. Lanes finish independently: each takes its own
    /// bus-occupancy snapshot and drains only its own MSHR file.
    pub fn finish_stats_lane_ev<S: EventSink>(&mut self, lane: usize, sink: &mut S) -> MemStats {
        let _sp = sp_obs::span!("fold");
        self.stats[lane].bus_busy_cycles = self.bus[lane].busy_cycles();
        self.drain(lane, Cycle::MAX, sink);
        self.stats[lane].clone()
    }

    /// Finish outstanding fills and return the final statistics.
    pub fn finish(mut self) -> MemStats {
        self.finish_stats()
    }

    /// Snapshot of bus counters (lane 0).
    pub fn bus(&self) -> &Bus {
        &self.bus[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;

    /// A tiny, prefetcher-free config for deterministic unit tests:
    /// L1 = 2 sets x 2 ways, L2 = 4 sets x 2 ways, 64B lines.
    fn tiny_cfg() -> CacheConfig {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(256, 2, 64),
            l2: CacheGeometry::new(512, 2, 64),
            hw_prefetchers: false,
            mshr_entries: 2,
            ..CacheConfig::scaled_default()
        }
    }

    fn load(addr: VAddr) -> MemRef {
        MemRef::anon(addr)
    }

    #[test]
    fn cold_miss_then_l2_hit_then_l1_hit() {
        let mut m = MemorySystem::new(tiny_cfg());
        let lat = m.config().latency;
        let r1 = m.demand_access(Entity::Main, load(0x1000), 0);
        assert_eq!(r1.class, HitClass::TotalMiss);
        assert_eq!(r1.complete_at, lat.full_miss());
        // After completion the block is in L2 (drained on next access);
        // the L1 fills on this L2 hit.
        let t2 = r1.complete_at + 10;
        let r2 = m.demand_access(Entity::Main, load(0x1000), t2);
        assert_eq!(r2.class, HitClass::TotalHit);
        assert_eq!(r2.complete_at, t2 + lat.l2_total());
        let t3 = r2.complete_at + 10;
        let r3 = m.demand_access(Entity::Main, load(0x1000), t3);
        assert_eq!(r3.class, HitClass::L1Hit);
        assert_eq!(r3.complete_at, t3 + lat.l1_hit);
        let s = m.finish();
        assert_eq!(s.main.total_misses, 1);
        assert_eq!(s.main.total_hits, 1);
        assert_eq!(s.main.l1_hits, 1);
        assert_eq!(s.main.memory_accesses(), 1);
    }

    #[test]
    fn helper_prefetch_turns_main_miss_into_total_hit() {
        let mut m = MemorySystem::new(tiny_cfg());
        let p = m.prefetch_access(load(0x2000), 0);
        assert_eq!(p.complete_at, m.config().latency.prefetch_issue);
        // Wait for the fill to land, then the main thread hits.
        let t = m.config().latency.mem + 100;
        let r = m.demand_access(Entity::Main, load(0x2000), t);
        assert_eq!(r.class, HitClass::TotalHit);
        let s = m.finish();
        assert_eq!(s.prefetches_issued[0], 1);
        assert_eq!(
            s.prefetches_useful[0], 1,
            "first demand touch counts usefulness"
        );
    }

    #[test]
    fn late_prefetch_gives_partial_hit() {
        let mut m = MemorySystem::new(tiny_cfg());
        m.prefetch_access(load(0x2000), 0);
        // Access while the fill is still in flight.
        let r = m.demand_access(Entity::Main, load(0x2000), 5);
        assert_eq!(r.class, HitClass::PartialHit);
        // Completion equals the prefetch's ready time (latency partly hidden).
        assert!(r.complete_at < 5 + m.config().latency.full_miss());
        let s = m.finish();
        assert_eq!(s.main.partial_hits, 1);
        assert_eq!(
            s.prefetches_useful[0], 1,
            "late prefetches are still useful"
        );
    }

    #[test]
    fn two_threads_same_block_merge_into_one_fill() {
        let mut m = MemorySystem::new(tiny_cfg());
        let r1 = m.demand_access(Entity::Helper, load(0x3000), 0);
        assert_eq!(r1.class, HitClass::TotalMiss);
        let r2 = m.demand_access(Entity::Main, load(0x3000), 1);
        assert_eq!(r2.class, HitClass::PartialHit);
        let s = m.finish();
        assert_eq!(s.l2_fills, 1, "one fill serves both");
    }

    #[test]
    fn mshr_full_stalls_demand_until_room() {
        let mut m = MemorySystem::new(tiny_cfg()); // 2 MSHRs
        let r1 = m.demand_access(Entity::Main, load(0x1000), 0);
        let _ = m.demand_access(Entity::Helper, load(0x2000), 0); // same cycle ok (>=)
                                                                  // Third distinct miss must wait for an earlier fill to complete.
        let r3 = m.demand_access(Entity::Main, load(0x4000), 1);
        assert_eq!(r3.class, HitClass::TotalMiss);
        assert!(
            r3.complete_at >= r1.complete_at,
            "stalled behind MSHR drain"
        );
    }

    #[test]
    fn bus_contention_delays_second_fill() {
        let mut m = MemorySystem::new(tiny_cfg());
        let lat = m.config().latency;
        let r1 = m.demand_access(Entity::Main, load(0x1000), 0);
        let r2 = m.demand_access(Entity::Main, load(0x8000), 0);
        assert_eq!(r2.complete_at, r1.complete_at + lat.bus_service);
        let s = m.finish();
        assert_eq!(s.bus_queued, 1);
    }

    #[test]
    fn pollution_case1_reuse_eviction_detected() {
        let mut m = MemorySystem::new(tiny_cfg());
        // L2: 4 sets x 2 ways. Blocks 0x0000, 0x0400, 0x0800 all map to set 0
        // (set stride = 4 sets * 64B = 256B; use multiples of 0x400 = 4*256).
        let a = 0x0000;
        let b = 0x1000;
        let c = 0x2000;
        assert_eq!(m.config().l2.set_of(a), m.config().l2.set_of(b));
        assert_eq!(m.config().l2.set_of(b), m.config().l2.set_of(c));
        // Main loads a and b (set 0 now full of demanded data).
        let r = m.demand_access(Entity::Main, load(a), 0);
        let mut t = r.complete_at + 1;
        let r = m.demand_access(Entity::Main, load(b), t);
        t = r.complete_at + 1;
        // Helper prefetches c -> evicts LRU (a), a case-1 candidate.
        m.prefetch_access(load(c), t);
        t += m.config().latency.mem + m.config().latency.bus_service + 10;
        // Main re-misses on a: counted as a reuse (case 1) pollution event.
        let r = m.demand_access(Entity::Main, load(a), t);
        assert_eq!(r.class, HitClass::TotalMiss);
        let s = m.finish();
        assert_eq!(s.pollution.reuse_evictions, 1);
    }

    #[test]
    fn pollution_case2_unused_helper_line_displaced_by_prefetch() {
        let mut m = MemorySystem::new(tiny_cfg());
        let (a, b, c) = (0x0000, 0x1000, 0x2000);
        // Helper prefetches a and b into set 0; never demanded.
        m.prefetch_access(load(a), 0);
        m.prefetch_access(load(b), 1);
        let mut t = m.config().latency.mem + 200;
        m.demand_access(Entity::Main, load(0x40), t); // unrelated; drains fills
        t += 1000;
        // Third helper prefetch evicts an unused helper line: case 2.
        m.prefetch_access(load(c), t);
        t += m.config().latency.mem + 200;
        m.demand_access(Entity::Main, load(0x40), t); // drain
        let s = m.finish();
        assert_eq!(s.pollution.unused_helper_evictions, 1);
        assert!(s.pollution.dead_prefetches >= 1);
    }

    #[test]
    fn eviction_by_demand_is_not_counted_as_pollution() {
        let mut m = MemorySystem::new(tiny_cfg());
        let (a, b, c) = (0x0000, 0x1000, 0x2000);
        let mut t = 0;
        for addr in [a, b, c] {
            let r = m.demand_access(Entity::Main, load(addr), t);
            t = r.complete_at + 1;
        }
        // c evicted a (demand evicting demand). Re-miss on a: no pollution.
        let r = m.demand_access(Entity::Main, load(a), t);
        assert_eq!(r.class, HitClass::TotalMiss);
        let s = m.finish();
        assert_eq!(s.pollution.reuse_evictions, 0);
        assert_eq!(s.pollution.total(), 0);
    }

    #[test]
    fn hw_streamer_prefetches_sequential_stream() {
        let mut cfg = tiny_cfg();
        cfg.hw_prefetchers = true;
        let mut m = MemorySystem::new(cfg);
        let mut t = 0;
        for i in 0..4u64 {
            let r = m.demand_access(Entity::Main, load(i * 64), t);
            t = r.complete_at + 1;
        }
        let s = m.finish();
        assert!(
            s.prefetches_issued[1] > 0,
            "streamer must fire on a sequential scan"
        );
    }

    #[test]
    fn stats_classes_partition_accesses() {
        let mut m = MemorySystem::new(tiny_cfg());
        let mut t = 0;
        for i in 0..50u64 {
            let r = m.demand_access(Entity::Main, load((i % 7) * 64 * 13), t);
            t = r.complete_at + 1;
        }
        let s = m.finish();
        assert_eq!(s.main.demand_accesses(), 50);
    }

    #[test]
    fn inclusive_l2_back_invalidates_l1() {
        let cfg = tiny_cfg().inclusive();
        let mut m = MemorySystem::new(cfg);
        // L2: 4 sets x 2 ways; set-0 conflicts at 0x1000 strides... use
        // three blocks mapping to the same L2 set.
        let (a, b, c) = (0x0000u64, 0x1000, 0x2000);
        assert_eq!(m.config().l2.set_of(a), m.config().l2.set_of(c));
        let mut t = 0;
        // Load a twice: second access L2-hits and fills the L1.
        for _ in 0..2 {
            let r = m.demand_access(Entity::Main, load(a), t);
            t = r.complete_at + 1;
        }
        let r = m.demand_access(Entity::Main, load(a), t);
        assert_eq!(r.class, HitClass::L1Hit, "a should now live in L1");
        t = r.complete_at + 1;
        // Fill b and c: c's fill evicts a from the L2, which must also
        // purge it from the L1 under inclusion.
        for addr in [b, c] {
            let r = m.demand_access(Entity::Main, load(addr), t);
            t = r.complete_at + 1;
        }
        let r = m.demand_access(Entity::Main, load(a), t);
        assert_eq!(
            r.class,
            HitClass::TotalMiss,
            "back-invalidation must have removed a from the L1 too"
        );
    }

    #[test]
    fn non_inclusive_l1_survives_l2_eviction() {
        let mut m = MemorySystem::new(tiny_cfg()); // non-inclusive default
        let (a, b, c) = (0x0000u64, 0x1000, 0x2000);
        let mut t = 0;
        for _ in 0..2 {
            let r = m.demand_access(Entity::Main, load(a), t);
            t = r.complete_at + 1;
        }
        for addr in [b, c] {
            let r = m.demand_access(Entity::Main, load(addr), t);
            t = r.complete_at + 1;
        }
        let r = m.demand_access(Entity::Main, load(a), t);
        assert_eq!(r.class, HitClass::L1Hit, "non-inclusive L1 keeps the line");
    }

    #[test]
    fn reset_reproduces_a_fresh_run_bit_for_bit() {
        let mut cfg = tiny_cfg();
        cfg.hw_prefetchers = true; // exercise prefetcher state too
        let run = |m: &mut MemorySystem| {
            let mut t = 0;
            for i in 0..40u64 {
                let r = m.demand_access(Entity::Main, load((i % 9) * 64 * 5), t);
                t = r.complete_at + 1;
                if i % 4 == 0 {
                    m.prefetch_access(load(i * 128), t);
                    t += 1;
                }
            }
            m.finish_stats()
        };
        let mut reused = MemorySystem::new(cfg);
        let first = run(&mut reused);
        reused.reset();
        let second = run(&mut reused);
        assert_eq!(first, second, "reset must erase all history");
        let fresh = run(&mut MemorySystem::new(cfg));
        assert_eq!(first, fresh, "reset must equal a fresh build");
    }

    #[test]
    fn pre_projected_path_matches_scalar_path() {
        let mut cfg = tiny_cfg();
        cfg.hw_prefetchers = true;
        let mut scalar = MemorySystem::new(cfg);
        let mut pre = MemorySystem::new(cfg);
        let mut t = 0;
        for i in 0..60u64 {
            let mref = load((i % 11) * 64 * 3);
            let cr = pre.project(mref);
            let (a, b) = match i % 3 {
                0 => (
                    scalar.demand_access(Entity::Main, mref, t),
                    pre.demand_access_pre(Entity::Main, &cr, t),
                ),
                1 => (scalar.helper_load(mref, t), pre.helper_load_pre(&cr, t)),
                _ => (
                    scalar.prefetch_access(mref, t),
                    pre.prefetch_access_pre(&cr, t),
                ),
            };
            assert_eq!(a, b, "access {i}");
            t = a.complete_at + 1;
        }
        assert_eq!(scalar.finish(), pre.finish());
    }

    /// Drive a mixed main/helper workload with conflict misses through a
    /// sink, returning the final stats and the sink.
    fn eventful_run<S: crate::events::EventSink>(m: &mut MemorySystem, sink: &mut S) -> MemStats {
        let mut t = 0;
        for i in 0..60u64 {
            let mref = load((i % 9) * 64 * 5);
            let cr = m.project(mref);
            let r = match i % 3 {
                0 => m.demand_access_pre_ev(Entity::Main, &cr, t, sink),
                1 => m.helper_load_pre_ev(&cr, t, sink),
                _ => m.prefetch_access_pre_ev(&cr, t, sink),
            };
            t = r.complete_at + 1;
        }
        m.finish_stats_ev(sink)
    }

    #[test]
    fn event_fold_matches_counters_and_sink_does_not_perturb_stats() {
        let mut cfg = tiny_cfg();
        cfg.hw_prefetchers = true;
        let mut sink = crate::events::RingSink::new(0, 1600);
        let observed = eventful_run(&mut MemorySystem::new(cfg), &mut sink);
        let baseline = eventful_run(&mut MemorySystem::new(cfg), &mut crate::events::NullSink);
        assert_eq!(observed, baseline, "attaching a sink must not change stats");

        let s = &sink.summary;
        assert_eq!(s.pollution_stats(), observed.pollution);
        assert_eq!(s.issued, observed.prefetches_issued);
        assert_eq!(s.first_uses, observed.prefetches_useful);
        let fills: u64 = s
            .per_set
            .values()
            .map(crate::events::SetPressure::total_fills)
            .sum();
        assert_eq!(fills, observed.l2_fills);

        // Replaying the buffered stream reproduces the running fold.
        let mut refold = crate::events::EventSummary::new(1600);
        for ev in sink.events() {
            refold.absorb(ev);
        }
        assert_eq!(&refold, s);
        assert!(s.issued[0] > 0 && fills > 0, "workload must be eventful");
    }

    #[test]
    fn case1_pollution_emits_reuse_eviction_event() {
        let mut m = MemorySystem::new(tiny_cfg());
        let mut sink = crate::events::RingSink::new(0, 1600);
        let (a, b, c) = (0x0000, 0x1000, 0x2000);
        let mut t = 0;
        for addr in [a, b] {
            let cr = m.project(load(addr));
            t = m
                .demand_access_pre_ev(Entity::Main, &cr, t, &mut sink)
                .complete_at
                + 1;
        }
        let cr = m.project(load(c));
        m.prefetch_access_pre_ev(&cr, t, &mut sink);
        t += m.config().latency.mem + m.config().latency.bus_service + 10;
        let cr = m.project(load(a));
        m.demand_access_pre_ev(Entity::Main, &cr, t, &mut sink);
        let s = m.finish_stats_ev(&mut sink);
        assert_eq!(s.pollution.reuse_evictions, 1);
        let reuse_events: Vec<_> = sink
            .events()
            .filter(|e| {
                matches!(
                    e,
                    Event::PollutionEviction {
                        case: PollutionCase::Reuse,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(reuse_events.len(), 1);
        match reuse_events[0] {
            Event::PollutionEviction { block, set, .. } => {
                assert_eq!(*block, m.config().l2.block_of(a));
                assert_eq!(*set, m.config().l2.set_of(a) as u32);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn prefetch_to_cached_block_is_a_noop_promotion() {
        let mut m = MemorySystem::new(tiny_cfg());
        let r = m.demand_access(Entity::Main, load(0x1000), 0);
        let t = r.complete_at + 1;
        let r2 = m.demand_access(Entity::Main, load(0x1000), t); // now in L2
        assert_eq!(r2.class, HitClass::TotalHit);
        let t = r2.complete_at + 1;
        m.prefetch_access(load(0x1000), t);
        let s = m.finish();
        assert_eq!(s.l2_fills, 1, "prefetch hit must not refill");
    }
}
