//! # sp-cachesim
//!
//! A cycle-approximate CMP memory-hierarchy simulator: per-core private L1
//! data caches, a shared set-associative L2 (last-level) cache with MSHRs,
//! per-core hardware prefetchers (a sequential **streamer** and an
//! IP-indexed stride **DPL** prefetcher, mirroring the Core 2's), and a
//! shared memory bus with queueing contention.
//!
//! The paper ran on a real Intel Core 2 Quad (Q6600) and measured L2
//! behaviour with VTune; this crate is the substitution substrate (see
//! `DESIGN.md` §2). It reproduces the paper's observables exactly:
//!
//! * **Totally cache hit** — the demanded data is held in the L2
//!   ([`HitClass::TotalHit`]).
//! * **Partially cache hit** — the demanded data arrives in cache after
//!   its memory request was issued but before it is serviced, i.e. the
//!   access hits an in-flight MSHR fill ([`HitClass::PartialHit`]).
//! * **Totally cache miss** — the data doesn't arrive until the access's
//!   own memory request is serviced ([`HitClass::TotalMiss`]).
//! * **Memory access** — totally misses + partially hits (both leave the
//!   L2 unsatisfied at issue time).
//!
//! Pollution accounting implements the paper's three displacement cases
//! (§II.C): a prefetched block displacing (1) data later reused by the
//! main thread, (2) a not-yet-used helper-prefetched block, (3) a
//! not-yet-used hardware-prefetched block. See [`stats::PollutionStats`].
//!
//! The simulator is deterministic: identical inputs produce identical
//! counter values, which is what lets the experiment harness assert the
//! paper's figure *shapes* in tests.

pub mod bus;
pub mod cache;
pub mod clock;
pub mod config;
pub mod epoch;
pub mod events;
pub mod geometry;
pub mod hierarchy;
pub mod mshr;
pub mod prefetcher;
pub mod replacement;
pub mod stats;

pub use bus::Bus;
pub use cache::SetAssocCache;
pub use clock::{Cycle, LatencyConfig};
pub use config::{CacheConfig, HwBackend, Inclusion};
pub use epoch::{EpochSeries, EpochSink, EpochWindow, DEFAULT_EPOCH_LEN};
pub use events::{
    default_early_threshold, Event, EventSink, EventSummary, FillOrigin, NullSink, PfClass,
    PollutionCase, QuartileRow, RingSink, SetPressure, SummarySink, Timeliness,
};
pub use geometry::CacheGeometry;
pub use hierarchy::{sim_build_count, AccessResult, Entity, HitClass, MemorySystem};
pub use mshr::MshrFile;
pub use replacement::Policy;
pub use stats::{MemStats, PollutionStats, ThreadStats};
