//! Miss-status holding registers (MSHRs) for the shared L2.
//!
//! An in-flight fill is what turns a would-be miss into the paper's
//! **partially cache hit**: the demanded data "arrives in cache after its
//! memory request is issued but before it is serviced". Any access (from
//! any entity) to a block with an allocated MSHR merges with the
//! outstanding request instead of issuing a new one.

use crate::clock::Cycle;
use crate::stats::Entity;
use sp_trace::VAddr;

/// An outstanding fill request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Block being fetched.
    pub block: VAddr,
    /// Cycle at which the fill completes (data installed in the L2).
    pub ready_at: Cycle,
    /// Entity whose request allocated the entry.
    pub requester: Entity,
    /// Whether the original request was a prefetch. A demand access that
    /// merges with a prefetch MSHR clears this: the resulting fill is a
    /// (partially-hidden) demand fill whose prefetch was *useful*.
    pub prefetch: bool,
    /// Whether a store is waiting on this fill (the installed line starts
    /// dirty).
    pub store: bool,
}

/// A fixed-capacity MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<InFlight>,
    capacity: usize,
    /// Cached `min(entries[..].ready_at)`, `Cycle::MAX` when empty, so
    /// the per-access [`none_ready`](Self::none_ready) guard is a single
    /// compare instead of a scan. Maintained on allocate (min) and
    /// recomputed on removal.
    min_ready: Cycle,
}

impl MshrFile {
    /// An empty file with room for `capacity` outstanding fills.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            min_ready: Cycle::MAX,
        }
    }

    /// Drop every outstanding entry, keeping the allocation.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.min_ready = Cycle::MAX;
    }

    /// Outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no fill is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if no further request can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The outstanding entry for `block`, if any.
    pub fn lookup(&self, block: VAddr) -> Option<InFlight> {
        self.entries.iter().copied().find(|e| e.block == block)
    }

    /// Merge a demand access into an outstanding entry, marking the fill
    /// as demanded (useful, if it was a prefetch) and dirty if the access
    /// is a store. Returns the merged entry (with the *pre-merge*
    /// prefetch flag), or `None` if `block` has no entry.
    pub fn merge_demand(&mut self, block: VAddr, store: bool) -> Option<InFlight> {
        let e = self.entries.iter_mut().find(|e| e.block == block)?;
        let was_prefetch = e.prefetch;
        e.prefetch = false;
        e.store |= store;
        Some(InFlight {
            prefetch: was_prefetch,
            ..*e
        })
    }

    /// Track a new outstanding fill. Fails (returning the entry back) if
    /// the file is full or the block already has an entry.
    pub fn allocate(&mut self, entry: InFlight) -> Result<(), InFlight> {
        if self.is_full() || self.lookup(entry.block).is_some() {
            return Err(entry);
        }
        self.min_ready = self.min_ready.min(entry.ready_at);
        self.entries.push(entry);
        Ok(())
    }

    /// [`allocate`](Self::allocate) for callers that have already
    /// established there is room and no entry for the block — skips the
    /// duplicate lookup scan on the access hot path (checked in debug
    /// builds).
    pub fn allocate_unchecked(&mut self, entry: InFlight) {
        debug_assert!(!self.is_full(), "caller ensured MSHR room");
        debug_assert!(
            self.lookup(entry.block).is_none(),
            "caller ensured the block has no entry"
        );
        self.min_ready = self.min_ready.min(entry.ready_at);
        self.entries.push(entry);
    }

    /// `true` if no outstanding fill has completed by `now` — the cheap
    /// guard that lets callers skip [`drain_ready`](Self::drain_ready)'s
    /// work on the (overwhelmingly common) nothing-to-do path.
    #[inline]
    pub fn none_ready(&self, now: Cycle) -> bool {
        debug_assert_eq!(
            self.min_ready,
            self.entries
                .iter()
                .map(|e| e.ready_at)
                .min()
                .unwrap_or(Cycle::MAX)
        );
        // `min_ready` is MAX when empty; the second test covers an empty
        // file probed at `now == Cycle::MAX`.
        self.min_ready > now || self.entries.is_empty()
    }

    /// Remove and return every entry whose fill has completed by `now`,
    /// in completion order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<InFlight> {
        let mut done = Vec::new();
        while let Some(e) = self.pop_earliest_ready(now) {
            done.push(e);
        }
        done
    }

    /// Remove and return the completed entry (`ready_at <= now`) with the
    /// earliest completion time, ties broken by allocation order — the
    /// allocation-free form of [`drain_ready`](Self::drain_ready): calling
    /// it until `None` yields exactly `drain_ready`'s sequence.
    pub fn pop_earliest_ready(&mut self, now: Cycle) -> Option<InFlight> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.ready_at <= now && best.is_none_or(|b| e.ready_at < self.entries[b].ready_at) {
                best = Some(i);
            }
        }
        let popped = best.map(|i| self.entries.remove(i));
        if popped.is_some() {
            self.min_ready = self
                .entries
                .iter()
                .map(|e| e.ready_at)
                .min()
                .unwrap_or(Cycle::MAX);
        }
        popped
    }

    /// Earliest completion time among outstanding entries (used to decide
    /// how long a demand access must stall when the file is full).
    pub fn earliest_ready(&self) -> Option<Cycle> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.min_ready)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(block: VAddr, ready_at: Cycle) -> InFlight {
        InFlight {
            block,
            ready_at,
            requester: Entity::Helper,
            prefetch: true,
            store: false,
        }
    }

    #[test]
    fn allocate_and_lookup() {
        let mut m = MshrFile::new(2);
        m.allocate(fl(0x40, 100)).unwrap();
        assert_eq!(m.lookup(0x40).unwrap().ready_at, 100);
        assert!(m.lookup(0x80).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn duplicate_block_rejected() {
        let mut m = MshrFile::new(2);
        m.allocate(fl(0x40, 100)).unwrap();
        assert!(m.allocate(fl(0x40, 200)).is_err());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(1);
        m.allocate(fl(0x40, 100)).unwrap();
        assert!(m.is_full());
        assert!(m.allocate(fl(0x80, 100)).is_err());
    }

    #[test]
    fn merge_demand_clears_prefetch_and_reports_it() {
        let mut m = MshrFile::new(2);
        m.allocate(fl(0x40, 100)).unwrap();
        let merged = m.merge_demand(0x40, false).unwrap();
        assert!(merged.prefetch, "merge reports the pre-merge flag");
        assert!(
            !m.lookup(0x40).unwrap().prefetch,
            "entry is now a demand fill"
        );
        // Merging again reports prefetch = false; a store merge dirties.
        assert!(!m.merge_demand(0x40, true).unwrap().prefetch);
        assert!(m.lookup(0x40).unwrap().store);
        assert!(m.merge_demand(0x80, false).is_none());
    }

    #[test]
    fn drain_ready_pops_completed_in_order() {
        let mut m = MshrFile::new(4);
        m.allocate(fl(0x40, 300)).unwrap();
        m.allocate(fl(0x80, 100)).unwrap();
        m.allocate(fl(0xc0, 200)).unwrap();
        let done = m.drain_ready(250);
        assert_eq!(
            done.iter().map(|e| e.block).collect::<Vec<_>>(),
            vec![0x80, 0xc0]
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m.earliest_ready(), Some(300));
        assert!(m.drain_ready(299).is_empty());
        assert_eq!(m.drain_ready(300).len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.earliest_ready(), None);
    }

    #[test]
    fn pop_earliest_ready_matches_drain_order_with_ties() {
        let mut a = MshrFile::new(4);
        let mut b = MshrFile::new(4);
        for e in [fl(0x40, 200), fl(0x80, 100), fl(0xc0, 100), fl(0x100, 300)] {
            a.allocate(e).unwrap();
            b.allocate(e).unwrap();
        }
        let drained = a.drain_ready(250);
        let mut popped = Vec::new();
        while let Some(e) = b.pop_earliest_ready(250) {
            popped.push(e);
        }
        assert_eq!(drained, popped);
        assert_eq!(
            popped.iter().map(|e| e.block).collect::<Vec<_>>(),
            vec![0x80, 0xc0, 0x40],
            "completion order, allocation order on ties"
        );
        assert_eq!(a.len(), 1);
        assert!(b.pop_earliest_ready(299).is_none());
    }

    #[test]
    fn allocate_unchecked_tracks_like_allocate() {
        let mut m = MshrFile::new(2);
        m.allocate_unchecked(fl(0x40, 100));
        assert_eq!(m.lookup(0x40).unwrap().ready_at, 100);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn none_ready_agrees_with_drain() {
        let mut m = MshrFile::new(4);
        assert!(m.none_ready(u64::MAX));
        m.allocate(fl(0x40, 100)).unwrap();
        assert!(m.none_ready(99));
        assert!(!m.none_ready(100));
        m.reset();
        assert!(m.is_empty());
        assert!(m.none_ready(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
