//! IP-indexed stride prefetcher (Intel's "DPL", Data Prefetch Logic).

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

#[derive(Debug, Clone, Copy)]
struct Entry {
    site: SiteId,
    last_addr: VAddr,
    stride: i64,
    conf: u32,
    stamp: u64,
    valid: bool,
}

/// A stride prefetcher indexed by static reference site (the simulator's
/// stand-in for the load instruction pointer).
///
/// Classic two-confirmation design: a site whose last two deltas agree
/// (non-zero) prefetches `degree` strides ahead on every further access.
#[derive(Debug, Clone)]
pub struct DplPrefetcher {
    table: Vec<Entry>,
    degree: u32,
    line_size: u64,
    clock: u64,
}

impl DplPrefetcher {
    /// A prefetcher with `entries` table slots and the given prefetch
    /// `degree` (strides ahead per trigger).
    pub fn new(entries: usize, degree: u32, line_size: u64) -> Self {
        assert!(entries > 0 && degree > 0);
        assert!(line_size.is_power_of_two());
        DplPrefetcher {
            table: vec![
                Entry {
                    site: SiteId::ANON,
                    last_addr: 0,
                    stride: 0,
                    conf: 0,
                    stamp: 0,
                    valid: false
                };
                entries
            ],
            degree,
            line_size,
            clock: 0,
        }
    }

    fn emit(&self, addr: VAddr, stride: i64, out: &mut Vec<VAddr>) {
        let start = out.len();
        for d in 1..=self.degree as i64 {
            let target = addr as i64 + stride * d;
            if target < 0 {
                break;
            }
            let block = target as u64 & !(self.line_size - 1);
            // Small strides land repeatedly in one block; dedup against
            // what this emission already appended.
            if !out[start..].contains(&block) {
                out.push(block);
            }
        }
    }
}

impl HwPrefetcher for DplPrefetcher {
    fn observe(&mut self, site: SiteId, addr: VAddr, out: &mut Vec<VAddr>) {
        if site == SiteId::ANON {
            // Anonymous references carry no IP to index on.
            return;
        }
        self.clock += 1;
        // One pass: find this site's entry, tracking the allocation
        // victim — first invalid entry, else least-recently-touched —
        // along the way. Valid stamps are always >= 1, so key 0 marks
        // "found an invalid entry".
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (i, e) in self.table.iter_mut().enumerate() {
            if !e.valid {
                if victim_key != 0 {
                    victim = i;
                    victim_key = 0;
                }
                continue;
            }
            if e.site == site {
                let delta = addr as i64 - e.last_addr as i64;
                if delta == 0 {
                    e.stamp = self.clock;
                    return;
                }
                if delta == e.stride {
                    e.conf = e.conf.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.conf = 0;
                }
                e.last_addr = addr;
                e.stamp = self.clock;
                if e.conf >= 1 {
                    let (a, s) = (e.last_addr, e.stride);
                    self.emit(a, s, out);
                }
                return;
            }
            if e.stamp < victim_key {
                victim = i;
                victim_key = e.stamp;
            }
        }
        // No entry for this site: allocate over the victim.
        self.table[victim] = Entry {
            site,
            last_addr: addr,
            stride: 0,
            conf: 0,
            stamp: self.clock,
            valid: true,
        };
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            e.valid = false;
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpl() -> DplPrefetcher {
        DplPrefetcher::new(8, 2, 64)
    }

    fn obs(p: &mut DplPrefetcher, site: SiteId, addr: VAddr) -> Vec<VAddr> {
        let mut out = Vec::new();
        p.observe(site, addr, &mut out);
        out
    }

    #[test]
    fn third_strided_access_triggers() {
        let mut p = dpl();
        let s = SiteId(1);
        assert!(obs(&mut p, s, 0).is_empty()); // allocate
        assert!(obs(&mut p, s, 256).is_empty()); // learn stride 256 (conf 0)
        let out = obs(&mut p, s, 512); // confirm (conf 1) -> fire
        assert_eq!(out, vec![768, 1024]);
    }

    #[test]
    fn sub_line_strides_dedup_blocks() {
        let mut p = dpl();
        let s = SiteId(2);
        obs(&mut p, s, 0);
        obs(&mut p, s, 16);
        let out = obs(&mut p, s, 32);
        // Targets 48 and 64 -> blocks 0 and 64; block 0 = current, still
        // emitted (harmless: it will hit in cache), but deduped to one.
        assert_eq!(out, vec![0, 64]);
    }

    #[test]
    fn dedup_is_scoped_to_one_emission() {
        // A pre-existing buffer entry must not suppress a candidate —
        // dedup only looks at what this call appended.
        let mut p = dpl();
        let s = SiteId(2);
        obs(&mut p, s, 0);
        obs(&mut p, s, 16);
        let mut out = vec![0];
        p.observe(s, 32, &mut out);
        assert_eq!(out, vec![0, 0, 64]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = dpl();
        let s = SiteId(3);
        obs(&mut p, s, 10_000);
        obs(&mut p, s, 9_872); // stride -128
        let out = obs(&mut p, s, 9_744);
        assert_eq!(out, vec![(9_744 - 128) & !63, (9_744 - 256) & !63]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = dpl();
        let s = SiteId(4);
        obs(&mut p, s, 0);
        obs(&mut p, s, 128);
        assert!(!obs(&mut p, s, 256).is_empty()); // trained
        assert!(
            obs(&mut p, s, 1000).is_empty(),
            "broken stride must not fire"
        );
        assert!(
            obs(&mut p, s, 2000).is_empty(),
            "stride 1000 seen once (conf 0)"
        );
        assert!(!obs(&mut p, s, 3000).is_empty(), "stride 1000 confirmed");
    }

    #[test]
    fn sites_are_tracked_independently() {
        let mut p = dpl();
        let (a, b) = (SiteId(5), SiteId(6));
        obs(&mut p, a, 0);
        obs(&mut p, b, 1 << 20);
        obs(&mut p, a, 64);
        obs(&mut p, b, (1 << 20) + 4096);
        assert_eq!(obs(&mut p, a, 128), vec![192, 256]);
        assert!(!obs(&mut p, b, (1 << 20) + 8192).is_empty());
    }

    #[test]
    fn anonymous_site_is_ignored() {
        let mut p = dpl();
        for i in 0..10u64 {
            assert!(obs(&mut p, SiteId::ANON, i * 64).is_empty());
        }
    }

    #[test]
    fn table_replacement_evicts_lru_site() {
        let mut p = DplPrefetcher::new(1, 1, 64);
        let (a, b) = (SiteId(1), SiteId(2));
        obs(&mut p, a, 0);
        obs(&mut p, a, 64);
        obs(&mut p, b, 0); // evicts a's entry
        obs(&mut p, a, 128); // re-allocates; old stride forgotten
        assert!(obs(&mut p, a, 192).is_empty(), "conf 0 after re-allocation");
    }

    #[test]
    fn reset_clears_table() {
        let mut p = dpl();
        let s = SiteId(9);
        obs(&mut p, s, 0);
        obs(&mut p, s, 64);
        p.reset();
        obs(&mut p, s, 128);
        assert!(obs(&mut p, s, 192).is_empty());
    }
}
