//! IP-indexed stride prefetcher (Intel's "DPL", Data Prefetch Logic).

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

#[derive(Debug, Clone, Copy)]
struct Entry {
    site: SiteId,
    last_addr: VAddr,
    stride: i64,
    conf: u32,
    stamp: u64,
    valid: bool,
}

/// A stride prefetcher indexed by static reference site (the simulator's
/// stand-in for the load instruction pointer).
///
/// Classic two-confirmation design: a site whose last two deltas agree
/// (non-zero) prefetches `degree` strides ahead on every further access.
#[derive(Debug, Clone)]
pub struct DplPrefetcher {
    table: Vec<Entry>,
    degree: u32,
    line_size: u64,
    clock: u64,
}

impl DplPrefetcher {
    /// A prefetcher with `entries` table slots and the given prefetch
    /// `degree` (strides ahead per trigger).
    pub fn new(entries: usize, degree: u32, line_size: u64) -> Self {
        assert!(entries > 0 && degree > 0);
        assert!(line_size.is_power_of_two());
        DplPrefetcher {
            table: vec![
                Entry {
                    site: SiteId::ANON,
                    last_addr: 0,
                    stride: 0,
                    conf: 0,
                    stamp: 0,
                    valid: false
                };
                entries
            ],
            degree,
            line_size,
            clock: 0,
        }
    }

    fn emit(&self, addr: VAddr, stride: i64) -> Vec<VAddr> {
        let mut out = Vec::with_capacity(self.degree as usize);
        let mut seen_blocks = Vec::with_capacity(self.degree as usize);
        for d in 1..=self.degree as i64 {
            let target = addr as i64 + stride * d;
            if target < 0 {
                break;
            }
            let block = target as u64 & !(self.line_size - 1);
            // Small strides land repeatedly in one block; dedup.
            if !seen_blocks.contains(&block) {
                seen_blocks.push(block);
                out.push(block);
            }
        }
        out
    }
}

impl HwPrefetcher for DplPrefetcher {
    fn observe(&mut self, site: SiteId, addr: VAddr) -> Vec<VAddr> {
        if site == SiteId::ANON {
            // Anonymous references carry no IP to index on.
            return Vec::new();
        }
        self.clock += 1;
        if let Some(e) = self
            .table
            .iter_mut()
            .filter(|e| e.valid)
            .find(|e| e.site == site)
        {
            let delta = addr as i64 - e.last_addr as i64;
            if delta == 0 {
                e.stamp = self.clock;
                return Vec::new();
            }
            if delta == e.stride {
                e.conf = e.conf.saturating_add(1);
            } else {
                e.stride = delta;
                e.conf = 0;
            }
            e.last_addr = addr;
            e.stamp = self.clock;
            if e.conf >= 1 {
                let (a, s) = (e.last_addr, e.stride);
                return self.emit(a, s);
            }
            return Vec::new();
        }
        // Allocate over the LRU (or first invalid) entry.
        let slot = self
            .table
            .iter_mut()
            .min_by_key(|e| if e.valid { e.stamp } else { 0 })
            .expect("at least one entry");
        *slot = Entry {
            site,
            last_addr: addr,
            stride: 0,
            conf: 0,
            stamp: self.clock,
            valid: true,
        };
        Vec::new()
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            e.valid = false;
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpl() -> DplPrefetcher {
        DplPrefetcher::new(8, 2, 64)
    }

    #[test]
    fn third_strided_access_triggers() {
        let mut p = dpl();
        let s = SiteId(1);
        assert!(p.observe(s, 0).is_empty()); // allocate
        assert!(p.observe(s, 256).is_empty()); // learn stride 256 (conf 0)
        let out = p.observe(s, 512); // confirm (conf 1) -> fire
        assert_eq!(out, vec![768, 1024]);
    }

    #[test]
    fn sub_line_strides_dedup_blocks() {
        let mut p = dpl();
        let s = SiteId(2);
        p.observe(s, 0);
        p.observe(s, 16);
        let out = p.observe(s, 32);
        // Targets 48 and 64 -> blocks 0 and 64; block 0 = current, still
        // emitted (harmless: it will hit in cache), but deduped to one.
        assert_eq!(out, vec![0, 64]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = dpl();
        let s = SiteId(3);
        p.observe(s, 10_000);
        p.observe(s, 9_872); // stride -128
        let out = p.observe(s, 9_744);
        assert_eq!(out, vec![(9_744 - 128) & !63, (9_744 - 256) & !63]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = dpl();
        let s = SiteId(4);
        p.observe(s, 0);
        p.observe(s, 128);
        assert!(!p.observe(s, 256).is_empty()); // trained
        assert!(p.observe(s, 1000).is_empty(), "broken stride must not fire");
        assert!(
            p.observe(s, 2000).is_empty(),
            "stride 1000 seen once (conf 0)"
        );
        assert!(!p.observe(s, 3000).is_empty(), "stride 1000 confirmed");
    }

    #[test]
    fn sites_are_tracked_independently() {
        let mut p = dpl();
        let (a, b) = (SiteId(5), SiteId(6));
        p.observe(a, 0);
        p.observe(b, 1 << 20);
        p.observe(a, 64);
        p.observe(b, (1 << 20) + 4096);
        assert_eq!(p.observe(a, 128), vec![192, 256]);
        assert!(!p.observe(b, (1 << 20) + 8192).is_empty());
    }

    #[test]
    fn anonymous_site_is_ignored() {
        let mut p = dpl();
        for i in 0..10u64 {
            assert!(p.observe(SiteId::ANON, i * 64).is_empty());
        }
    }

    #[test]
    fn table_replacement_evicts_lru_site() {
        let mut p = DplPrefetcher::new(1, 1, 64);
        let (a, b) = (SiteId(1), SiteId(2));
        p.observe(a, 0);
        p.observe(a, 64);
        p.observe(b, 0); // evicts a's entry
        p.observe(a, 128); // re-allocates; old stride forgotten
        assert!(p.observe(a, 192).is_empty(), "conf 0 after re-allocation");
    }

    #[test]
    fn reset_clears_table() {
        let mut p = dpl();
        let s = SiteId(9);
        p.observe(s, 0);
        p.observe(s, 64);
        p.reset();
        p.observe(s, 128);
        assert!(p.observe(s, 192).is_empty());
    }
}
