//! Hardware prefetcher models.
//!
//! The Core 2 the paper ran on has, per core, a **streaming prefetcher**
//! (sequential/adjacent-line) and a **DPL** (Data Prefetch Logic,
//! IP-indexed stride) prefetcher; the paper counts them among the six
//! access entities that share the L2 (§III.B). Two further backends
//! extend the study beyond the Core 2 pair: a **pointer-chase**
//! (content-directed) prefetcher for linked data structures and a
//! **perceptron-gated** stride prefetcher that learns where issuing
//! pays off. All models observe the demand-access stream of their core
//! and emit candidate block addresses; the
//! [`MemorySystem`](crate::MemorySystem) turns candidates into L2
//! fills attributed to the matching [`Entity`](crate::Entity) variant.
//! Which backend a simulation runs is selected by
//! [`HwBackend`](crate::config::HwBackend).

pub mod dpl;
pub mod pchase;
pub mod perceptron;
pub mod streamer;

pub use dpl::DplPrefetcher;
pub use pchase::PointerChasePrefetcher;
pub use perceptron::PerceptronPrefetcher;
pub use streamer::StreamPrefetcher;

use sp_trace::{SiteId, VAddr};

/// A hardware prefetcher observing one core's demand accesses.
pub trait HwPrefetcher {
    /// Observe a demand access (`site`, block-aligned `block`), appending
    /// block addresses to prefetch (possibly none) to `out`. Taking the
    /// candidate buffer from the caller keeps the access hot path free of
    /// per-access allocations — the memory system reuses one scratch
    /// buffer for every access it simulates.
    fn observe(&mut self, site: SiteId, block: VAddr, out: &mut Vec<VAddr>);

    /// Forget all learned state.
    fn reset(&mut self);
}
