//! Pointer-chase (content-directed) prefetcher.
//!
//! Linked data structures defeat stride detection: successive delinquent
//! loads land on unrelated blocks. What *is* stable across traversals is
//! the **transition** between blocks — walking a chain touches the same
//! block pairs in the same order every time. This model learns those
//! pairs from the demand stream (a Markov-style correlation table, one
//! successor per block) and, on every demand access, chases the learned
//! edges forward up to a configurable depth budget.
//!
//! A trace-driven simulator has no memory *contents*, so the model
//! cannot decode pointers out of fetched lines the way a real
//! content-directed prefetcher (e.g. Cooksey's CDP) does; learning
//! block-to-block transitions from the observed access stream is the
//! standard trace-level substitution (DESIGN.md §10 documents the
//! deviation). The consequence is one trained traversal before the
//! prefetcher fires, like a stride table's confirmation pass.

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

/// One correlation-table slot: `from` was last followed by `succ`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: VAddr,
    succ: VAddr,
    valid: bool,
}

/// A correlation-table prefetcher chasing learned block successors.
///
/// The table is direct-mapped on a multiplicative hash of the block
/// address; a collision simply retrains the slot (small tables forget
/// cold edges first in practice, since hot edges are re-learned on
/// every traversal).
#[derive(Debug, Clone)]
pub struct PointerChasePrefetcher {
    table: Vec<Edge>,
    /// Blocks chased (and prefetched) per trigger.
    depth: u32,
    /// Last demand block, the `from` side of the next learned edge.
    last: Option<VAddr>,
}

impl PointerChasePrefetcher {
    /// A prefetcher with `entries` correlation slots chasing `depth`
    /// successors per demand access.
    pub fn new(entries: usize, depth: u32) -> Self {
        assert!(entries > 0 && depth > 0);
        PointerChasePrefetcher {
            table: vec![
                Edge {
                    from: 0,
                    succ: 0,
                    valid: false
                };
                entries
            ],
            depth,
            last: None,
        }
    }

    fn slot_of(&self, block: VAddr) -> usize {
        ((block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.table.len()
    }
}

impl HwPrefetcher for PointerChasePrefetcher {
    fn observe(&mut self, _site: SiteId, block: VAddr, out: &mut Vec<VAddr>) {
        // Learn the edge from the previous demand block to this one.
        // Self-edges (consecutive touches of one block) carry no
        // traversal information and would make the chase spin in place.
        if let Some(prev) = self.last {
            if prev != block {
                let slot = self.slot_of(prev);
                self.table[slot] = Edge {
                    from: prev,
                    succ: block,
                    valid: true,
                };
            }
        }
        self.last = Some(block);

        // Chase learned successors up to the depth budget. Dedup within
        // this emission (a cyclic edge chain would otherwise re-emit),
        // and never emit the trigger block itself.
        let start = out.len();
        let mut cur = block;
        for _ in 0..self.depth {
            let e = self.table[self.slot_of(cur)];
            if !e.valid || e.from != cur {
                break;
            }
            cur = e.succ;
            if cur == block || out[start..].contains(&cur) {
                break;
            }
            out.push(cur);
        }
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            e.valid = false;
        }
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc() -> PointerChasePrefetcher {
        PointerChasePrefetcher::new(64, 3)
    }

    fn obs(p: &mut PointerChasePrefetcher, block: VAddr) -> Vec<VAddr> {
        let mut out = Vec::new();
        p.observe(SiteId::ANON, block, &mut out);
        out
    }

    /// Walk a chain of arbitrary (non-strided) blocks once.
    fn train(p: &mut PointerChasePrefetcher, chain: &[VAddr]) {
        for &b in chain {
            obs(p, b);
        }
    }

    #[test]
    fn first_traversal_trains_second_chases() {
        let mut p = pc();
        let chain = [0x1_0000, 0x9_0c0, 0x44_0040, 0x2_0080];
        for &b in &chain {
            assert!(obs(&mut p, b).is_empty(), "untrained chase must be empty");
        }
        // Revisit the head: the whole learned chain comes back, up to depth.
        let out = obs(&mut p, chain[0]);
        assert_eq!(out, vec![chain[1], chain[2], chain[3]]);
    }

    #[test]
    fn chase_stops_at_depth_budget() {
        let mut p = PointerChasePrefetcher::new(64, 2);
        let chain = [0x40, 0x1040, 0x2040, 0x3040, 0x4040];
        train(&mut p, &chain);
        let out = obs(&mut p, chain[0]);
        assert_eq!(out.len(), 2, "depth 2 chases two edges");
        assert_eq!(out, vec![chain[1], chain[2]]);
    }

    #[test]
    fn mid_chain_trigger_chases_the_suffix() {
        let mut p = pc();
        let chain = [0x40, 0x1040, 0x2040, 0x3040];
        train(&mut p, &chain);
        let out = obs(&mut p, chain[1]);
        // Observing chain[1] first learns nothing new (edge 3040->1040
        // replaces nothing relevant) and chases 2040, 3040 ... then the
        // freshly-learned wrap edge 3040->1040 ends at the dedup guard.
        assert!(out.starts_with(&[chain[2], chain[3]]), "{out:?}");
    }

    #[test]
    fn relearned_edge_replaces_old_successor() {
        let mut p = pc();
        train(&mut p, &[0x40, 0x1040]);
        train(&mut p, &[0x40, 0x2040]);
        let out = obs(&mut p, 0x40);
        assert_eq!(out[0], 0x2040, "newest successor wins");
    }

    #[test]
    fn self_edges_are_not_learned() {
        let mut p = pc();
        obs(&mut p, 0x40);
        obs(&mut p, 0x40);
        assert!(obs(&mut p, 0x40).is_empty(), "no self-loop chase");
    }

    #[test]
    fn cycle_chase_terminates_with_dedup() {
        let mut p = PointerChasePrefetcher::new(64, 8);
        train(&mut p, &[0x40, 0x1040, 0x40, 0x1040]);
        let out = obs(&mut p, 0x40);
        assert!(out.len() < 8, "cycle must not exhaust the depth budget");
        assert!(!out.contains(&0x40), "the trigger block is never emitted");
    }

    #[test]
    fn observe_appends_without_clearing() {
        let mut p = pc();
        train(&mut p, &[0x40, 0x1040]);
        let mut out = vec![7];
        p.observe(SiteId::ANON, 0x40, &mut out);
        assert_eq!(out, vec![7, 0x1040], "caller owns the buffer contents");
    }

    #[test]
    fn reset_forgets_edges() {
        let mut p = pc();
        train(&mut p, &[0x40, 0x1040, 0x2040]);
        p.reset();
        assert!(obs(&mut p, 0x40).is_empty(), "must retrain after reset");
    }
}
