//! Perceptron-gated stride prefetcher.
//!
//! A classic stride core (site-indexed, two-confirmation — the same
//! detector as DPL) proposes candidates, but every candidate must pass
//! a **perceptron gate** before issue. The gate sums small signed
//! weights selected by a feature vector of the proposing context:
//!
//! * the reference **site** (hashed) — which load is asking,
//! * the prefetcher's **recent accuracy** (bucketed fraction of its
//!   last 32 gated candidates that were demanded) — how well it has
//!   been doing,
//! * the candidate's **set-pressure bucket** (how many recent issues
//!   already landed in the candidate's cache-set neighbourhood) — how
//!   crowded the target is.
//!
//! Candidates are issued iff the weight sum is non-negative; with
//! zeroed weights the gate starts open (optimistic) and learns to
//! close only where history says prefetches die. Feedback is
//! self-supervised through a small pending ring: a later demand on a
//! pending block trains its features up; falling off the ring unused
//! trains them down. This is the standard perceptron-filter design of
//! perceptron-based prefetch filtering (PPF), shrunk to trace scale.

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

/// Weight-table rows per feature (power of two).
const WEIGHT_ROWS: usize = 64;
/// Saturation bound for the signed weights.
const WEIGHT_CLAMP: i32 = 32;
/// Outcome-history window (bits of the accuracy shift register).
const HISTORY_BITS: u32 = 32;

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    site: SiteId,
    last_addr: VAddr,
    stride: i64,
    conf: u32,
    stamp: u64,
    valid: bool,
}

/// A gated candidate awaiting its outcome.
#[derive(Debug, Clone, Copy)]
struct Pending {
    block: VAddr,
    features: [usize; 3],
    /// Set once a demand access touches `block` (positive outcome).
    used: bool,
    valid: bool,
}

/// Stride proposer + perceptron issue gate.
#[derive(Debug, Clone)]
pub struct PerceptronPrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
    line_size: u64,
    clock: u64,
    /// One weight row set per feature: `[site, accuracy, pressure]`.
    weights: [[i32; WEIGHT_ROWS]; 3],
    /// Ring of gated-and-issued candidates awaiting feedback.
    pending: Vec<Pending>,
    pending_head: usize,
    /// Shift register of resolved outcomes (1 = the proposal was
    /// demanded before eviction from the ring).
    history: u64,
    /// Count of recent issues per set-neighbourhood bucket, decayed by
    /// halving periodically so pressure reflects the recent window.
    set_issues: [u32; WEIGHT_ROWS],
    /// Issues since the last pressure decay.
    since_decay: u32,
}

impl PerceptronPrefetcher {
    /// A prefetcher with `entries` stride slots and `pending` feedback
    /// ring slots, proposing `degree` strides ahead per trigger.
    pub fn new(entries: usize, pending: usize, degree: u32, line_size: u64) -> Self {
        assert!(entries > 0 && pending > 0 && degree > 0);
        assert!(line_size.is_power_of_two());
        PerceptronPrefetcher {
            table: vec![
                StrideEntry {
                    site: SiteId::ANON,
                    last_addr: 0,
                    stride: 0,
                    conf: 0,
                    stamp: 0,
                    valid: false
                };
                entries
            ],
            degree,
            line_size,
            clock: 0,
            weights: [[0; WEIGHT_ROWS]; 3],
            pending: vec![
                Pending {
                    block: 0,
                    features: [0; 3],
                    used: false,
                    valid: false
                };
                pending
            ],
            pending_head: 0,
            history: 0,
            set_issues: [0; WEIGHT_ROWS],
            since_decay: 0,
        }
    }

    /// The fraction of recent stride proposals that were demanded.
    pub fn recent_accuracy(&self) -> f64 {
        self.history.count_ones() as f64 / HISTORY_BITS as f64
    }

    fn site_feature(site: SiteId) -> usize {
        ((site.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (WEIGHT_ROWS - 1)
    }

    fn pressure_bucket(&self, block: VAddr) -> usize {
        ((block / self.line_size) as usize) & (WEIGHT_ROWS - 1)
    }

    fn features(&self, site: SiteId, block: VAddr) -> [usize; 3] {
        let acc = self.history.count_ones() as usize * (WEIGHT_ROWS - 1) / HISTORY_BITS as usize;
        let bucket = self.pressure_bucket(block);
        // Map the raw issue count into a coarse pressure level so one
        // weight row serves "calm" vs "crowded", not every exact count.
        let pressure = (self.set_issues[bucket].min(WEIGHT_ROWS as u32 - 1)) as usize;
        [Self::site_feature(site), acc, pressure]
    }

    fn gate_sum(&self, f: &[usize; 3]) -> i32 {
        self.weights[0][f[0]] + self.weights[1][f[1]] + self.weights[2][f[2]]
    }

    fn train(&mut self, f: &[usize; 3], up: bool) {
        for (table, &row) in self.weights.iter_mut().zip(f.iter()) {
            let w = &mut table[row];
            *w = (*w + if up { 1 } else { -1 }).clamp(-WEIGHT_CLAMP, WEIGHT_CLAMP);
        }
        // Keep exactly HISTORY_BITS of outcome history: without the mask
        // the shift accumulates ones past the window and the accuracy
        // feature indexes off the end of the weight rows.
        self.history = ((self.history << 1) | u64::from(up)) & ((1 << HISTORY_BITS) - 1);
    }

    /// Retire the ring slot at `idx` if valid, training on its outcome.
    fn retire(&mut self, idx: usize) {
        if !self.pending[idx].valid {
            return;
        }
        let p = self.pending[idx];
        self.pending[idx].valid = false;
        self.train(&p.features, p.used);
    }

    /// Record a demand touch: any pending candidate on `block` becomes
    /// a positive outcome.
    fn note_demand(&mut self, block: VAddr) {
        for p in &mut self.pending {
            if p.valid && !p.used && p.block == block {
                p.used = true;
            }
        }
    }

    /// Gate one stride candidate. Every candidate — issued or rejected —
    /// enters the feedback ring, and training judges the *proposal* (was
    /// the block demanded soon after?), not the issue decision. That is
    /// what lets a closed gate reopen: rejected candidates that keep
    /// getting demanded train their features back up.
    fn gate(&mut self, site: SiteId, block: VAddr, out: &mut Vec<VAddr>, start: usize) {
        if out[start..].contains(&block) {
            return;
        }
        let f = self.features(site, block);
        let issue = self.gate_sum(&f) >= 0;
        let idx = self.pending_head;
        self.pending_head = (self.pending_head + 1) % self.pending.len();
        self.retire(idx);
        self.pending[idx] = Pending {
            block,
            features: f,
            used: false,
            valid: true,
        };
        if !issue {
            return;
        }
        let bucket = self.pressure_bucket(block);
        self.set_issues[bucket] = self.set_issues[bucket].saturating_add(1);
        self.since_decay += 1;
        if self.since_decay >= 2 * WEIGHT_ROWS as u32 {
            self.since_decay = 0;
            for c in &mut self.set_issues {
                *c >>= 1;
            }
        }
        out.push(block);
    }
}

impl HwPrefetcher for PerceptronPrefetcher {
    fn observe(&mut self, site: SiteId, addr: VAddr, out: &mut Vec<VAddr>) {
        let block = addr & !(self.line_size - 1);
        self.note_demand(block);
        if site == SiteId::ANON {
            // Anonymous references carry no IP to index on.
            return;
        }
        self.clock += 1;
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        let mut fire: Option<(VAddr, i64)> = None;
        for (i, e) in self.table.iter_mut().enumerate() {
            if !e.valid {
                if victim_key != 0 {
                    victim = i;
                    victim_key = 0;
                }
                continue;
            }
            if e.site == site {
                let delta = addr as i64 - e.last_addr as i64;
                if delta == 0 {
                    e.stamp = self.clock;
                    return;
                }
                if delta == e.stride {
                    e.conf = e.conf.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.conf = 0;
                }
                e.last_addr = addr;
                e.stamp = self.clock;
                if e.conf >= 1 {
                    fire = Some((e.last_addr, e.stride));
                }
                break;
            }
            if e.stamp < victim_key {
                victim = i;
                victim_key = e.stamp;
            }
        }
        if let Some((base, stride)) = fire {
            let start = out.len();
            for d in 1..=self.degree as i64 {
                let target = base as i64 + stride * d;
                if target < 0 {
                    break;
                }
                let cand = target as u64 & !(self.line_size - 1);
                self.gate(site, cand, out, start);
            }
            return;
        }
        // `fire` is None either because the site's entry exists but is
        // unconfirmed (handled by the `break` above leaving fire unset
        // only pre-confirmation) — or because no entry matched at all.
        if !self.table.iter().any(|e| e.valid && e.site == site) {
            self.table[victim] = StrideEntry {
                site,
                last_addr: addr,
                stride: 0,
                conf: 0,
                stamp: self.clock,
                valid: true,
            };
        }
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            e.valid = false;
        }
        for p in &mut self.pending {
            p.valid = false;
        }
        self.clock = 0;
        self.weights = [[0; WEIGHT_ROWS]; 3];
        self.pending_head = 0;
        self.history = 0;
        self.set_issues = [0; WEIGHT_ROWS];
        self.since_decay = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp() -> PerceptronPrefetcher {
        PerceptronPrefetcher::new(8, 16, 2, 64)
    }

    fn obs(p: &mut PerceptronPrefetcher, site: SiteId, addr: VAddr) -> Vec<VAddr> {
        let mut out = Vec::new();
        p.observe(site, addr, &mut out);
        out
    }

    #[test]
    fn gate_starts_open_on_confirmed_stride() {
        let mut p = pp();
        let s = SiteId(1);
        assert!(obs(&mut p, s, 0).is_empty()); // allocate
        assert!(obs(&mut p, s, 256).is_empty()); // learn stride (conf 0)
        let out = obs(&mut p, s, 512); // confirm -> gate (weights 0) passes
        assert_eq!(out, vec![768, 1024]);
    }

    #[test]
    fn demanded_candidates_count_as_positive_outcomes() {
        let mut p = pp();
        let s = SiteId(2);
        obs(&mut p, s, 0);
        obs(&mut p, s, 256);
        obs(&mut p, s, 512); // issues 768, 1024
        assert_eq!(p.recent_accuracy(), 0.0, "no outcome resolved yet");
        obs(&mut p, s, 768); // demand on a pending candidate
                             // Push enough candidates through the ring to retire the used one.
        for i in 1..=16u64 {
            obs(&mut p, SiteId(100 + i as u32), i * 0x10_000);
            obs(&mut p, SiteId(100 + i as u32), i * 0x10_000 + 512);
            obs(&mut p, SiteId(100 + i as u32), i * 0x10_000 + 1024);
        }
        assert!(
            p.recent_accuracy() > 0.0,
            "the demanded candidate must train up"
        );
    }

    /// Confirm a stride, fire once, then jump away so the candidate is
    /// never demanded — the always-wrong pattern for one site. Returns
    /// whether the confirmed access actually issued anything.
    fn dead_triple(p: &mut PerceptronPrefetcher, s: SiteId, base: VAddr) -> bool {
        obs(p, s, base);
        obs(p, s, base + 256);
        !obs(p, s, base + 512).is_empty()
    }

    #[test]
    fn repeated_dead_prefetches_close_the_gate() {
        let mut p = PerceptronPrefetcher::new(8, 2, 1, 64);
        let s = SiteId(3);
        // Every triple confirms a stride, proposes one candidate, and
        // jumps away; each ring eviction trains the features down until
        // the gate closes on this site.
        let mut closed = false;
        for t in 0..60u64 {
            if !dead_triple(&mut p, s, t * 0x100_000) && t > 2 {
                closed = true;
                break;
            }
        }
        assert!(closed, "an always-wrong site must eventually be gated off");
    }

    #[test]
    fn gate_reopens_after_good_outcomes() {
        let mut p = PerceptronPrefetcher::new(8, 2, 1, 64);
        let s = SiteId(4);
        // Close the gate with dead triples.
        for t in 0..60u64 {
            dead_triple(&mut p, s, t * 0x100_000);
        }
        // A long steady stride stream demands each proposal on the very
        // next access: rejected proposals resolve positive, weights
        // recover, and the gate reopens.
        let mut reopened = false;
        let mut addr = 0x4000_0000u64;
        for _ in 0..300 {
            if !obs(&mut p, s, addr).is_empty() {
                reopened = true;
                break;
            }
            addr += 256;
        }
        assert!(reopened, "positive outcomes must reopen the gate");
    }

    #[test]
    fn anonymous_site_is_ignored() {
        let mut p = pp();
        for i in 0..10u64 {
            assert!(obs(&mut p, SiteId::ANON, i * 64).is_empty());
        }
    }

    #[test]
    fn observe_appends_without_clearing() {
        let mut p = pp();
        let s = SiteId(5);
        obs(&mut p, s, 0);
        obs(&mut p, s, 256);
        let mut out = vec![7];
        p.observe(s, 512, &mut out);
        assert_eq!(out, vec![7, 768, 1024], "caller owns the buffer contents");
    }

    #[test]
    fn sub_line_strides_dedup_blocks() {
        let mut p = pp();
        let s = SiteId(6);
        obs(&mut p, s, 0);
        obs(&mut p, s, 16);
        let out = obs(&mut p, s, 32);
        assert_eq!(out, vec![0, 64], "same-block candidates deduped");
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = pp();
        let s = SiteId(7);
        obs(&mut p, s, 0);
        obs(&mut p, s, 256);
        assert!(!obs(&mut p, s, 512).is_empty());
        p.reset();
        obs(&mut p, s, 768);
        assert!(obs(&mut p, s, 1024).is_empty(), "must retrain after reset");
        assert_eq!(p.recent_accuracy(), 0.0);
    }
}
