//! Sequential ("streaming") prefetcher.

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Block index (address / line size) of the last access in the stream.
    last: u64,
    /// Detected direction: +1, -1, or 0 (undetermined).
    dir: i64,
    /// Consecutive confirmations of `dir`.
    conf: u32,
    /// For LRU slot replacement.
    stamp: u64,
    valid: bool,
}

/// A multi-slot sequential prefetcher.
///
/// Each slot tracks a stream of consecutive cache blocks (ascending or
/// descending). Once a stream is confirmed (two consecutive accesses in
/// the same direction), every further confirmation prefetches the next
/// `degree` blocks ahead.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    slots: Vec<Stream>,
    line_size: u64,
    degree: u32,
    clock: u64,
}

impl StreamPrefetcher {
    /// A prefetcher with `slots` concurrent streams, prefetching `degree`
    /// blocks ahead on each confirmation.
    pub fn new(slots: usize, degree: u32, line_size: u64) -> Self {
        assert!(slots > 0 && degree > 0);
        assert!(line_size.is_power_of_two());
        StreamPrefetcher {
            slots: vec![
                Stream {
                    last: 0,
                    dir: 0,
                    conf: 0,
                    stamp: 0,
                    valid: false
                };
                slots
            ],
            line_size,
            degree,
            clock: 0,
        }
    }

    fn emit(&self, blk: u64, dir: i64) -> Vec<VAddr> {
        (1..=self.degree as i64)
            .filter_map(|d| {
                let target = blk as i64 + dir * d;
                (target >= 0).then(|| target as u64 * self.line_size)
            })
            .collect()
    }
}

impl HwPrefetcher for StreamPrefetcher {
    fn observe(&mut self, _site: SiteId, block: VAddr) -> Vec<VAddr> {
        let blk = block / self.line_size;
        self.clock += 1;
        // Look for a slot this access extends (distance exactly one block).
        for s in self.slots.iter_mut().filter(|s| s.valid) {
            let delta = blk as i64 - s.last as i64;
            if delta == 0 {
                s.stamp = self.clock;
                return Vec::new(); // same block re-access: no new info
            }
            if delta == 1 || delta == -1 {
                if s.dir == delta {
                    s.conf = s.conf.saturating_add(1);
                } else {
                    s.dir = delta;
                    s.conf = 1;
                }
                s.last = blk;
                s.stamp = self.clock;
                if s.conf >= 1 {
                    let (last, dir) = (s.last, s.dir);
                    return self.emit(last, dir);
                }
                return Vec::new();
            }
        }
        // No matching stream: allocate the LRU (or first invalid) slot.
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|s| if s.valid { s.stamp } else { 0 })
            .expect("at least one slot");
        *slot = Stream {
            last: blk,
            dir: 0,
            conf: 0,
            stamp: self.clock,
            valid: true,
        };
        Vec::new()
    }

    fn reset(&mut self) {
        for s in &mut self.slots {
            s.valid = false;
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> StreamPrefetcher {
        StreamPrefetcher::new(4, 2, 64)
    }

    #[test]
    fn second_sequential_access_triggers_prefetch() {
        let mut p = sp();
        assert!(
            p.observe(SiteId::ANON, 0).is_empty(),
            "first access only trains"
        );
        let out = p.observe(SiteId::ANON, 64);
        assert_eq!(out, vec![128, 192], "prefetch the next `degree` blocks");
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = sp();
        p.observe(SiteId::ANON, 640);
        let out = p.observe(SiteId::ANON, 576);
        assert_eq!(out, vec![512, 448]);
    }

    #[test]
    fn descending_stream_clamps_at_zero() {
        let mut p = sp();
        p.observe(SiteId::ANON, 128);
        let out = p.observe(SiteId::ANON, 64);
        assert_eq!(out, vec![0], "block -1 must not be emitted");
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut p = sp();
        for &b in &[0u64, 4096, 64 * 100, 64 * 7, 64 * 55] {
            assert!(p.observe(SiteId::ANON, b).is_empty());
        }
    }

    #[test]
    fn repeat_access_is_ignored() {
        let mut p = sp();
        p.observe(SiteId::ANON, 0);
        p.observe(SiteId::ANON, 64); // stream confirmed
        assert!(p.observe(SiteId::ANON, 64).is_empty());
        // Stream continues afterwards.
        assert_eq!(p.observe(SiteId::ANON, 128), vec![192, 256]);
    }

    #[test]
    fn tracks_multiple_interleaved_streams() {
        let mut p = sp();
        p.observe(SiteId::ANON, 0);
        p.observe(SiteId::ANON, 1 << 20);
        assert_eq!(p.observe(SiteId::ANON, 64), vec![128, 192]);
        assert_eq!(
            p.observe(SiteId::ANON, (1 << 20) + 64),
            vec![(1 << 20) + 128, (1 << 20) + 192]
        );
    }

    #[test]
    fn direction_reversal_retrains() {
        let mut p = sp();
        p.observe(SiteId::ANON, 0);
        p.observe(SiteId::ANON, 64); // dir +1 confirmed
                                     // Reversal: 64 -> 0 is delta -1; retrain but confidence resets to 1
                                     // so it still fires (conf >= 1), in the new direction.
        let out = p.observe(SiteId::ANON, 0);
        assert_eq!(out, vec![]); // block -1 clamped away entirely? No: emit(0,-1) -> empty
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = sp();
        p.observe(SiteId::ANON, 0);
        p.reset();
        assert!(
            p.observe(SiteId::ANON, 64).is_empty(),
            "must retrain after reset"
        );
    }
}
