//! Sequential ("streaming") prefetcher.

use super::HwPrefetcher;
use sp_trace::{SiteId, VAddr};

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Block index (address / line size) of the last access in the stream.
    last: u64,
    /// Detected direction: +1, -1, or 0 (undetermined).
    dir: i64,
    /// Consecutive confirmations of `dir`.
    conf: u32,
    /// For LRU slot replacement.
    stamp: u64,
    valid: bool,
}

/// A multi-slot sequential prefetcher.
///
/// Each slot tracks a stream of consecutive cache blocks (ascending or
/// descending). Once a stream is confirmed (two consecutive accesses in
/// the same direction), every further confirmation prefetches the next
/// `degree` blocks ahead.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    slots: Vec<Stream>,
    line_size: u64,
    degree: u32,
    clock: u64,
}

impl StreamPrefetcher {
    /// A prefetcher with `slots` concurrent streams, prefetching `degree`
    /// blocks ahead on each confirmation.
    pub fn new(slots: usize, degree: u32, line_size: u64) -> Self {
        assert!(slots > 0 && degree > 0);
        assert!(line_size.is_power_of_two());
        StreamPrefetcher {
            slots: vec![
                Stream {
                    last: 0,
                    dir: 0,
                    conf: 0,
                    stamp: 0,
                    valid: false
                };
                slots
            ],
            line_size,
            degree,
            clock: 0,
        }
    }

    fn emit(&self, blk: u64, dir: i64, out: &mut Vec<VAddr>) {
        for d in 1..=self.degree as i64 {
            let target = blk as i64 + dir * d;
            if target >= 0 {
                out.push(target as u64 * self.line_size);
            }
        }
    }
}

impl HwPrefetcher for StreamPrefetcher {
    fn observe(&mut self, _site: SiteId, block: VAddr, out: &mut Vec<VAddr>) {
        let blk = block / self.line_size;
        self.clock += 1;
        // One pass: look for a slot this access extends (distance exactly
        // one block), tracking the allocation victim — first invalid slot,
        // else least-recently-touched — along the way. Valid stamps are
        // always >= 1, so key 0 marks "found an invalid slot".
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !s.valid {
                if victim_key != 0 {
                    victim = i;
                    victim_key = 0;
                }
                continue;
            }
            let delta = blk as i64 - s.last as i64;
            if delta == 0 {
                s.stamp = self.clock;
                return; // same block re-access: no new info
            }
            if delta == 1 || delta == -1 {
                if s.dir == delta {
                    s.conf = s.conf.saturating_add(1);
                } else {
                    s.dir = delta;
                    s.conf = 1;
                }
                s.last = blk;
                s.stamp = self.clock;
                let (last, dir) = (s.last, s.dir);
                self.emit(last, dir, out);
                return;
            }
            if s.stamp < victim_key {
                victim = i;
                victim_key = s.stamp;
            }
        }
        // No matching stream: allocate over the victim.
        self.slots[victim] = Stream {
            last: blk,
            dir: 0,
            conf: 0,
            stamp: self.clock,
            valid: true,
        };
    }

    fn reset(&mut self) {
        for s in &mut self.slots {
            s.valid = false;
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> StreamPrefetcher {
        StreamPrefetcher::new(4, 2, 64)
    }

    fn obs(p: &mut StreamPrefetcher, block: VAddr) -> Vec<VAddr> {
        let mut out = Vec::new();
        p.observe(SiteId::ANON, block, &mut out);
        out
    }

    #[test]
    fn second_sequential_access_triggers_prefetch() {
        let mut p = sp();
        assert!(obs(&mut p, 0).is_empty(), "first access only trains");
        let out = obs(&mut p, 64);
        assert_eq!(out, vec![128, 192], "prefetch the next `degree` blocks");
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = sp();
        obs(&mut p, 640);
        let out = obs(&mut p, 576);
        assert_eq!(out, vec![512, 448]);
    }

    #[test]
    fn descending_stream_clamps_at_zero() {
        let mut p = sp();
        obs(&mut p, 128);
        let out = obs(&mut p, 64);
        assert_eq!(out, vec![0], "block -1 must not be emitted");
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut p = sp();
        for &b in &[0u64, 4096, 64 * 100, 64 * 7, 64 * 55] {
            assert!(obs(&mut p, b).is_empty());
        }
    }

    #[test]
    fn repeat_access_is_ignored() {
        let mut p = sp();
        obs(&mut p, 0);
        obs(&mut p, 64); // stream confirmed
        assert!(obs(&mut p, 64).is_empty());
        // Stream continues afterwards.
        assert_eq!(obs(&mut p, 128), vec![192, 256]);
    }

    #[test]
    fn tracks_multiple_interleaved_streams() {
        let mut p = sp();
        obs(&mut p, 0);
        obs(&mut p, 1 << 20);
        assert_eq!(obs(&mut p, 64), vec![128, 192]);
        assert_eq!(
            obs(&mut p, (1 << 20) + 64),
            vec![(1 << 20) + 128, (1 << 20) + 192]
        );
    }

    #[test]
    fn direction_reversal_retrains() {
        let mut p = sp();
        obs(&mut p, 0);
        obs(&mut p, 64); // dir +1 confirmed
                         // Reversal: 64 -> 0 is delta -1; retrain but confidence resets to 1
                         // so it still fires (conf >= 1), in the new direction.
        let out = obs(&mut p, 0);
        assert_eq!(out, vec![]); // block -1 clamped away entirely? No: emit(0,-1) -> empty
    }

    #[test]
    fn observe_appends_without_clearing() {
        let mut p = sp();
        let mut out = vec![7];
        p.observe(SiteId::ANON, 0, &mut out);
        p.observe(SiteId::ANON, 64, &mut out);
        assert_eq!(out, vec![7, 128, 192], "caller owns the buffer contents");
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = sp();
        obs(&mut p, 0);
        p.reset();
        assert!(obs(&mut p, 64).is_empty(), "must retrain after reset");
    }
}
