//! Replacement policies.
//!
//! The Core 2's caches are (pseudo-)LRU; the paper's Set Affinity bound
//! implicitly assumes LRU-like behaviour ("the cached data in this
//! specific set will be replaced by new reference when the program
//! executes N iterations"). LRU is therefore the default; FIFO, Random,
//! and tree-PLRU are provided for the `ablation_replacement` bench, which
//! checks how sensitive the pollution result is to the policy.

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// True least-recently-used (default).
    #[default]
    Lru,
    /// First-in-first-out (fill order, ignores hits).
    Fifo,
    /// Uniform random victim, deterministic from the given seed.
    Random {
        /// Seed for the xorshift generator (must be non-zero).
        seed: u64,
    },
    /// Binary-tree pseudo-LRU (what real L2s approximate).
    PlruTree,
}

/// Per-cache replacement-policy state: recency/fill order per set.
///
/// The engine is deliberately self-contained — it tracks its own order
/// structures keyed by `(set, way)` and never inspects line contents —
/// so it can be unit-tested in isolation from the cache.
///
/// LRU/FIFO order is kept as one flat recency **stamp** per line (larger
/// = more recent) instead of per-set order lists: promoting a way is a
/// single store, and only the (much rarer) victim choice scans the set.
/// Stamps start in descending way order, so an untouched set evicts its
/// highest way first — exactly the order an explicit `[0, 1, .., w-1]`
/// most-to-least-recent list yields.
///
/// For a lane-batched cache ([`new_batch`](Self::new_batch)) the `set`
/// argument of every method is the caller's *row* index
/// `set * lanes + lane`: stamp and PLRU state are naturally per-row, and
/// only `Policy::Random` needs to know the lane geometry — its xorshift
/// state is per-lane, so each lane draws the same victim sequence it
/// would draw running alone. The shared stamp clock is lane-safe: stamps
/// are only ever *compared* within one row, and interleaving lanes
/// preserves each lane's relative stamp order.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    policy: Policy,
    ways: usize,
    /// Lane count of the owning cache (1 for a scalar cache).
    lanes: usize,
    /// For LRU/FIFO: per-(set, way) recency stamp, flat `set * ways + way`.
    stamps: Vec<u64>,
    /// Monotonic counter behind the stamps; strictly increasing, so no
    /// two lines ever tie.
    clock: u64,
    /// For tree-PLRU: per-set direction bits.
    plru: Vec<u64>,
    /// Xorshift state for `Policy::Random`, one stream per lane.
    rng: Vec<u64>,
}

impl PolicyEngine {
    /// Create the engine for a cache with `sets` sets of `ways` ways.
    pub fn new(policy: Policy, sets: usize, ways: usize) -> Self {
        Self::new_batch(policy, sets, ways, 1)
    }

    /// [`new`](Self::new) for a lane-batched cache: state for
    /// `sets * lanes` rows, with an independent random stream per lane.
    pub fn new_batch(policy: Policy, sets: usize, ways: usize, lanes: usize) -> Self {
        assert!(ways > 0 && ways <= 255, "ways must fit in u8");
        assert!(lanes > 0, "need at least one lane");
        if matches!(policy, Policy::PlruTree) {
            assert!(
                ways.is_power_of_two(),
                "tree-PLRU requires power-of-two ways"
            );
        }
        let rows = sets * lanes;
        let stamps = match policy {
            Policy::Lru | Policy::Fifo => Self::pristine_stamps(rows, ways),
            _ => Vec::new(),
        };
        let seed = match policy {
            Policy::Random { seed } => {
                assert!(seed != 0, "xorshift seed must be non-zero");
                seed
            }
            _ => 1,
        };
        PolicyEngine {
            policy,
            ways,
            lanes,
            stamps,
            clock: ways as u64,
            plru: vec![0; rows],
            rng: vec![seed; lanes],
        }
    }

    fn pristine_stamps(sets: usize, ways: usize) -> Vec<u64> {
        let mut stamps = vec![0; sets * ways];
        for set in 0..sets {
            for w in 0..ways {
                stamps[set * ways + w] = (ways - 1 - w) as u64;
            }
        }
        stamps
    }

    /// Restore the freshly-constructed state without reallocating the
    /// stamp array.
    pub fn reset(&mut self) {
        let ways = self.ways;
        for (i, s) in self.stamps.iter_mut().enumerate() {
            *s = (ways - 1 - i % ways) as u64;
        }
        self.clock = ways as u64;
        self.plru.fill(0);
        let seed = match self.policy {
            Policy::Random { seed } => seed,
            _ => 1,
        };
        self.rng.fill(seed);
    }

    /// Record a demand hit on `(set, way)`.
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize) {
        match self.policy {
            Policy::Lru => self.move_to_front(set, way),
            Policy::Fifo | Policy::Random { .. } => {}
            Policy::PlruTree => self.plru_touch(set, way),
        }
    }

    /// Record a fill into `(set, way)`.
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize) {
        match self.policy {
            Policy::Lru | Policy::Fifo => self.move_to_front(set, way),
            Policy::Random { .. } => {}
            Policy::PlruTree => self.plru_touch(set, way),
        }
    }

    /// Choose the victim way for a fill into a full `set`.
    pub fn victim(&mut self, set: usize) -> usize {
        match self.policy {
            Policy::Lru | Policy::Fifo => {
                let base = set * self.ways;
                let stamps = &self.stamps[base..base + self.ways];
                let mut victim = 0;
                for (w, &s) in stamps.iter().enumerate() {
                    if s < stamps[victim] {
                        victim = w;
                    }
                }
                victim
            }
            Policy::Random { .. } => {
                // xorshift64, one independent stream per lane so a
                // batched lane replays the scalar victim sequence.
                let lane = set % self.lanes;
                let mut x = self.rng[lane];
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng[lane] = x;
                (x % self.ways as u64) as usize
            }
            Policy::PlruTree => self.plru_victim(set),
        }
    }

    #[inline]
    fn move_to_front(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    /// Walk the PLRU tree towards `way`, flipping each internal node to
    /// point *away* from the taken direction.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let mut node = 0usize; // tree nodes in heap order, 0-based
        let mut lo = 0usize;
        let mut hi = self.ways;
        let bits = &mut self.plru[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                *bits |= 1 << node; // point to the right (away)
                node = 2 * node + 1;
                hi = mid;
            } else {
                *bits &= !(1 << node); // point to the left (away)
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Follow the PLRU direction bits to the pseudo-LRU way.
    fn plru_victim(&self, set: usize) -> usize {
        let bits = self.plru[set];
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                node = 2 * node + 2; // bit set: victim on the right
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut e = PolicyEngine::new(Policy::Lru, 1, 4);
        for w in 0..4 {
            e.on_fill(0, w);
        }
        // Recency now 3,2,1,0 (most..least). Touch 0 -> LRU is 1.
        e.on_hit(0, 0);
        assert_eq!(e.victim(0), 1);
        e.on_hit(0, 1);
        assert_eq!(e.victim(0), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut e = PolicyEngine::new(Policy::Fifo, 1, 4);
        for w in 0..4 {
            e.on_fill(0, w);
        }
        e.on_hit(0, 0); // FIFO must not promote on hit
        assert_eq!(e.victim(0), 0);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = PolicyEngine::new(Policy::Random { seed: 9 }, 1, 8);
        let mut b = PolicyEngine::new(Policy::Random { seed: 9 }, 1, 8);
        let va: Vec<usize> = (0..32).map(|_| a.victim(0)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.victim(0)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().all(|&w| w < 8));
        // Not constant (would indicate a broken generator).
        assert!(va.iter().any(|&w| w != va[0]));
    }

    #[test]
    fn plru_victim_avoids_recently_touched_way() {
        let mut e = PolicyEngine::new(Policy::PlruTree, 1, 4);
        e.on_fill(0, 2);
        // Victim must not be the way just touched.
        assert_ne!(e.victim(0), 2);
        e.on_fill(0, 0);
        assert_ne!(e.victim(0), 0);
    }

    #[test]
    fn plru_cycles_through_all_ways_under_round_robin_touches() {
        // Touch the victim each time: over `ways` rounds every way must be
        // chosen at least once (PLRU's fairness property).
        let ways = 8;
        let mut e = PolicyEngine::new(Policy::PlruTree, 1, ways);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..ways * 2 {
            let v = e.victim(0);
            seen.insert(v);
            e.on_fill(0, v);
        }
        assert_eq!(seen.len(), ways);
    }

    #[test]
    fn per_set_state_is_independent() {
        let mut e = PolicyEngine::new(Policy::Lru, 2, 2);
        e.on_fill(0, 0);
        e.on_fill(0, 1);
        e.on_fill(1, 1);
        e.on_fill(1, 0);
        assert_eq!(e.victim(0), 0);
        assert_eq!(e.victim(1), 1);
    }

    #[test]
    fn reset_matches_fresh_engine() {
        for policy in [
            Policy::Lru,
            Policy::Fifo,
            Policy::Random { seed: 9 },
            Policy::PlruTree,
        ] {
            let mut used = PolicyEngine::new(policy, 2, 4);
            for w in [3, 1, 2, 0] {
                used.on_fill(0, w);
                used.on_hit(1, w);
                let _ = used.victim(0);
            }
            used.reset();
            let mut fresh = PolicyEngine::new(policy, 2, 4);
            for set in 0..2 {
                assert_eq!(used.victim(set), fresh.victim(set), "{policy:?}");
            }
        }
    }

    #[test]
    fn batched_random_lanes_replay_the_scalar_stream() {
        // Row index = set * lanes + lane. Interleaving victim draws
        // across lanes must give each lane exactly the sequence a
        // scalar engine draws alone.
        let lanes = 3;
        let mut batched = PolicyEngine::new_batch(Policy::Random { seed: 9 }, 2, 8, lanes);
        let mut scalars: Vec<_> = (0..lanes)
            .map(|_| PolicyEngine::new(Policy::Random { seed: 9 }, 2, 8))
            .collect();
        for draw in 0..16 {
            let set = draw % 2;
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    batched.victim(set * lanes + lane),
                    scalar.victim(set),
                    "draw {draw} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn batched_lru_rows_are_independent() {
        let lanes = 2;
        let mut e = PolicyEngine::new_batch(Policy::Lru, 1, 2, lanes);
        // Lane 0: touch way 0 -> victim 1. Lane 1: touch way 1 -> victim 0.
        e.on_fill(0, 0);
        e.on_fill(0, 1);
        e.on_hit(0, 0);
        e.on_fill(1, 1);
        e.on_fill(1, 0);
        e.on_hit(1, 1);
        assert_eq!(e.victim(0), 1);
        assert_eq!(e.victim(1), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_pow2_ways() {
        let _ = PolicyEngine::new(Policy::PlruTree, 1, 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn random_rejects_zero_seed() {
        let _ = PolicyEngine::new(Policy::Random { seed: 0 }, 1, 4);
    }
}
