//! Access entities, hit classification, and simulation statistics.

use crate::clock::Cycle;

/// Who issued a memory request.
///
/// The paper (§III.B) counts "at least six data access entities" once
/// helper-threaded prefetching is enabled: the main thread, the helper
/// thread, two streaming prefetchers and two DPL prefetchers (one pair
/// per core). This enum is that taxonomy plus the two extension
/// backends ([`crate::config::HwBackend`]): per-core pointer-chase and
/// perceptron-gated prefetchers. At most one backend's entities appear
/// in any single run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// The main computation thread.
    Main,
    /// The helper (prefetching) thread.
    Helper,
    /// The hardware streaming prefetcher of the given core.
    HwStream(u8),
    /// The hardware DPL (stride) prefetcher of the given core.
    HwDpl(u8),
    /// The pointer-chase (content-directed) prefetcher of the given core.
    HwPchase(u8),
    /// The perceptron-gated stride prefetcher of the given core.
    HwPerceptron(u8),
}

impl Entity {
    /// `true` for every entity that brings data in *speculatively*
    /// (helper-thread software prefetches and hardware prefetchers).
    pub fn is_prefetcher(self) -> bool {
        !matches!(self, Entity::Main)
    }

    /// `true` for the hardware prefetchers.
    pub fn is_hw(self) -> bool {
        matches!(
            self,
            Entity::HwStream(_) | Entity::HwDpl(_) | Entity::HwPchase(_) | Entity::HwPerceptron(_)
        )
    }
}

/// Classification of one L2-reaching demand access, matching the paper's
/// measurement notation (§V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitClass {
    /// Satisfied by the private L1 (never reaches the L2; not part of the
    /// paper's L2 counters but reported for completeness).
    L1Hit,
    /// "Totally cache hit": the demanded data is held in the L2.
    TotalHit,
    /// "Partially cache hit": the demanded data arrives in cache after its
    /// memory request was issued but before it is serviced (MSHR hit on an
    /// in-flight fill) — a *late* prefetch that still hides part of the
    /// latency.
    PartialHit,
    /// "Totally cache miss": the access pays the full memory latency.
    TotalMiss,
}

/// Counters for one thread's demand accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Demand accesses satisfied in the private L1.
    pub l1_hits: u64,
    /// Totally L2 cache hits.
    pub total_hits: u64,
    /// Partially L2 cache hits (in-flight MSHR hits).
    pub partial_hits: u64,
    /// Totally L2 cache misses.
    pub total_misses: u64,
    /// Cycles this thread spent stalled on memory.
    pub stall_cycles: Cycle,
}

impl ThreadStats {
    /// Demand accesses that reached the L2 (did not hit in L1).
    pub fn l2_accesses(&self) -> u64 {
        self.total_hits + self.partial_hits + self.total_misses
    }

    /// The paper's "memory accesses": demand accesses the L2 could not
    /// satisfy at issue time (totally misses + partially hits).
    pub fn memory_accesses(&self) -> u64 {
        self.total_misses + self.partial_hits
    }

    /// All demand accesses, including L1 hits.
    pub fn demand_accesses(&self) -> u64 {
        self.l1_hits + self.l2_accesses()
    }
}

/// The paper's three cache-pollution displacement cases (§II.C), counted
/// at the shared L2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollutionStats {
    /// Case 1: a prefetched block displaced data that the main thread
    /// later re-missed on (detected lazily at the re-miss).
    pub reuse_evictions: u64,
    /// Case 2: a prefetched block displaced a helper-prefetched block
    /// that had not yet been used.
    pub unused_helper_evictions: u64,
    /// Case 3: a prefetched block displaced a hardware-prefetched block
    /// that had not yet been used.
    pub unused_hw_evictions: u64,
    /// Prefetched lines evicted without ever being demanded (wasted
    /// bandwidth, regardless of who evicted them).
    pub dead_prefetches: u64,
}

impl PollutionStats {
    /// Total pollution events across the three cases.
    pub fn total(&self) -> u64 {
        self.reuse_evictions + self.unused_helper_evictions + self.unused_hw_evictions
    }
}

/// Full simulation statistics for a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Main-thread demand counters.
    pub main: ThreadStats,
    /// Helper-thread demand counters (its loads, not its prefetches).
    pub helper: ThreadStats,
    /// Prefetches issued, per entity class:
    /// `[helper, stream, dpl, pchase, perceptron]`.
    pub prefetches_issued: [u64; 5],
    /// Prefetched L2 lines that were later demanded (useful prefetches),
    /// per entity class: `[helper, stream, dpl, pchase, perceptron]`.
    pub prefetches_useful: [u64; 5],
    /// L2 fills performed (demand + prefetch).
    pub l2_fills: u64,
    /// L2 fills broken down by filler:
    /// `[main, helper, stream, dpl, pchase, perceptron]`.
    pub l2_fills_by: [u64; 6],
    /// L2 evictions of valid lines.
    pub l2_evictions: u64,
    /// Dirty L2 lines written back to memory (each occupies the bus).
    pub writebacks: u64,
    /// Dirty L1 victims whose block was no longer in the L2
    /// (non-inclusive hierarchy): written back directly to memory.
    pub l1_writeback_misses: u64,
    /// Pollution accounting.
    pub pollution: PollutionStats,
    /// Cycles the shared bus spent busy.
    pub bus_busy_cycles: Cycle,
    /// Requests that found the bus busy and queued.
    pub bus_queued: u64,
}

/// Index into the per-entity prefetch arrays of [`MemStats`].
pub fn prefetch_class(e: Entity) -> Option<usize> {
    match e {
        Entity::Main => None,
        Entity::Helper => Some(0),
        Entity::HwStream(_) => Some(1),
        Entity::HwDpl(_) => Some(2),
        Entity::HwPchase(_) => Some(3),
        Entity::HwPerceptron(_) => Some(4),
    }
}

impl MemStats {
    /// Useful-prefetch ratio for an entity class (0.0 if none issued).
    pub fn prefetch_accuracy(&self, class: usize) -> f64 {
        if self.prefetches_issued[class] == 0 {
            0.0
        } else {
            self.prefetches_useful[class] as f64 / self.prefetches_issued[class] as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_taxonomy() {
        assert!(!Entity::Main.is_prefetcher());
        assert!(Entity::Helper.is_prefetcher());
        assert!(Entity::HwStream(0).is_prefetcher());
        assert!(Entity::HwDpl(1).is_hw());
        assert!(Entity::HwPchase(0).is_hw());
        assert!(Entity::HwPerceptron(1).is_hw());
        assert!(!Entity::Helper.is_hw());
    }

    #[test]
    fn thread_stats_sums() {
        let s = ThreadStats {
            l1_hits: 10,
            total_hits: 5,
            partial_hits: 3,
            total_misses: 2,
            stall_cycles: 0,
        };
        assert_eq!(s.l2_accesses(), 10);
        assert_eq!(s.memory_accesses(), 5);
        assert_eq!(s.demand_accesses(), 20);
    }

    #[test]
    fn pollution_total_sums_three_cases() {
        let p = PollutionStats {
            reuse_evictions: 1,
            unused_helper_evictions: 2,
            unused_hw_evictions: 3,
            dead_prefetches: 99,
        };
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn prefetch_class_mapping() {
        assert_eq!(prefetch_class(Entity::Main), None);
        assert_eq!(prefetch_class(Entity::Helper), Some(0));
        assert_eq!(prefetch_class(Entity::HwStream(1)), Some(1));
        assert_eq!(prefetch_class(Entity::HwDpl(0)), Some(2));
        assert_eq!(prefetch_class(Entity::HwPchase(1)), Some(3));
        assert_eq!(prefetch_class(Entity::HwPerceptron(0)), Some(4));
    }

    #[test]
    fn prefetch_accuracy_handles_zero() {
        let mut m = MemStats::default();
        assert_eq!(m.prefetch_accuracy(0), 0.0);
        m.prefetches_issued[0] = 4;
        m.prefetches_useful[0] = 1;
        assert!((m.prefetch_accuracy(0) - 0.25).abs() < 1e-12);
    }
}
