//! Differential tests for the SoA cache overhaul.
//!
//! `ReferenceCache` below is the legacy scalar implementation — AoS
//! `Vec<Line>` storage, probe-then-re-index double lookups, and
//! order-list LRU/FIFO — kept verbatim as an executable specification.
//! The tests drive it and the production [`SetAssocCache`] with identical
//! operation streams (seeded synthetic mixes and the EM3D/MCF/MST
//! test-scale traces) and demand bit-identical outcomes at every step,
//! plus bit-identical [`MemStats`] between the scalar and precompiled
//! `MemorySystem` entry points.

use sp_cachesim::cache::{Evicted, Line};
use sp_cachesim::{
    CacheConfig, CacheGeometry, Entity, HwBackend, MemStats, MemorySystem, Policy, SetAssocCache,
};
use sp_trace::{MemRef, VAddr};
use sp_workloads::{Benchmark, KernelKind, ScaleTier, Workload, WorkloadBuilder};

/// The pre-overhaul cache: one `Line` struct per way, linear probe over
/// structs, separate order-list replacement state.
struct ReferenceCache {
    geo: CacheGeometry,
    lines: Vec<Line>,
    /// Per-set way order, front = most recent (LRU) / last filled first
    /// out (FIFO ignores hits).
    order: Vec<Vec<u8>>,
    fifo: bool,
}

impl ReferenceCache {
    fn new(geo: CacheGeometry, policy: Policy) -> Self {
        let fifo = match policy {
            Policy::Lru => false,
            Policy::Fifo => true,
            _ => panic!("reference model covers LRU and FIFO"),
        };
        ReferenceCache {
            geo,
            lines: vec![
                Line {
                    valid: false,
                    tag: 0,
                    filler: Entity::Main,
                    prefetched: false,
                    used_since_fill: false,
                    dirty: false,
                };
                geo.lines() as usize
            ],
            order: vec![(0..geo.ways as u8).collect(); geo.sets() as usize],
            fifo,
        }
    }

    fn idx(&self, set: u64, way: usize) -> usize {
        set as usize * self.geo.ways as usize + way
    }

    fn probe(&self, addr: VAddr) -> Option<usize> {
        let set = self.geo.set_of(addr);
        let tag = self.geo.tag_of(addr);
        (0..self.geo.ways as usize).find(|&w| {
            let l = &self.lines[self.idx(set, w)];
            l.valid && l.tag == tag
        })
    }

    fn move_to_front(&mut self, set: u64, way: usize) {
        let order = &mut self.order[set as usize];
        let pos = order.iter().position(|&w| w as usize == way).unwrap();
        let w = order.remove(pos);
        order.insert(0, w);
    }

    fn touch(&mut self, addr: VAddr, is_store: bool, mark_used: bool) -> Option<Line> {
        let way = self.probe(addr)?;
        let set = self.geo.set_of(addr);
        let idx = self.idx(set, way);
        let before = self.lines[idx];
        if mark_used {
            self.lines[idx].used_since_fill = true;
        }
        if is_store {
            self.lines[idx].dirty = true;
        }
        if !self.fifo {
            self.move_to_front(set, way);
        }
        Some(before)
    }

    fn fill(&mut self, addr: VAddr, filler: Entity, prefetched: bool) -> Option<Evicted> {
        let set = self.geo.set_of(addr);
        let tag = self.geo.tag_of(addr);
        if let Some(way) = self.probe(addr) {
            self.move_to_front(set, way);
            return None;
        }
        let way = (0..self.geo.ways as usize)
            .find(|&w| !self.lines[self.idx(set, w)].valid)
            .unwrap_or_else(|| *self.order[set as usize].last().unwrap() as usize);
        let idx = self.idx(set, way);
        let old = self.lines[idx];
        let evicted = old.valid.then(|| Evicted {
            block: self.geo.block_from(set, old.tag),
            filler: old.filler,
            prefetched: old.prefetched,
            used_since_fill: old.used_since_fill,
            dirty: old.dirty,
        });
        self.lines[idx] = Line {
            valid: true,
            tag,
            filler,
            prefetched,
            used_since_fill: !prefetched,
            dirty: false,
        };
        self.move_to_front(set, way);
        evicted
    }

    fn promote(&mut self, addr: VAddr) -> bool {
        match self.probe(addr) {
            Some(way) => {
                let set = self.geo.set_of(addr);
                self.move_to_front(set, way);
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, addr: VAddr) -> bool {
        match self.probe(addr) {
            Some(way) => {
                let set = self.geo.set_of(addr);
                let idx = self.idx(set, way);
                self.lines[idx].valid = false;
                true
            }
            None => false,
        }
    }

    fn set_blocks(&self, set: u64) -> Vec<VAddr> {
        (0..self.geo.ways as usize)
            .filter_map(|w| {
                let l = &self.lines[self.idx(set, w)];
                l.valid.then(|| self.geo.block_from(set, l.tag))
            })
            .collect()
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Drive both caches with an identical mixed operation stream and demand
/// identical outcomes at every single step, then identical final state.
fn differential_ops(geo: CacheGeometry, policy: Policy, seed: u64, ops: usize) {
    let mut new = SetAssocCache::new(geo, policy);
    let mut reference = ReferenceCache::new(geo, policy);
    let mut rng = seed;
    let fillers = [
        Entity::Main,
        Entity::Helper,
        Entity::HwStream(0),
        Entity::HwDpl(1),
        Entity::HwPchase(0),
        Entity::HwPerceptron(1),
    ];
    for step in 0..ops {
        let r = xorshift(&mut rng);
        // Small address universe so sets conflict and evict constantly.
        let addr = (r >> 8) % (geo.size_bytes * 4);
        match r % 5 {
            0 | 1 => {
                let is_store = r & 0x40 != 0;
                let mark_used = r & 0x80 != 0;
                assert_eq!(
                    new.touch(addr, is_store, mark_used),
                    reference.touch(addr, is_store, mark_used),
                    "touch diverged at step {step}"
                );
            }
            2 | 3 => {
                let filler = fillers[(r as usize >> 16) % fillers.len()];
                let prefetched = r & 0x100 != 0;
                assert_eq!(
                    new.fill(addr, filler, prefetched),
                    reference.fill(addr, filler, prefetched),
                    "fill diverged at step {step}"
                );
            }
            _ => {
                if r & 0x200 != 0 {
                    let set = new.geometry().set_of(addr) as u32;
                    let tag = new.geometry().tag_of(addr);
                    assert_eq!(
                        new.promote(set, tag),
                        reference.promote(addr),
                        "promote diverged at step {step}"
                    );
                } else {
                    assert_eq!(
                        new.invalidate(addr),
                        reference.invalidate(addr),
                        "invalidate diverged at step {step}"
                    );
                }
            }
        }
    }
    for set in 0..geo.sets() {
        assert_eq!(
            new.set_blocks(set),
            reference.set_blocks(set),
            "final contents diverged in set {set}"
        );
    }
}

#[test]
fn synthetic_streams_match_reference_lru() {
    for seed in [1, 0xdead_beef, 0x1234_5678_9abc_def0] {
        differential_ops(CacheGeometry::new(4096, 8, 64), Policy::Lru, seed, 20_000);
    }
}

#[test]
fn synthetic_streams_match_reference_fifo() {
    for seed in [7, 0xfeed_f00d] {
        differential_ops(CacheGeometry::new(2048, 4, 64), Policy::Fifo, seed, 20_000);
    }
}

#[test]
fn narrow_and_wide_geometries_match_reference() {
    // Direct-mapped-ish and very wide sets exercise the tag-scan edges.
    differential_ops(CacheGeometry::new(512, 1, 64), Policy::Lru, 3, 10_000);
    differential_ops(CacheGeometry::new(8192, 16, 64), Policy::Lru, 5, 10_000);
}

/// Replay a benchmark trace through both caches as an L2-style
/// touch-else-fill loop.
fn differential_trace(b: Benchmark) {
    let geo = CacheGeometry::new(256 * 1024, 16, 64);
    let mut new = SetAssocCache::new(geo, Policy::Lru);
    let mut reference = ReferenceCache::new(geo, Policy::Lru);
    let trace = Workload::tiny(b).trace();
    let (mut hits, mut evictions) = (0u64, 0u64);
    for (_, r) in trace.tagged_refs() {
        let touched = new.demand_touch(r.vaddr, false);
        assert_eq!(touched, reference.touch(r.vaddr, false, true), "{b:?}");
        if touched.is_some() {
            hits += 1;
        } else {
            let ev = new.fill(r.vaddr, Entity::Main, false);
            assert_eq!(ev, reference.fill(r.vaddr, Entity::Main, false), "{b:?}");
            evictions += u64::from(ev.is_some());
        }
    }
    assert!(hits > 0, "{b:?} trace should produce hits");
    for set in 0..geo.sets() {
        assert_eq!(new.set_blocks(set), reference.set_blocks(set), "{b:?}");
    }
    let _ = evictions;
}

#[test]
fn em3d_trace_matches_reference() {
    differential_trace(Benchmark::Em3d);
}

#[test]
fn mcf_trace_matches_reference() {
    differential_trace(Benchmark::Mcf);
}

#[test]
fn mst_trace_matches_reference() {
    differential_trace(Benchmark::Mst);
}

/// The scalar entry points (`demand_access`, which projects on the fly)
/// and the precompiled entry points (`demand_access_pre` over
/// [`MemorySystem::project`]ed records) must produce bit-identical
/// statistics — hit classes, per-entity fills, and all three pollution
/// counters — over the real workload traces.
fn scalar_vs_precompiled_cfg(cfg: CacheConfig, refs: &[MemRef], label: &str) -> MemStats {
    let mut scalar = MemorySystem::new(cfg);
    let mut t = 0u64;
    for r in refs {
        t = scalar.demand_access(Entity::Main, *r, t).complete_at;
    }

    let mut pre = MemorySystem::new(cfg);
    let compiled: Vec<_> = refs.iter().map(|r| pre.project(*r)).collect();
    let mut t = 0u64;
    for cr in &compiled {
        t = pre.demand_access_pre(Entity::Main, cr, t).complete_at;
    }

    let (s, p) = (scalar.finish(), pre.finish());
    assert_eq!(s, p, "{label}: scalar and precompiled stats diverged");
    s
}

fn trace_refs(trace: &sp_trace::HotLoopTrace) -> Vec<MemRef> {
    trace.tagged_refs().map(|(_, r)| *r).collect()
}

fn scalar_vs_precompiled(b: Benchmark) -> MemStats {
    let refs = trace_refs(&Workload::tiny(b).trace());
    scalar_vs_precompiled_cfg(CacheConfig::scaled_default(), &refs, &format!("{b:?}"))
}

#[test]
fn workload_stats_scalar_equals_precompiled() {
    for b in [Benchmark::Em3d, Benchmark::Mcf, Benchmark::Mst] {
        let stats = scalar_vs_precompiled(b);
        assert!(stats.main.total_misses > 0, "{b:?} should miss");
    }
}

/// Every hardware backend over every LDS trace: the scalar and
/// precompiled entry points must stay bit-identical when the new
/// pointer-chase and perceptron prefetchers are the ones injecting
/// fills, and each backend's fill attribution must land in its own
/// `l2_fills_by` slot.
#[test]
fn lds_backend_stats_scalar_equals_precompiled() {
    // Activity and fill attribution for the new backends, aggregated
    // across the LDS kernels: one kernel may legitimately stay quiet in
    // this main-thread-only harness (per-kernel activity under the full
    // engine is pinned by the root lds_smoke suite), but across the
    // frontier each backend must issue and land fills in its own entity
    // slot (HwPchase = 4, HwPerceptron = 5).
    let (mut pchase, mut perceptron) = ((0u64, 0u64), (0u64, 0u64));
    // A deliberately small hierarchy: the tiny LDS footprints must
    // overflow the L2 so revisits actually miss and prefetches fill.
    let small = CacheConfig {
        l1: CacheGeometry::new(1024, 4, 64),
        l2: CacheGeometry::new(16 * 1024, 8, 64),
        ..CacheConfig::scaled_default()
    };
    for kind in KernelKind::LDS {
        let refs = trace_refs(&WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace());
        for backend in HwBackend::ALL {
            let cfg = small.with_hw_backend(backend);
            let label = format!("{} under {}", kind.name(), backend.name());
            let stats = scalar_vs_precompiled_cfg(cfg, &refs, &label);
            assert!(stats.main.total_misses > 0, "{label}: should miss");
            match backend {
                HwBackend::PointerChase => {
                    pchase.0 += stats.prefetches_issued[3];
                    pchase.1 += stats.l2_fills_by[4];
                }
                HwBackend::Perceptron => {
                    perceptron.0 += stats.prefetches_issued[4];
                    perceptron.1 += stats.l2_fills_by[5];
                }
                _ => {}
            }
        }
    }
    assert!(pchase.0 > 0, "pchase silent on every LDS kernel");
    assert!(pchase.1 > 0, "no pchase fills on any LDS kernel");
    assert!(perceptron.0 > 0, "perceptron silent on every LDS kernel");
    assert!(perceptron.1 > 0, "no perceptron fills on any LDS kernel");
}

/// `reset()` must restore a state indistinguishable from a fresh build:
/// run A, then B, then reset and re-run A — the two A runs must agree
/// bit-for-bit.
#[test]
fn reset_roundtrip_is_identity() {
    let cfg = CacheConfig::scaled_default();
    let run = |mem: &mut MemorySystem, b: Benchmark| -> MemStats {
        let mut t = 0u64;
        for (_, r) in Workload::tiny(b).trace().tagged_refs() {
            t = mem.demand_access(Entity::Main, *r, t).complete_at;
        }
        let stats = mem.finish_stats();
        mem.reset();
        stats
    };
    let mut mem = MemorySystem::new(cfg);
    let first = run(&mut mem, Benchmark::Em3d);
    let _other = run(&mut mem, Benchmark::Mcf);
    let again = run(&mut mem, Benchmark::Em3d);
    assert_eq!(first, again, "reset must erase all cross-run state");
}

/// The same identity must hold when the learned-state backends are
/// active: pointer-chase successor edges and perceptron weights carry
/// history across a run, and `reset()` must wipe all of it.
#[test]
fn reset_roundtrip_clears_learned_backend_state() {
    for backend in [HwBackend::PointerChase, HwBackend::Perceptron] {
        let cfg = CacheConfig::scaled_default().with_hw_backend(backend);
        let run = |mem: &mut MemorySystem, kind: KernelKind| -> MemStats {
            let mut t = 0u64;
            let trace = WorkloadBuilder::new(kind).tier(ScaleTier::Tiny).trace();
            for (_, r) in trace.tagged_refs() {
                t = mem.demand_access(Entity::Main, *r, t).complete_at;
            }
            let stats = mem.finish_stats();
            mem.reset();
            stats
        };
        let mut mem = MemorySystem::new(cfg);
        let first = run(&mut mem, KernelKind::HashJoin);
        let _other = run(&mut mem, KernelKind::Bfs);
        let again = run(&mut mem, KernelKind::HashJoin);
        assert_eq!(
            first,
            again,
            "{}: reset left learned prefetcher state behind",
            backend.name()
        );
    }
}
