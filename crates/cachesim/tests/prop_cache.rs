//! Property tests: set-associative cache, geometry, and MSHR invariants.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only).

use sp_cachesim::mshr::InFlight;
use sp_cachesim::{CacheGeometry, Entity, MshrFile, Policy, SetAssocCache};
use sp_testkit::{check, gen_vec, SmallRng};

fn small_geo() -> CacheGeometry {
    CacheGeometry::new(4 * 1024, 4, 64) // 16 sets x 4 ways
}

/// Occupancy of any set never exceeds the associativity, and total
/// occupancy never exceeds the line count, for arbitrary mixes of
/// fills, touches, and invalidations.
#[test]
fn occupancy_bounded() {
    check(64, |rng| {
        let ops = gen_vec(rng, 1..400, |r| {
            (r.gen_range(0u32..3), r.gen_range(0u64..(1 << 18)))
        });
        let geo = small_geo();
        let mut c = SetAssocCache::new(geo, Policy::Lru);
        for (op, addr) in ops {
            match op {
                0 => {
                    c.fill(addr, Entity::Main, false);
                }
                1 => {
                    c.demand_touch(addr, false);
                }
                _ => {
                    c.invalidate(addr);
                }
            }
            assert!(c.total_occupancy() as u64 <= geo.lines());
        }
        for set in 0..geo.sets() {
            assert!(c.occupancy(set) <= geo.ways as usize);
        }
    });
}

/// A fill makes the block resident; a hit implies a prior fill.
#[test]
fn fill_then_contains() {
    check(64, |rng| {
        let addrs = gen_vec(rng, 1..200, |r| r.gen_range(0u64..(1 << 18)));
        let mut c = SetAssocCache::new(small_geo(), Policy::Lru);
        let mut filled = std::collections::HashSet::new();
        for a in addrs {
            let block = small_geo().block_of(a);
            if c.demand_touch(a, false).is_some() {
                // Hit: must have been filled at some point earlier.
                assert!(filled.contains(&block), "hit on never-filled {block:#x}");
            } else {
                c.fill(a, Entity::Main, false);
                filled.insert(block);
                assert!(c.contains(a), "fill must make the block resident");
            }
        }
    });
}

/// Under LRU, the most recently touched block of a set survives the
/// next fill into that set.
#[test]
fn lru_mru_survives_one_fill() {
    check(64, |rng| {
        let tags = gen_vec(rng, 5..60, |r| r.gen_range(0u64..32));
        let geo = small_geo();
        let mut c = SetAssocCache::new(geo, Policy::Lru);
        let addr_of = |tag: u64| geo.block_from(3, tag); // everything in set 3
        let mut last: Option<u64> = None;
        let mut fresh = 32u64;
        for tag in tags {
            let a = addr_of(tag);
            if c.demand_touch(a, false).is_none() {
                c.fill(a, Entity::Main, false);
            }
            if let Some(prev) = last {
                // A new, conflicting fill must never evict the block we
                // just touched... unless it *is* that block.
                fresh += 1;
                c.fill(addr_of(fresh), Entity::Main, false);
                assert!(c.contains(addr_of(prev)) || prev == fresh);
            }
            last = Some(tag);
        }
    });
}

/// Eviction metadata always names a block that was resident and that
/// is no longer resident afterwards.
#[test]
fn eviction_reports_real_victims() {
    check(64, |rng| {
        let addrs = gen_vec(rng, 1..300, |r| r.gen_range(0u64..(1 << 16)));
        let geo = small_geo();
        let mut c = SetAssocCache::new(geo, Policy::Lru);
        for a in addrs {
            let before: Vec<u64> = c.set_blocks(geo.set_of(a));
            if let Some(ev) = c.fill(a, Entity::Helper, true) {
                assert!(
                    before.contains(&ev.block),
                    "victim {:#x} was not resident",
                    ev.block
                );
                assert!(!c.contains(ev.block), "victim still resident");
            }
        }
    });
}

/// Geometry roundtrip holds for arbitrary addresses and shapes.
#[test]
fn geometry_roundtrip() {
    check(256, |rng| {
        let addr = rng.gen_range(0u64..(1 << 40));
        let size = 1u64 << rng.gen_range(10u32..24);
        let ways = 1u32 << rng.gen_range(0u32..5);
        let line = 1u64 << rng.gen_range(5u32..8);
        if size / line < ways as u64 {
            return; // shape would have fewer lines than ways
        }
        let g = CacheGeometry::new(size, ways, line);
        let block = g.block_of(addr);
        assert_eq!(g.block_from(g.set_of(addr), g.tag_of(addr)), block);
        assert!(g.set_of(addr) < g.sets());
    });
}

/// The MSHR file conserves entries: everything allocated is drained
/// exactly once, in ready order.
#[test]
fn mshr_conserves_entries() {
    check(64, |rng| {
        let readies = gen_vec(rng, 1..40, |r| r.gen_range(1u64..1000));
        let mut m = MshrFile::new(64);
        let mut blocks = Vec::new();
        for (i, r) in readies.iter().enumerate() {
            let e = InFlight {
                block: (i as u64) * 64,
                ready_at: *r,
                requester: Entity::Main,
                prefetch: false,
                store: false,
            };
            m.allocate(e).unwrap();
            blocks.push(e.block);
        }
        let drained = m.drain_ready(u64::MAX);
        assert!(m.is_empty());
        assert_eq!(drained.len(), blocks.len());
        // Ready order.
        for w in drained.windows(2) {
            assert!(w[0].ready_at <= w[1].ready_at);
        }
        let mut got: Vec<u64> = drained.iter().map(|e| e.block).collect();
        got.sort_unstable();
        blocks.sort_unstable();
        assert_eq!(got, blocks);
    });
}

/// Partial drains never return entries that are not yet ready, and
/// never lose the rest.
#[test]
fn mshr_partial_drain() {
    check(64, |rng| {
        let readies = gen_vec(rng, 1..40, |r| r.gen_range(1u64..1000));
        let cut = rng.gen_range(1u64..1000);
        let mut m = MshrFile::new(64);
        for (i, r) in readies.iter().enumerate() {
            m.allocate(InFlight {
                block: (i as u64) * 64,
                ready_at: *r,
                requester: Entity::Helper,
                prefetch: true,
                store: false,
            })
            .unwrap();
        }
        let early = m.drain_ready(cut);
        assert!(early.iter().all(|e| e.ready_at <= cut));
        let late = m.drain_ready(u64::MAX);
        assert!(late.iter().all(|e| e.ready_at > cut));
        assert_eq!(early.len() + late.len(), readies.len());
    });
}

mod reference_model {
    use super::*;
    use std::collections::HashMap;

    /// An obviously-correct LRU cache: per-set recency lists, no way
    /// bookkeeping, no policy engine — a second, independent
    /// implementation to differentially test `SetAssocCache` against.
    struct RefLru {
        geo: CacheGeometry,
        sets: HashMap<u64, Vec<u64>>, // set -> blocks, MRU first
    }

    impl RefLru {
        fn new(geo: CacheGeometry) -> Self {
            RefLru {
                geo,
                sets: HashMap::new(),
            }
        }

        /// Returns `true` on hit; updates recency / fills on miss.
        fn access(&mut self, addr: u64) -> bool {
            let block = self.geo.block_of(addr);
            let set = self.sets.entry(self.geo.set_of(addr)).or_default();
            if let Some(pos) = set.iter().position(|&b| b == block) {
                set.remove(pos);
                set.insert(0, block);
                true
            } else {
                set.insert(0, block);
                set.truncate(self.geo.ways as usize);
                false
            }
        }
    }

    /// `SetAssocCache` with LRU behaves identically to the reference
    /// model on arbitrary demand streams (hit/miss per access AND
    /// final contents).
    #[test]
    fn lru_matches_reference_model() {
        check(64, |rng: &mut SmallRng| {
            let addrs = gen_vec(rng, 1..500, |r| r.gen_range(0u64..(1 << 16)));
            let geo = small_geo();
            let mut real = SetAssocCache::new(geo, Policy::Lru);
            let mut reference = RefLru::new(geo);
            for a in addrs {
                let real_hit = real.demand_touch(a, false).is_some();
                if !real_hit {
                    real.fill(a, Entity::Main, false);
                }
                let ref_hit = reference.access(a);
                assert_eq!(real_hit, ref_hit, "divergence at {a:#x}");
            }
            // Final contents agree set by set.
            for set in 0..geo.sets() {
                let mut a: Vec<u64> = real.set_blocks(set);
                let mut b: Vec<u64> = reference.sets.get(&set).cloned().unwrap_or_default();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "contents diverge in set {set}");
            }
        });
    }
}
