//! Property tests: whole-memory-system invariants under arbitrary
//! access interleavings.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only).

use sp_cachesim::{CacheConfig, CacheGeometry, Entity, HitClass, MemorySystem};
use sp_testkit::{check, gen_vec, SmallRng};
use sp_trace::MemRef;

fn tiny_cfg(hw: bool) -> CacheConfig {
    CacheConfig {
        cores: 2,
        l1: CacheGeometry::new(512, 2, 64),
        l2: CacheGeometry::new(4 * 1024, 4, 64),
        hw_prefetchers: hw,
        mshr_entries: 4,
        ..CacheConfig::scaled_default()
    }
}

/// An access script: (who, address, gap to next access).
fn script(rng: &mut SmallRng) -> Vec<(u8, u64, u64)> {
    gen_vec(rng, 1..250, |r| {
        (
            r.gen_range(0u32..3) as u8,
            r.gen_range(0u64..(1 << 14)),
            r.gen_range(0u64..64),
        )
    })
}

/// Hit classes partition demand accesses; stats never lose an access.
#[test]
fn classes_partition_accesses() {
    check(64, |rng| {
        let ops = script(rng);
        let hw = rng.gen_bool(0.5);
        let mut m = MemorySystem::new(tiny_cfg(hw));
        let mut t = 0u64;
        let (mut n_main, mut n_helper, mut n_pref) = (0u64, 0u64, 0u64);
        for (who, addr, gap) in ops {
            match who {
                0 => {
                    t = m
                        .demand_access(Entity::Main, MemRef::anon(addr), t)
                        .complete_at;
                    n_main += 1;
                }
                1 => {
                    t = m.helper_load(MemRef::anon(addr), t).complete_at;
                    n_helper += 1;
                    n_pref += 1;
                }
                _ => {
                    t = m
                        .prefetch_access(MemRef::anon(addr).as_prefetch(), t)
                        .complete_at;
                    n_pref += 1;
                }
            }
            t += gap;
        }
        let s = m.finish();
        assert_eq!(s.main.demand_accesses(), n_main);
        assert_eq!(s.helper.demand_accesses(), n_helper);
        assert_eq!(s.prefetches_issued[0], n_pref);
    });
}

/// Completion times never precede issue times, and demand misses pay
/// at least the unloaded memory latency.
#[test]
fn latency_lower_bounds() {
    check(64, |rng| {
        let ops = script(rng);
        let cfg = tiny_cfg(false);
        let mut m = MemorySystem::new(cfg);
        let mut t = 0u64;
        for (who, addr, gap) in ops {
            let r = match who {
                0 => m.demand_access(Entity::Main, MemRef::anon(addr), t),
                1 => m.helper_load(MemRef::anon(addr), t),
                _ => m.prefetch_access(MemRef::anon(addr).as_prefetch(), t),
            };
            assert!(r.complete_at >= t);
            if who == 0 && r.class == HitClass::TotalMiss {
                assert!(r.complete_at - t >= cfg.latency.full_miss());
            }
            if who == 0 && r.class == HitClass::L1Hit {
                assert_eq!(r.complete_at - t, cfg.latency.l1_hit);
            }
            t = r.complete_at + gap;
        }
    });
}

/// Identical scripts produce identical statistics (determinism).
#[test]
fn deterministic() {
    check(64, |rng| {
        let ops = script(rng);
        let hw = rng.gen_bool(0.5);
        let run = || {
            let mut m = MemorySystem::new(tiny_cfg(hw));
            let mut t = 0u64;
            for (who, addr, gap) in &ops {
                let r = match who {
                    0 => m.demand_access(Entity::Main, MemRef::anon(*addr), t),
                    1 => m.helper_load(MemRef::anon(*addr), t),
                    _ => m.prefetch_access(MemRef::anon(*addr).as_prefetch(), t),
                };
                t = r.complete_at + gap;
            }
            m.finish()
        };
        assert_eq!(run(), run());
    });
}

/// Useful prefetches never exceed issued prefetches, fills never
/// exceed what could have been requested, and pollution counters stay
/// consistent with the eviction count.
#[test]
fn counter_sanity() {
    check(64, |rng| {
        let ops = script(rng);
        let mut m = MemorySystem::new(tiny_cfg(true));
        let mut t = 0u64;
        for (who, addr, gap) in ops {
            let r = match who {
                0 => m.demand_access(Entity::Main, MemRef::anon(addr), t),
                1 => m.helper_load(MemRef::anon(addr), t),
                _ => m.prefetch_access(MemRef::anon(addr).as_prefetch(), t),
            };
            t = r.complete_at + gap;
        }
        let s = m.finish();
        for cls in 0..3 {
            assert!(
                s.prefetches_useful[cls] <= s.prefetches_issued[cls],
                "class {cls}: useful {} > issued {}",
                s.prefetches_useful[cls],
                s.prefetches_issued[cls]
            );
        }
        assert!(s.l2_evictions <= s.l2_fills);
        assert!(
            s.pollution.unused_helper_evictions + s.pollution.unused_hw_evictions
                <= s.pollution.dead_prefetches
        );
    });
}

/// Immediately re-demanding a just-missed block is never *worse*
/// than a partial hit (the fill is in flight or complete).
#[test]
fn refetch_is_at_least_partial() {
    check(64, |rng| {
        let addr = rng.gen_range(0u64..(1 << 14));
        let mut m = MemorySystem::new(tiny_cfg(false));
        let r1 = m.demand_access(Entity::Main, MemRef::anon(addr), 0);
        assert_eq!(r1.class, HitClass::TotalMiss);
        let r2 = m.demand_access(Entity::Main, MemRef::anon(addr), 1);
        assert!(matches!(r2.class, HitClass::PartialHit));
        assert!(
            r2.complete_at <= r1.complete_at + 64,
            "merged access cannot finish much later than the fill"
        );
    });
}
