//! Tiny hand-rolled flag parser (the workspace deliberately carries no
//! CLI dependency).

use sp_cachesim::{CacheConfig, CacheGeometry, HwBackend};
use sp_trace::HotLoopTrace;
use sp_workloads::{KernelKind, ScaleTier, WorkloadBuilder};

/// Flags that may appear without a value (`spt bench --smoke`,
/// `spt sweep --events`, `spt events --original`,
/// `spt top --once --json`).
const BOOLEAN_FLAGS: [&str; 5] = ["smoke", "events", "original", "once", "json"];

/// Parsed command line: subcommand, positional args, `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args`-style input (without the program name).
    pub fn parse(input: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut it = input.into_iter();
        let command = it.next().ok_or("missing subcommand")?;
        if command.starts_with('-') {
            return Err(format!("expected a subcommand, got flag {command}"));
        }
        let mut flags = Vec::new();
        let mut it = it.peekable();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a}"))?
                .to_string();
            // Boolean switches may stand alone; everything else is
            // strict `--key value`.
            if BOOLEAN_FLAGS.contains(&key.as_str())
                && it.peek().is_none_or(|next| next.starts_with("--"))
            {
                flags.push((key, "on".to_string()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.push((key, value));
        }
        Ok(Args { command, flags })
    }

    /// True when the boolean switch `--key` was given (bare or as
    /// `--key on`).
    pub fn switch(&self, key: &str) -> bool {
        matches!(self.get(key), Some("on") | Some("true") | Some("1"))
    }

    /// The raw value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse `--key` as `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// The `--bench` selection (default em3d): any workload-builder
    /// kernel, including the LDS extension kernels.
    pub fn kernel(&self) -> Result<KernelKind, String> {
        KernelKind::parse(self.get("bench").unwrap_or("em3d"))
    }

    /// Obtain the trace to analyze: `--trace FILE` replays a recorded
    /// trace; otherwise the `--bench`/`--size` workload is built fresh.
    pub fn trace(&self) -> Result<HotLoopTrace, String> {
        if let Some(path) = self.get("trace") {
            return sp_trace::load_trace(std::path::Path::new(path))
                .map_err(|e| format!("--trace {path}: {e}"));
        }
        let k = self.kernel()?;
        let tier = match self.get("size").unwrap_or("scaled") {
            "scaled" => ScaleTier::Scaled,
            "tiny" => ScaleTier::Tiny,
            other => return Err(format!("unknown size {other}; expected scaled|tiny")),
        };
        Ok(WorkloadBuilder::new(k).tier(tier).trace())
    }

    /// The cache configuration from `--l2-kb`, `--ways`, `--line`,
    /// `--prefetcher NAME`, `--hw-prefetch on|off` (defaults: the
    /// scaled preset).
    pub fn cache_config(&self) -> Result<CacheConfig, String> {
        let mut cfg = match self.get("cache").unwrap_or("scaled") {
            "scaled" => CacheConfig::scaled_default(),
            "core2" => CacheConfig::core2_q6600(),
            other => {
                return Err(format!(
                    "unknown cache preset {other}; expected scaled|core2"
                ))
            }
        };
        let l2_kb: u64 = self.get_or("l2-kb", cfg.l2.size_bytes / 1024)?;
        let ways: u32 = self.get_or("ways", cfg.l2.ways)?;
        let line: u64 = self.get_or("line", cfg.l2.line_size)?;
        cfg.l2 = CacheGeometry::new(l2_kb * 1024, ways, line);
        if let Some(pf) = self.get("prefetcher") {
            cfg.hw_backend = HwBackend::parse(pf)?;
        }
        match self.get("hw-prefetch") {
            None => {}
            Some("on") => cfg.hw_prefetchers = true,
            Some("off") => cfg.hw_prefetchers = false,
            Some(other) => return Err(format!("--hw-prefetch: expected on|off, got {other}")),
        }
        cfg.validate();
        Ok(cfg)
    }

    /// Comma-separated `--distances` list.
    pub fn distances(&self, default: &[u32]) -> Result<Vec<u32>, String> {
        match self.get("distances") {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|d| d.trim().parse().map_err(|_| format!("bad distance {d:?}")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = args("sweep --bench mcf --rp 0.5").unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.get("bench"), Some("mcf"));
        assert_eq!(a.get_or("rp", 0.0).unwrap(), 0.5);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn later_flags_override_earlier() {
        let a = args("x --k 1 --k 2").unwrap();
        assert_eq!(a.get("k"), Some("2"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(args("").is_err());
        assert!(args("--flag v").is_err());
        assert!(args("cmd --dangling").is_err());
        assert!(args("cmd positional").is_err());
    }

    #[test]
    fn boolean_switches_stand_alone() {
        let a = args("bench --smoke").unwrap();
        assert!(a.switch("smoke"));
        let a = args("bench --smoke --out f.json").unwrap();
        assert!(a.switch("smoke"));
        assert_eq!(a.get("out"), Some("f.json"));
        let a = args("bench --smoke off").unwrap();
        assert!(!a.switch("smoke"));
        assert!(!args("bench").unwrap().switch("smoke"));
        let a = args("sweep --events --jobs 2").unwrap();
        assert!(a.switch("events"));
        assert_eq!(a.get("jobs"), Some("2"));
    }

    #[test]
    fn kernel_mapping_covers_every_builder_kernel() {
        assert_eq!(
            args("x --bench mst").unwrap().kernel().unwrap(),
            KernelKind::Mst
        );
        assert_eq!(args("x").unwrap().kernel().unwrap(), KernelKind::Em3d);
        for k in KernelKind::ALL {
            let line = format!("x --bench {}", k.flag());
            assert_eq!(args(&line).unwrap().kernel().unwrap(), k);
        }
        let err = args("x --bench nope").unwrap().kernel().unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
    }

    #[test]
    fn cache_overrides_apply() {
        let a = args("x --l2-kb 64 --ways 8").unwrap();
        let c = a.cache_config().unwrap();
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert!(
            !args("x --hw-prefetch off")
                .unwrap()
                .cache_config()
                .unwrap()
                .hw_prefetchers
        );
    }

    #[test]
    fn prefetcher_selects_a_backend_and_rejects_unknowns() {
        let c = args("x").unwrap().cache_config().unwrap();
        assert_eq!(c.hw_backend, HwBackend::StreamerDpl);
        let c = args("x --prefetcher pointer-chase")
            .unwrap()
            .cache_config()
            .unwrap();
        assert_eq!(c.hw_backend, HwBackend::PointerChase);
        let err = args("x --prefetcher markov")
            .unwrap()
            .cache_config()
            .unwrap_err();
        assert!(err.contains("unknown prefetcher markov"), "{err}");
        for b in HwBackend::ALL {
            assert!(err.contains(b.name()), "{err} missing {}", b.name());
        }
    }

    #[test]
    fn distances_parse() {
        let a = args("x --distances 1,2,30").unwrap();
        assert_eq!(a.distances(&[9]).unwrap(), vec![1, 2, 30]);
        assert_eq!(args("x").unwrap().distances(&[9]).unwrap(), vec![9]);
        assert!(args("x --distances a").unwrap().distances(&[]).is_err());
    }
}
