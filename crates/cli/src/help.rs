//! Per-command `--help` pages. One page per subcommand; the snapshot
//! test (`tests/help_snapshot.rs`) pins every page plus the top-level
//! usage, so flag changes must update the fixture deliberately.

/// Every `spt` subcommand, in the order the top-level usage lists them.
pub const COMMANDS: [&str; 15] = [
    "affinity",
    "sweep",
    "delinquent",
    "phases",
    "reuse",
    "adaptive",
    "selection",
    "dump",
    "bench",
    "events",
    "trace",
    "report",
    "serve",
    "loadgen",
    "top",
];

const COMMON: &str = "\
COMMON FLAGS:
  --bench KERNEL             workload (default em3d); one of
                             em3d|mcf|mst|treeadd|health|matmul|
                             hashjoin|bfs|skiplist|btree
  --size scaled|tiny         input size (default scaled)
  --trace FILE               replay a trace recorded with `spt dump`
  --cache scaled|core2       geometry preset (default scaled)
  --l2-kb N                  L2 capacity override, KiB
  --ways N                   L2 associativity override
  --line N                   L2 line size override, bytes
  --hw-prefetch on|off       hardware prefetchers (default on)
  --prefetcher NAME          hardware-prefetcher backend (default
                             streamer+dpl): streamer+dpl|streamer|dpl|
                             pointer-chase|perceptron
";

/// The help page for `cmd`, or `None` if it is not a command.
pub fn command_help(cmd: &str) -> Option<String> {
    let (synopsis, body): (&str, &str) = match cmd {
        "affinity" => (
            "spt affinity [flags]",
            "Report the hot loop's Set Affinity — sets touched, overflowed\n\
             sets, the SA(L,Sx) range — and the derived prefetch-distance\n\
             bound (min SA / 2), plus the burst-sampled estimate.\n",
        ),
        "sweep" => (
            "spt sweep [flags]",
            "Sweep prefetch distance and print normalized runtime, hot\n\
             misses, behaviour deltas, and pollution per distance.\n\
             Distances past the Set-Affinity bound are marked with `!`.\n\
             \n\
             FLAGS:\n  \
             --rp R                   prefetch ratio (default 0.5)\n  \
             --distances d1,d2,...    grid (default brackets the bound)\n  \
             --jobs N                 fan out on N threads (0 = all cores;\n                           \
             output identical whatever N is)\n  \
             --lanes K                simulate K grid points per trace pass\n                           \
             (1..=64, default 1; counters and events\n                           \
             identical whatever K is)\n  \
             --events                 attach event sinks and also report\n                           \
             pollution cases and prefetch timeliness\n                           \
             per distance\n  \
             --svg FILE               also write an SVG chart\n",
        ),
        "delinquent" => (
            "spt delinquent [flags]",
            "Rank the hot loop's reference sites by L2 misses (the\n\
             delinquent-load screen used to pick prefetch targets).\n",
        ),
        "phases" => (
            "spt phases [flags]",
            "Detect access phases of the hot loop (refs/iteration and new\n\
             blocks/iteration per phase).\n",
        ),
        "reuse" => (
            "spt reuse [flags]",
            "LRU stack-distance histogram of the hot loop, and the miss\n\
             ratio the loop would see at each associativity.\n",
        ),
        "adaptive" => (
            "spt adaptive [flags]",
            "Run the FDP-style dynamic distance controller and print the\n\
             per-epoch feedback trail.\n\
             \n\
             FLAGS:\n  \
             --start D                initial distance (default 4x bound)\n  \
             --epoch N                iterations per epoch (default 128)\n  \
             --bounded on|off         clamp to the SA bound (default on)\n  \
             --rp R                   prefetch ratio (default 0.5)\n",
        ),
        "selection" => (
            "spt selection [flags]",
            "Screen candidate workloads by L2-miss cycle share and report\n\
             which pass the paper's selection threshold.\n\
             \n\
             FLAGS:\n  \
             --threshold F            minimum miss-cycle share (default 0.3)\n",
        ),
        "dump" => (
            "spt dump --out FILE [flags]",
            "Record a workload's hot-loop trace to FILE for later replay\n\
             with --trace.\n\
             \n\
             FLAGS:\n  \
             --out FILE               destination path (required)\n",
        ),
        "bench" => (
            "spt bench [flags]",
            "Run the pinned cachesim benchmark suite (synthetic set-hammer,\n\
             fig2 EM3D test-scale sweep, fig5 MCF test-scale sweep, LDS\n\
             backend sweep, batched lane-engine sweep, epoch-recorder\n\
             overhead sweep) and print median\n\
             ns/ref, refs/sec, wall time, and simulator builds per run.\n\
             One extra pass per suite runs with the span recorder on and\n\
             stores a per-stage wall-time breakdown; the timed\n\
             repetitions stay recording-disabled. The suite is the\n\
             repository's tracked baseline: `--out` writes\n\
             BENCH_cachesim.json (carrying the existing file's\n\
             measurement history forward as trajectory points),\n\
             `--check` compares refs/sec against the rolling median of\n\
             the baseline's recent trajectory points.\n\
             \n\
             FLAGS:\n  \
             --smoke                  fewer repetitions (same workloads)\n  \
             --runs N                 timed repetitions per suite\n                           \
             (default 9, or 3 with --smoke)\n  \
             --warmup N               untimed warmup runs per suite\n                           \
             (default 2)\n  \
             --out FILE               write BENCH_cachesim.json here\n  \
             --check FILE             fail on refs/sec regression vs FILE\n  \
             --tolerance F            allowed fraction (default 0.2)\n",
        ),
        "events" => (
            "spt events [flags]",
            "Replay one run with the prefetch-lifecycle event sink\n\
             attached and report the full observability picture: issued /\n\
             filled / first-use / evicted-unused counts per prefetch\n\
             class, first-use timeliness (late / on-time / early), the\n\
             paper's three pollution displacement cases, and per-set\n\
             pressure by fill-count quartile. The command self-checks\n\
             that the folded eviction events equal the simulator's\n\
             pollution counters exactly, and exits non-zero on mismatch.\n\
             \n\
             FLAGS:\n  \
             --distance D             prefetch distance (default: SA bound)\n  \
             --rp R                   prefetch ratio (default 0.5)\n  \
             --passes N               hot-loop passes (default 1)\n  \
             --original               original (no-helper) run instead of SP\n  \
             --out FILE               write the event stream as NDJSON\n  \
             --limit N                keep at most N events in the buffer\n                           \
             (0 = unbounded; the summary always\n                           \
             folds every event)\n",
        ),
        "trace" => (
            "spt trace --out FILE [flags]",
            "Run a distance sweep with the runtime span recorder enabled\n\
             and export the collected wall-clock spans as Chrome\n\
             trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or\n\
             chrome://tracing. Spans cover the whole pipeline — trace\n\
             load, compile, per-point simulate, event fold — nested under\n\
             one correlation ID, with worker threads on separate rows. A\n\
             per-stage wall-time table is printed on exit.\n\
             \n\
             FLAGS:\n  \
             --out FILE               Chrome trace JSON destination (required)\n  \
             --rp R                   prefetch ratio (default 0.5)\n  \
             --distances d1,d2,...    grid (default brackets the bound)\n  \
             --jobs N                 fan out on N threads (0 = all cores)\n",
        ),
        "report" => (
            "spt report [flags]",
            "Run an epoch-recorded distance sweep — the cache flight\n\
             recorder — and render the telemetry: every run is windowed\n\
             into fixed epochs of main-thread references carrying hit /\n\
             displacement / timeliness / set-pressure / MSHR series, and\n\
             the report shows *when* pollution happens, not just totals.\n\
             Emits a self-contained markdown report (per-distance unicode\n\
             sparklines, a distances-by-epochs displacement heatmap, the\n\
             SA/2 bound annotated) to --out or stdout, and the raw\n\
             per-window series as NDJSON to --ndjson. The series is\n\
             self-checked to fold exactly to the run counters; the\n\
             command exits non-zero on mismatch.\n\
             \n\
             FLAGS:\n  \
             --rp R                   prefetch ratio (default 0.5)\n  \
             --distances d1,d2,...    grid (default: the benchmark's\n                           \
             reproduction grid)\n  \
             --epoch-len N            window length in main-thread refs\n                           \
             (default 10000)\n  \
             --jobs N                 fan out on N threads (0 = all cores)\n  \
             --lanes K                simulate K grid points per trace pass\n                           \
             (1..=64, default 1; series identical\n                           \
             whatever K is)\n  \
             --out FILE               write the markdown report here\n                           \
             (default: print to stdout)\n  \
             --ndjson FILE            write the per-window series as NDJSON\n",
        ),
        "serve" => (
            "spt serve [flags]",
            "Run the sp-serve simulation daemon: accepts sweep / point /\n\
             affinity requests as newline-delimited JSON over TCP, answers\n\
             repeats from an LRU result cache, sheds load with `busy`\n\
             replies when the admission queue is full, and drains cleanly\n\
             on a shutdown request, SIGINT, or SIGTERM.\n\
             \n\
             FLAGS:\n  \
             --addr HOST:PORT         listen address (default 127.0.0.1:7077)\n  \
             --workers N              pool workers (default 0 = all cores)\n  \
             --queue N                admission-queue slots (default 64)\n  \
             --cache-entries N        result-cache entries (default 256)\n  \
             --shards N               result-cache shards (default 8)\n  \
             --timeout-ms N           default request deadline (default 30000)\n  \
             --slow-ms N              access-log lines for requests slower\n                           \
             than this escalate to warn (default 1000)\n\
             \n\
             LOGGING:\n  \
             SP_LOG=info enables the per-request access log on stderr;\n  \
             SP_LOG_FORMAT=ndjson switches it to structured NDJSON.\n",
        ),
        "loadgen" => (
            "spt loadgen [flags]",
            "Load generator: drive a seeded request mix against a running\n\
             daemon and print throughput, per-outcome counters (busy /\n\
             timeout / error replies are counted separately and never\n\
             mixed into latency), latency percentiles from the shared\n\
             log-linear histogram, and an order-independent result digest\n\
             (stable across runs with the same seed).\n\
             \n\
             Closed loop (default): each client waits for a reply before\n\
             the next send — queueing delay under overload is hidden\n\
             (coordinated omission). Open loop (--rate): requests launch\n\
             on a fixed schedule and every latency is measured from its\n\
             intended send time, so tail percentiles include the wait.\n\
             \n\
             FLAGS:\n  \
             --addr HOST:PORT         daemon address (default 127.0.0.1:7077)\n  \
             --requests N             total requests (default 50)\n  \
             --concurrency N          parallel connections (default 4)\n  \
             --seed N                 mix + arrival seed (default 1)\n  \
             --rate R                 open loop: offered arrivals/second\n  \
             --arrivals MODEL         constant|poisson (default constant;\n                           \
             needs --rate)\n  \
             --series FILE            per-second NDJSON time series (offered,\n                           \
             outcomes, inflight, interval percentiles;\n                           \
             written atomically)\n  \
             --prom FILE              Prometheus body (sp_loadgen_* families)\n  \
             --slo SPEC               gate: \"p99<=5ms,p999<=20ms,\n                           \
             error_rate<=0.1%\"; metrics p50|p90|p99|\n                           \
             p999|max (us/ms/s) and error_rate (% or\n                           \
             ratio); prints slo_verdict JSON and exits\n                           \
             non-zero on violation\n  \
             --shutdown on|off        drain the daemon afterwards (default off)\n",
        ),
        "top" => (
            "spt top [flags]",
            "Live terminal dashboard over a running daemon: polls the\n\
             stats command at an interval and redraws in place (plain\n\
             ANSI) with throughput, cache hit ratio, queue depth, worker\n\
             utilization, and latency percentiles, each with a sparkline\n\
             history row.\n\
             \n\
             FLAGS:\n  \
             --addr HOST:PORT         daemon address (default 127.0.0.1:7077)\n  \
             --interval-ms N          poll interval (default 1000)\n  \
             --count N                stop after N frames (default 0 = run\n                           \
             until interrupted)\n  \
             --once                   poll once, print one static frame\n  \
             --json                   with --once: print the raw stats\n                           \
             result object (machine-readable)\n",
        ),
        _ => return None,
    };
    let common = match cmd {
        "serve" | "loadgen" | "top" | "selection" | "bench" => "",
        _ => COMMON,
    };
    Some(format!("USAGE:\n  {synopsis}\n\n{body}{common}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_has_a_page_and_unknowns_do_not() {
        for cmd in COMMANDS {
            let page = command_help(cmd).unwrap_or_else(|| panic!("no help for {cmd}"));
            assert!(page.starts_with("USAGE:\n  spt "), "{cmd}: {page}");
            assert!(page.contains(cmd), "{cmd} page names itself");
        }
        assert!(command_help("warp").is_none());
    }
}
