//! `spt` — command-line explorer for the Skip-Prefetching toolkit.
//!
//! ```text
//! spt affinity   [--bench B] [--size S] [--l2-kb N --ways N --line N]
//! spt sweep      [--bench B] [--rp R] [--distances d1,d2,...] [--jobs N] [--svg F]
//! spt delinquent [--bench B]
//! spt phases     [--bench B]
//! spt reuse      [--bench B]
//! spt adaptive   [--bench B] [--start D] [--epoch N] [--bounded on|off]
//! spt selection
//! spt dump       [--bench B] [--size S] --out trace.spt
//! spt bench      [--smoke] [--out F] [--check BASELINE] [--tolerance F]
//! spt events     [--bench B] [--distance D] [--rp R] [--original] [--out F.ndjson]
//! spt trace      [--bench B] [--distances d1,...] [--jobs N] --out profile.json
//! spt report     [--bench B] [--rp R] [--epoch-len N] [--ndjson F] [--out F.md]
//! ```
//!
//! Every analysis command also accepts `--trace FILE` to replay a trace
//! recorded with `spt dump` instead of building a workload.
//!
//! Common flags: `--bench` (any workload-builder kernel:
//! em3d|mcf|mst|treeadd|health|matmul|hashjoin|bfs|skiplist|btree),
//! `--size scaled|tiny`, `--cache scaled|core2`, `--hw-prefetch on|off`,
//! `--prefetcher streamer+dpl|streamer|dpl|pointer-chase|perceptron`,
//! `--l2-kb/--ways/--line` geometry overrides.

mod args;
mod help;
mod serve_cmd;
mod slo;
mod top_cmd;

use args::Args;
use sp_cachesim::CacheConfig;
use sp_core::prelude::*;
use sp_core::{run_sp_adaptive, sampled_set_affinity, FeedbackController};
use sp_profiler::{
    detect_phases, rank_delinquent_loads, reuse_histogram, select_benchmarks, BurstSampler,
    PhaseConfig,
};
use sp_workloads::Candidate;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", USAGE);
        return;
    }
    // `spt <command> --help` prints the command's own page (handled
    // before Args::parse, which requires every `--flag` to have a value).
    if argv.iter().skip(1).any(|a| a == "--help" || a == "help") {
        match help::command_help(&argv[0]) {
            Some(page) => print!("{page}"),
            None => {
                eprintln!("spt: unknown command {}", argv[0]);
                std::process::exit(2);
            }
        }
        return;
    }
    sp_obs::logger::init_from_env();
    match Args::parse(argv).and_then(run) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("spt: {e}");
            eprintln!("run `spt help` for usage");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
spt — Skip-Prefetching toolkit explorer

USAGE:
  spt <command> [--flag value]...

COMMANDS:
  affinity     Set Affinity report + prefetch-distance bound
  sweep        distance sweep (normalized runtime/misses/behaviour);
               --jobs N fans distances out on N threads (default all
               cores; output is identical whatever N is)
  delinquent   rank reference sites by L2 misses
  phases       access-phase detection
  reuse        LRU stack-distance histogram + miss ratio vs associativity
  adaptive     run the FDP-style dynamic distance controller
  selection    benchmark screen by L2-miss cycle share (paper SIV.B)
  dump         record a workload's hot-loop trace to a file (--out F)
  bench        run the pinned cachesim benchmark suite (BENCH_cachesim.json)
  events       replay one run with the prefetch-lifecycle event sink
               attached: timeliness, pollution cases, per-set pressure;
               --out writes the raw event stream as NDJSON
  trace        run a distance sweep with runtime spans recorded and
               export them as Chrome trace-event JSON (--out F, load
               into Perfetto / chrome://tracing)
  report       epoch-windowed flight recorder: sweep with per-window
               telemetry and render sparklines + displacement heatmap
               as markdown (--out F.md) and NDJSON series (--ndjson F)
  serve        run the simulation service daemon (NDJSON over TCP)
  loadgen      drive a seeded request mix against a running daemon:
               closed-loop or open-loop (--rate, coordinated-omission-
               free latency), NDJSON time series (--series), SLO gate
               (--slo \"p99<=5ms,error_rate<=0.1%\", non-zero exit on
               violation)
  top          live dashboard over a running daemon (throughput, hit
               ratio, queue, utilization, latency sparklines);
               --once --json prints one machine-readable snapshot

COMMON FLAGS:
  --bench KERNEL                        workload (default em3d); one of
                                        em3d|mcf|mst|treeadd|health|matmul|
                                        hashjoin|bfs|skiplist|btree
  --size scaled|tiny                    input size (default scaled)
  --cache scaled|core2                  geometry preset (default scaled)
  --l2-kb N / --ways N / --line N       L2 geometry overrides
  --hw-prefetch on|off                  hardware prefetchers
  --prefetcher NAME                     hardware-prefetcher backend:
                                        streamer+dpl|streamer|dpl|
                                        pointer-chase|perceptron

Run `spt <command> --help` for a command's full flag reference.
";

fn run(a: Args) -> Result<(), String> {
    match a.command.as_str() {
        "affinity" => affinity(&a),
        "sweep" => sweep(&a),
        "delinquent" => delinquent(&a),
        "phases" => phases(&a),
        "reuse" => reuse(&a),
        "adaptive" => adaptive(&a),
        "selection" => selection_cmd(&a),
        "dump" => dump(&a),
        "bench" => bench(&a),
        "events" => events(&a),
        "trace" => trace_cmd(&a),
        "report" => report(&a),
        "serve" => serve_cmd::serve(&a),
        "loadgen" => serve_cmd::loadgen(&a),
        "top" => top_cmd::top(&a),
        other => Err(format!(
            "unknown command {other}; expected one of {}",
            help::COMMANDS.join("|")
        )),
    }
}

fn affinity(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let rec = recommend_distance(&trace, &cfg);
    println!(
        "hot loop: {} ({} iters, {} refs)",
        trace.name,
        trace.outer_iters(),
        trace.total_refs()
    );
    println!(
        "L2: {}KB {}-way, {} sets",
        cfg.l2.size_bytes / 1024,
        cfg.l2.ways,
        cfg.l2.sets()
    );
    println!("sets touched:        {}", rec.affinity.sets_touched);
    println!(
        "sets overflowed:     {} ({:.0}%)",
        rec.affinity.per_set.len(),
        rec.affinity.overflow_fraction() * 100.0
    );
    println!("SA(L,Sx) range:      {:?}", rec.affinity.range());
    println!("distance bound:      {:?}  (min SA / 2)", rec.max_distance);
    let bursts = BurstSampler::default_profile().sample(&trace);
    let est = sampled_set_affinity(&bursts, cfg.l2);
    println!("SA (burst-sampled):  {:?}", est.range());
    Ok(())
}

fn sweep(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance.unwrap_or(u32::MAX);
    let mut default: Vec<u32> = [
        bound / 4,
        bound / 2,
        bound,
        bound.saturating_mul(2),
        bound.saturating_mul(4),
    ]
    .into_iter()
    .filter(|&d| d >= 1)
    .collect();
    default.dedup(); // unbounded traces collapse to one u32::MAX entry
    let ds = a.distances(&default)?;
    let rp: f64 = a.get_or("rp", 0.5)?;
    let jobs: usize = a.get_or("jobs", 0)?; // 0 = all cores
    let lanes: usize = a.get_or("lanes", 1)?;
    if lanes == 0 || lanes > 64 {
        return Err(format!("--lanes {lanes}: expected 1..=64"));
    }
    let (s, ev, rep) = if a.switch("events") {
        let ct = std::sync::Arc::new(sp_core::compile_trace(&trace, &cfg));
        let (s, ev, rep) = sp_core::sweep_events_compiled_batched_jobs_with(
            &ct,
            cfg,
            rp,
            &ds,
            sp_core::EngineOptions::default(),
            jobs,
            lanes,
        )
        .map_err(|e| e.to_string())?;
        (s, Some(ev), rep)
    } else {
        let (s, rep) = sp_core::sweep_distances_batched_jobs_with(
            &trace,
            cfg,
            rp,
            &ds,
            sp_core::EngineOptions::default(),
            jobs,
            lanes,
        );
        (s, None, rep)
    };
    println!("bound = {bound}; RP = {rp}");
    if let Some(svg_path) = a.get("svg") {
        use sp_bench::plot::{line_chart, save_svg, ChartConfig, Series};
        let xs: Vec<f64> = s.points.iter().map(|p| p.distance as f64).collect();
        let series = vec![
            Series::new(
                "runtime",
                &xs,
                &s.points.iter().map(|p| p.runtime_norm).collect::<Vec<_>>(),
            ),
            Series::new(
                "hot misses",
                &xs,
                &s.points
                    .iter()
                    .map(|p| p.hot_misses_norm)
                    .collect::<Vec<_>>(),
            ),
        ];
        let chart = line_chart(
            &format!("{} distance sweep (bound {bound})", trace.name),
            "prefetch distance (log)",
            "normalized to original",
            &series,
            ChartConfig::default(),
        );
        save_svg(std::path::Path::new(svg_path), &chart).map_err(|e| e.to_string())?;
        println!("(wrote {svg_path})");
    }
    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "distance", "runtime", "misses", "dTH%", "dTM%", "dPH%", "pollution"
    );
    for p in &s.points {
        println!(
            "{}{:>8} {:>9.3} {:>9.3} {:>+8.2} {:>+8.2} {:>+8.2} {:>10}",
            if p.distance <= bound { " " } else { "!" },
            p.distance,
            p.runtime_norm,
            p.hot_misses_norm,
            p.behavior.totally_hit_pct,
            p.behavior.totally_miss_pct,
            p.behavior.partially_hit_pct,
            p.pollution.stats.total(),
        );
    }
    // With --events, explain each point: which displacement case fired
    // and how prefetch timeliness shifted — the *why* behind a distance
    // crossing the SA/2 bound, not just that hits dropped.
    if let Some(ev) = &ev {
        println!(
            "\n{:>9} {:>8} {:>8} {:>8} {:>7} {:>8} {:>7} {:>7}",
            "distance", "reuse", "un.help", "un.hw", "dead", "late", "ontime", "early"
        );
        for (p, s) in s.points.iter().zip(&ev.points) {
            println!(
                "{}{:>8} {:>8} {:>8} {:>8} {:>7} {:>8} {:>7} {:>7}",
                if p.distance <= bound { " " } else { "!" },
                p.distance,
                s.pollution[0],
                s.pollution[1],
                s.pollution[2],
                s.evicted_unused.iter().sum::<u64>(),
                s.late,
                s.on_time,
                s.early,
            );
        }
    }
    println!("{}", sp_bench::render_runner_summary(&rep));
    Ok(())
}

/// `spt report`: run an epoch-recorded distance sweep — the cache
/// flight recorder — and render the artifacts: a per-window NDJSON
/// series (`--ndjson`) and a self-contained markdown report with
/// per-metric sparklines and the distances-by-epochs displacement
/// heatmap (`--out`, or stdout). The series is differentially
/// self-checked against the run-aggregate counters before anything
/// is written.
fn report(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let rec = recommend_distance(&trace, &cfg);
    let bound = rec.max_distance;
    let kernel = a.kernel()?;
    let ds = a.distances(sp_bench::distances_for_kernel(kernel))?;
    let rp: f64 = a.get_or("rp", 0.5)?;
    let epoch_len: u64 = a.get_or("epoch-len", sp_cachesim::DEFAULT_EPOCH_LEN)?;
    if epoch_len == 0 {
        return Err("--epoch-len 0: a window must cover at least one reference".into());
    }
    let jobs: usize = a.get_or("jobs", 0)?; // 0 = all cores
    let lanes: usize = a.get_or("lanes", 1)?;
    if lanes == 0 || lanes > 64 {
        return Err(format!("--lanes {lanes}: expected 1..=64"));
    }
    let ct = std::sync::Arc::new(sp_core::compile_trace(&trace, &cfg));
    let (s, epochs, rep) = sp_core::sweep_epochs_compiled_batched_jobs_with(
        &ct,
        cfg,
        rp,
        &ds,
        sp_core::EngineOptions::default(),
        epoch_len,
        jobs,
        lanes,
    )
    .map_err(|e| e.to_string())?;
    // Differential self-check: every series must fold back to its run's
    // aggregate counters exactly before the artifacts are published.
    for (series, run) in std::iter::once((&epochs.baseline, &s.baseline))
        .chain(epochs.points.iter().zip(s.points.iter().map(|p| &p.run)))
    {
        let t = series.totals();
        let m = &run.stats.main;
        if t.main != [m.l1_hits, m.total_hits, m.partial_hits, m.total_misses]
            || t.issued != run.stats.prefetches_issued
            || series.pollution_stats() != run.stats.pollution
        {
            return Err(
                "epoch series totals do not fold to the run counters (recorder drift)".into(),
            );
        }
    }
    let bench = match a.get("trace") {
        Some(_) => trace.name.clone(),
        None => kernel.name().to_string(),
    };
    let meta = sp_bench::EpochReportMeta {
        bench: &bench,
        scale: a.get("size").unwrap_or("scaled"),
        rp,
        bound,
    };
    println!(
        "bound = {}; RP = {rp}; epoch = {epoch_len} refs",
        bound.map(|b| b.to_string()).unwrap_or_else(|| "-".into())
    );
    println!(
        "{:>9} {:>8} {:>10} {:>8} {:>8}",
        "distance", "epochs", "pollution", "late", "early"
    );
    for (p, series) in s.points.iter().zip(&epochs.points) {
        let t = series.totals();
        println!(
            "{}{:>8} {:>8} {:>10} {:>8} {:>8}",
            if bound.is_none_or(|b| p.distance <= b) {
                " "
            } else {
                "!"
            },
            p.distance,
            series.len(),
            t.total_pollution(),
            t.late,
            t.early,
        );
    }
    if let Some(nd) = a.get("ndjson") {
        let text = sp_bench::epoch_ndjson(&s, &epochs);
        sp_bench::write_atomic(std::path::Path::new(nd), &text)
            .map_err(|e| format!("--ndjson {nd}: {e}"))?;
        println!("(wrote {} epoch lines to {nd})", text.lines().count());
    }
    let md = sp_bench::epoch_report_markdown(&meta, &s, &epochs);
    match a.get("out") {
        Some(out) => {
            sp_bench::write_atomic(std::path::Path::new(out), &md)
                .map_err(|e| format!("--out {out}: {e}"))?;
            println!("(wrote report to {out})");
        }
        None => print!("{md}"),
    }
    println!("{}", sp_bench::render_runner_summary(&rep));
    Ok(())
}

/// `spt trace`: run a distance sweep with the span recorder enabled and
/// export the collected spans as Chrome trace-event JSON (loadable in
/// Perfetto or chrome://tracing). Every span carries the same root
/// correlation ID, so the load → compile → simulate → fold pipeline for
/// each grid point can be followed across worker threads.
fn trace_cmd(a: &Args) -> Result<(), String> {
    let out = a
        .get("out")
        .ok_or("trace needs --out FILE (Chrome trace JSON)")?
        .to_string();
    let cfg = a.cache_config()?;
    let rp: f64 = a.get_or("rp", 0.5)?;
    let jobs: usize = a.get_or("jobs", 0)?; // 0 = all cores

    sp_obs::span::start_recording();
    let corr = sp_obs::CorrId::next_root();
    let (spans, n_points, rep) = {
        let _cg = sp_obs::corr::set_current(corr);
        let trace = {
            let _sp = sp_obs::span!("load");
            a.trace()?
        };
        let rec = recommend_distance(&trace, &cfg);
        let bound = rec.max_distance.unwrap_or(u32::MAX);
        let mut default: Vec<u32> = [
            bound / 4,
            bound / 2,
            bound,
            bound.saturating_mul(2),
            bound.saturating_mul(4),
        ]
        .into_iter()
        .filter(|&d| d >= 1)
        .collect();
        default.dedup();
        let ds = a.distances(&default)?;
        let ct = std::sync::Arc::new(sp_core::compile_trace(&trace, &cfg));
        let (s, rep) = sp_core::sweep_compiled_jobs_with(
            &ct,
            cfg,
            rp,
            &ds,
            sp_core::EngineOptions::default(),
            jobs,
        )
        .map_err(|e| e.to_string())?;
        (sp_obs::span::drain(), s.points.len(), rep)
    };
    sp_obs::span::stop_recording();

    sp_bench::write_atomic(
        std::path::Path::new(&out),
        &sp_obs::chrome::trace_json(&spans),
    )
    .map_err(|e| format!("--out {out}: {e}"))?;

    println!("{:>12} {:>12} {:>7}", "stage", "total_us", "spans");
    for (name, total_us, count) in sp_obs::span::stage_totals(&spans) {
        println!("{name:>12} {total_us:>12} {count:>7}");
    }
    println!(
        "(traced {n_points} grid points, correlation {corr}; wrote {} spans to {out})",
        spans.len()
    );
    println!("{}", sp_bench::render_runner_summary(&rep));
    Ok(())
}

fn events(a: &Args) -> Result<(), String> {
    use sp_cachesim::{default_early_threshold, PfClass, PollutionCase, RingSink};

    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let rec = recommend_distance(&trace, &cfg);
    let original = a.switch("original");
    let distance: u32 = a.get_or("distance", rec.max_distance.unwrap_or(8))?;
    let rp: f64 = a.get_or("rp", 0.5)?;
    let passes: usize = a.get_or("passes", 1)?;
    let limit: usize = a.get_or("limit", 0)?; // 0 = keep every event
    let ct = sp_core::compile_trace(&trace, &cfg);
    let mut sink = RingSink::new(limit, default_early_threshold(&cfg.latency));
    let run = if original {
        sp_core::run_original_passes_compiled_ev(&ct, cfg, passes, &mut sink)
    } else {
        let opts = sp_core::EngineOptions {
            passes,
            ..Default::default()
        };
        let params = SpParams::from_distance_rp(distance, rp);
        sp_core::run_sp_with_compiled_ev(&ct, cfg, params, opts, &mut sink)
    }
    .map_err(|e| e.to_string())?;

    if original {
        println!("{}: original run, passes {passes}", trace.name);
    } else {
        println!(
            "{}: SP run, distance {distance} (bound {}), RP {rp}, passes {passes}",
            trace.name,
            rec.max_distance
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "events: {} buffered, {} dropped beyond --limit (summary folds all)",
        sink.len(),
        sink.dropped()
    );

    let s = &sink.summary;
    println!(
        "\n{:<8} {:>9} {:>9} {:>10} {:>8} {:>9}",
        "class", "issued", "filled", "first_use", "dead", "accuracy"
    );
    for c in PfClass::ALL {
        let i = c.index();
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>8} {:>8.2}%",
            c.name(),
            s.issued[i],
            s.filled[i],
            s.first_uses[i],
            s.evicted_unused[i],
            s.accuracy(c) * 100.0
        );
    }
    println!(
        "\ntimeliness of first uses: {} late, {} on-time, {} early ({} still pending at end)",
        s.late,
        s.on_time,
        s.early,
        s.unresolved()
    );
    println!("\npollution evictions (paper's three displacement cases):");
    for case in PollutionCase::ALL {
        println!(
            "  case {} {:<14} {:>8}",
            case.index() + 1,
            case.name(),
            s.pollution[case.index()]
        );
    }
    println!("  total {:>23}", s.total_pollution());
    println!(
        "\n{:<10} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "quartile", "sets", "fills", "reuse", "un.help", "un.hw", "dead"
    );
    for (q, row) in s.pollution_by_quartile().iter().enumerate() {
        println!(
            "{:<10} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            match q {
                0 => "hottest",
                1 => "2nd",
                2 => "3rd",
                _ => "coldest",
            },
            row.sets,
            row.fills,
            row.pollution[0],
            row.pollution[1],
            row.pollution[2],
            row.evicted_unused
        );
    }

    // Differential self-check: the fold of the emitted eviction events
    // must equal the simulator's own pollution counters exactly. A
    // mismatch means the event layer lost or double-counted something,
    // so fail loudly (CI leans on this exit code).
    let fold = s.pollution_stats();
    if fold != run.stats.pollution {
        return Err(format!(
            "event fold disagrees with simulator counters: folded {fold:?}, counted {:?}",
            run.stats.pollution
        ));
    }
    println!("\nself-check: event fold matches the simulator's pollution counters");

    if let Some(out) = a.get("out") {
        if sink.dropped() > 0 {
            println!(
                "(warning: --limit {limit} dropped {} events; the NDJSON stream is truncated)",
                sink.dropped()
            );
        }
        sp_bench::write_atomic(std::path::Path::new(out), &sink.to_ndjson())
            .map_err(|e| format!("--out {out}: {e}"))?;
        println!("(wrote {} events to {out})", sink.len());
    }
    Ok(())
}

fn delinquent(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let ranked = rank_delinquent_loads(&trace, cfg.l2, cfg.policy);
    println!(
        "{:<32} {:>10} {:>10} {:>8}",
        "site", "refs", "misses", "rate"
    );
    for s in ranked {
        let name = trace
            .site_names
            .get(s.site.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("site#{}", s.site.0));
        println!(
            "{:<32} {:>10} {:>10} {:>7.1}%",
            name,
            s.refs,
            s.misses,
            s.miss_rate() * 100.0
        );
    }
    Ok(())
}

fn phases(a: &Args) -> Result<(), String> {
    let trace = a.trace()?;
    let phases = detect_phases(&trace, PhaseConfig::default());
    println!(
        "{} phases over {} iterations",
        phases.len(),
        trace.outer_iters()
    );
    for p in phases {
        println!(
            "  [{:>8}, {:>8})  {:>7.1} refs/iter  {:>6.2} new blocks/iter",
            p.start_iter, p.end_iter, p.refs_per_iter, p.blocks_per_iter
        );
    }
    Ok(())
}

fn reuse(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let h = reuse_histogram(&trace, cfg.l2);
    println!("accesses: {} (cold: {})", h.total, h.cold);
    println!("{:>6} {:>12} {:>10}", "ways", "LRU misses", "miss rate");
    for ways in [1u32, 2, 4, 8, 16, 32] {
        println!(
            "{:>6} {:>12} {:>9.2}%",
            ways,
            h.miss_count(ways),
            h.miss_ratio(ways) * 100.0
        );
    }
    if let Some(w) = h.ways_for_miss_ratio(0.05) {
        println!("associativity for <=5% misses at this set count: {w}");
    }
    Ok(())
}

fn adaptive(a: &Args) -> Result<(), String> {
    let cfg = a.cache_config()?;
    let trace = a.trace()?;
    let rec = recommend_distance(&trace, &cfg);
    let start: u32 = a.get_or("start", rec.max_distance.map(|b| b * 4).unwrap_or(64))?;
    let epoch: usize = a.get_or("epoch", 128)?;
    let mut ctl = FeedbackController::new(start, a.get_or("rp", 0.5)?);
    let bounded = matches!(a.get("bounded"), Some("on")) || a.get("bounded").is_none();
    if bounded {
        if let Some(b) = rec.max_distance {
            ctl = ctl.bounded(b);
        }
    }
    let base = run_original(&trace, cfg);
    let r = run_sp_adaptive(&trace, cfg, &mut ctl, epoch);
    println!(
        "start {start}, epoch {epoch}, bound {:?} ({}); runtime {:.3} vs original",
        rec.max_distance,
        if bounded { "clamped" } else { "unclamped" },
        r.run.runtime as f64 / base.runtime as f64
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "epoch", "distance", "accuracy", "lateness", "pollution", "next dist"
    );
    for e in r.epochs.iter().take(24) {
        println!(
            "{:>6} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>10}",
            e.feedback.epoch,
            e.feedback.params.a_ski,
            e.feedback.accuracy(),
            e.feedback.lateness(),
            e.feedback.pollution_rate(),
            e.next_distance
        );
    }
    if r.epochs.len() > 24 {
        println!("  ... ({} more epochs)", r.epochs.len() - 24);
    }
    Ok(())
}

fn dump(a: &Args) -> Result<(), String> {
    let out = a.get("out").ok_or("dump needs --out FILE")?;
    let trace = a.trace()?;
    let path = std::path::Path::new(out);
    sp_prefetch_save(&trace, path)?;
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    println!(
        "wrote {} ({} iters, {} refs, {} bytes, {:.1} B/ref)",
        out,
        trace.outer_iters(),
        trace.total_refs(),
        bytes,
        bytes as f64 / trace.total_refs().max(1) as f64
    );
    Ok(())
}

fn sp_prefetch_save(t: &sp_trace::HotLoopTrace, path: &std::path::Path) -> Result<(), String> {
    sp_trace::save_trace(t, path).map_err(|e| e.to_string())
}

fn bench(a: &Args) -> Result<(), String> {
    let smoke = a.switch("smoke");
    // Timed repetitions and untimed warmup runs; defaults live in
    // `run_baseline_with` (3 smoke / 9 full, warmup 2).
    let runs = a
        .get("runs")
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&r| r > 0)
                .ok_or_else(|| format!("--runs {v}: expected a positive count"))
        })
        .transpose()?;
    let warmup = a
        .get("warmup")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--warmup {v}: expected a count"))
        })
        .transpose()?;
    let entries = sp_bench::run_baseline_with(smoke, runs, warmup);
    print!("{}", sp_bench::render_entries(&entries));
    if let Some(out) = a.get("out") {
        // Carry the existing document's trajectory forward; this
        // measurement becomes its newest point.
        let prior = std::fs::read_to_string(out)
            .map(|doc| sp_bench::prior_trajectory(&doc))
            .unwrap_or_default();
        sp_bench::write_atomic(
            std::path::Path::new(out),
            &sp_bench::bench_json(&entries, smoke, &prior),
        )
        .map_err(|e| format!("--out {out}: {e}"))?;
        println!("(wrote {out}, trajectory point {})", prior.len());
    }
    if let Some(baseline_path) = a.get("check") {
        let tolerance: f64 = a.get_or("tolerance", 0.2)?;
        match std::fs::read_to_string(baseline_path) {
            Err(e) => println!("(no baseline at {baseline_path}: {e}; skipping check)"),
            Ok(json) => {
                let lines = sp_bench::check_against(&json, &entries, tolerance)
                    .map_err(|e| format!("bench check vs {baseline_path}: {e}"))?;
                for line in lines {
                    println!("{line}");
                }
                println!("(within {:.0}% of {baseline_path})", tolerance * 100.0);
            }
        }
    }
    Ok(())
}

fn selection_cmd(a: &Args) -> Result<(), String> {
    let cfg: CacheConfig = a.cache_config()?;
    let threshold: f64 = a.get_or("threshold", 0.3)?;
    let candidates: Vec<(String, sp_trace::HotLoopTrace)> = Candidate::ALL
        .iter()
        .map(|&c| (c.name().to_string(), c.trace_scaled()))
        .collect();
    println!(
        "{:<10} {:>12} {:>12} {:>10}  verdict",
        "candidate", "miss cycles", "total", "share"
    );
    for r in select_benchmarks(&candidates, &cfg, threshold) {
        println!(
            "{:<10} {:>12} {:>12} {:>9.1}%  {}",
            r.name,
            r.profile.miss_cycles,
            r.profile.total(),
            r.profile.miss_share() * 100.0,
            if r.selected { "selected" } else { "rejected" }
        );
    }
    Ok(())
}
