//! `spt serve` — run the sp-serve daemon — and `spt loadgen` — replay a
//! seeded request mix against one at a target concurrency and report
//! throughput/latency percentiles.

use crate::args::Args;
use sp_serve::{fnv1a64, Json, Server, ServerConfig};
use sp_trace::rng::SmallRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// `spt serve`: bind, print the resolved address, serve until drained.
pub fn serve(a: &Args) -> Result<(), String> {
    let cfg = ServerConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:7077").to_string(),
        workers: a.get_or("workers", 0)?,
        queue: a.get_or("queue", 64)?,
        cache_entries: a.get_or("cache-entries", 256)?,
        shards: a.get_or("shards", 8)?,
        default_timeout_ms: a.get_or("timeout-ms", 30_000)?,
        slow_ms: a.get_or("slow-ms", 1_000)?,
    };
    let server = Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    println!(
        "sp-serve listening on {} ({} workers, queue {}, cache {} entries)",
        server.local_addr(),
        server.workers(),
        cfg.queue,
        cfg.cache_entries
    );
    println!("drain with a {{\"type\":\"shutdown\"}} request, SIGINT, or SIGTERM");
    server.run().map_err(|e| format!("serve: {e}"))
}

/// The seeded request mix. Deterministic for a given seed: two loadgen
/// runs with the same `--seed` issue byte-identical request lines.
fn request_mix(seed: u64, requests: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let benches = ["em3d", "mcf", "mst"];
    let distances = [2u32, 4, 8, 16, 32];
    (0..requests)
        .map(|id| {
            let bench = benches[rng.gen_range(0..benches.len())];
            match rng.gen_range(0..10u32) {
                // Weighted toward point runs: small keyspace, so repeats
                // exercise the result cache.
                0..=5 => {
                    let d = distances[rng.gen_range(0..distances.len())];
                    format!(
                        "{{\"id\":{id},\"type\":\"point\",\"bench\":\"{bench}\",\
                         \"scale\":\"test\",\"distance\":{d}}}"
                    )
                }
                6..=7 => format!(
                    "{{\"id\":{id},\"type\":\"sweep\",\"bench\":\"{bench}\",\
                     \"scale\":\"test\",\"distances\":[2,4]}}"
                ),
                8 => format!(
                    "{{\"id\":{id},\"type\":\"affinity\",\"bench\":\"{bench}\",\
                     \"scale\":\"test\"}}"
                ),
                _ => format!("{{\"id\":{id},\"type\":\"ping\"}}"),
            }
        })
        .collect()
}

#[derive(Default)]
struct WorkerTally {
    ok: u64,
    cached: u64,
    busy: u64,
    timeouts: u64,
    errors: u64,
    /// XOR of per-request `fnv1a64("{id}:{result}")` — order-independent,
    /// so the combined digest is stable however threads interleave.
    digest: u64,
    latencies_us: Vec<u64>,
}

fn run_client(addr: &str, lines: Vec<String>) -> Result<WorkerTally, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut tally = WorkerTally::default();
    let mut reply = String::new();
    for line in lines {
        let sent = Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        reply.clear();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        tally.latencies_us.push(sent.elapsed().as_micros() as u64);
        let v = Json::parse(reply.trim()).map_err(|e| format!("bad reply {reply:?}: {e}"))?;
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            tally.ok += 1;
            if v.get("cached").and_then(Json::as_bool) == Some(true) {
                tally.cached += 1;
            }
            let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
            let result = v.get("result").map(Json::encode).unwrap_or_default();
            tally.digest ^= fnv1a64(format!("{id}:{result}").as_bytes());
        } else {
            match v.get("error").and_then(Json::as_str) {
                Some("busy") => tally.busy += 1,
                Some("timeout") => tally.timeouts += 1,
                _ => tally.errors += 1,
            }
        }
    }
    Ok(tally)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// `spt loadgen`: closed-loop clients replaying the seeded mix.
pub fn loadgen(a: &Args) -> Result<(), String> {
    let addr = a.get("addr").unwrap_or("127.0.0.1:7077").to_string();
    let requests: usize = a.get_or("requests", 50)?;
    let concurrency: usize = a.get_or("concurrency", 4)?;
    let seed: u64 = a.get_or("seed", 1)?;
    let shutdown = match a.get("shutdown") {
        None | Some("off") => false,
        Some("on") => true,
        Some(other) => return Err(format!("--shutdown: expected on|off, got {other}")),
    };
    if requests == 0 || concurrency == 0 {
        return Err("--requests and --concurrency must be positive".into());
    }
    let mix = request_mix(seed, requests);
    let mix_digest = mix
        .iter()
        .fold(0u64, |acc, line| acc ^ fnv1a64(line.as_bytes()));

    // Deal requests round-robin so every closed-loop client sees an
    // interleaved slice of the mix.
    let clients = concurrency.min(requests);
    let mut slices: Vec<Vec<String>> = vec![Vec::new(); clients];
    for (i, line) in mix.into_iter().enumerate() {
        slices[i % clients].push(line);
    }
    let started = Instant::now();
    let handles: Vec<_> = slices
        .into_iter()
        .map(|lines| {
            let addr = addr.clone();
            std::thread::spawn(move || run_client(&addr, lines))
        })
        .collect();
    let mut total = WorkerTally::default();
    for h in handles {
        let t = h.join().map_err(|_| "client thread panicked")??;
        total.ok += t.ok;
        total.cached += t.cached;
        total.busy += t.busy;
        total.timeouts += t.timeouts;
        total.errors += t.errors;
        total.digest ^= t.digest;
        total.latencies_us.extend(t.latencies_us);
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    total.latencies_us.sort_unstable();

    println!("loadgen: {requests} requests, concurrency {concurrency}, seed {seed}");
    println!(
        "  ok {} (cached {}), busy {}, timeouts {}, errors {}",
        total.ok, total.cached, total.busy, total.timeouts, total.errors
    );
    println!(
        "  throughput {:.1} req/s over {:.2}s",
        requests as f64 / wall,
        wall
    );
    println!(
        "  latency_us p50 {} p90 {} p99 {} max {}",
        percentile(&total.latencies_us, 0.50),
        percentile(&total.latencies_us, 0.90),
        percentile(&total.latencies_us, 0.99),
        total.latencies_us.last().copied().unwrap_or(0)
    );
    println!(
        "  mix_digest {mix_digest:016x}  result_digest {:016x}",
        total.digest
    );

    if shutdown {
        let mut c = run_shutdown(&addr)?;
        println!("  drain acknowledged: {}", c.remove(0));
    }
    if total.errors > 0 {
        return Err(format!("{} protocol errors", total.errors));
    }
    Ok(())
}

fn run_shutdown(addr: &str) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"type\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv shutdown ack: {e}"))?;
    Ok(vec![reply.trim().to_string()])
}
