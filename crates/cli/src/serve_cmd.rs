//! `spt serve` — run the sp-serve daemon — and `spt loadgen` — drive a
//! seeded request mix against one and report throughput, outcome
//! counters, and latency percentiles from the shared
//! [`sp_obs::LogLinearHist`].
//!
//! Loadgen runs in one of two arrival models:
//!
//! * **Closed loop** (default, back-compat): `--concurrency N` clients
//!   each send their next request only after the previous reply. This
//!   measures the service at its own pace — queueing delay under
//!   overload is *hidden*, because a slow reply delays the next send
//!   (coordinated omission).
//! * **Open loop** (`--rate R`): requests are launched on a fixed
//!   schedule — constant spacing or seeded-Poisson gaps
//!   (`--arrivals constant|poisson`) — regardless of reply progress,
//!   and every latency is measured from the request's **intended**
//!   send time. A reply that queued behind a stall is charged the full
//!   wait, so tail percentiles reflect what an independent client
//!   population would actually experience.
//!
//! Either mode can write a per-second NDJSON time series
//! (`--series FILE`, atomic write), a Prometheus body (`--prom FILE`,
//! `sp_loadgen_*` families rendered by sp-serve so the name lint
//! covers them), and gate on `--slo "p99<=5ms,..."` (see
//! [`crate::slo`]), exiting non-zero on violation.

use crate::args::Args;
use crate::slo::{Measured, Slo};
use sp_obs::LogLinearHist;
use sp_serve::{fnv1a64, render_loadgen, Json, LoadgenSnapshot, Server, ServerConfig};
use sp_trace::rng::SmallRng;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// `spt serve`: bind, print the resolved address, serve until drained.
pub fn serve(a: &Args) -> Result<(), String> {
    let cfg = ServerConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:7077").to_string(),
        workers: a.get_or("workers", 0)?,
        queue: a.get_or("queue", 64)?,
        cache_entries: a.get_or("cache-entries", 256)?,
        shards: a.get_or("shards", 8)?,
        default_timeout_ms: a.get_or("timeout-ms", 30_000)?,
        slow_ms: a.get_or("slow-ms", 1_000)?,
    };
    let server = Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    println!(
        "sp-serve listening on {} ({} workers, queue {}, cache {} entries)",
        server.local_addr(),
        server.workers(),
        cfg.queue,
        cfg.cache_entries
    );
    println!("drain with a {{\"type\":\"shutdown\"}} request, SIGINT, or SIGTERM");
    server.run().map_err(|e| format!("serve: {e}"))
}

/// The seeded request mix. Deterministic for a given seed: two loadgen
/// runs with the same `--seed` issue byte-identical request lines.
fn request_mix(seed: u64, requests: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let benches = ["em3d", "mcf", "mst"];
    let distances = [2u32, 4, 8, 16, 32];
    (0..requests)
        .map(|id| {
            let bench = benches[rng.gen_range(0..benches.len())];
            match rng.gen_range(0..10u32) {
                // Weighted toward point runs: small keyspace, so repeats
                // exercise the result cache.
                0..=5 => {
                    let d = distances[rng.gen_range(0..distances.len())];
                    format!(
                        "{{\"id\":{id},\"type\":\"point\",\"bench\":\"{bench}\",\
                         \"scale\":\"test\",\"distance\":{d}}}"
                    )
                }
                6..=7 => format!(
                    "{{\"id\":{id},\"type\":\"sweep\",\"bench\":\"{bench}\",\
                     \"scale\":\"test\",\"distances\":[2,4]}}"
                ),
                8 => format!(
                    "{{\"id\":{id},\"type\":\"affinity\",\"bench\":\"{bench}\",\
                     \"scale\":\"test\"}}"
                ),
                _ => format!("{{\"id\":{id},\"type\":\"ping\"}}"),
            }
        })
        .collect()
}

/// Intended send offsets (microseconds from run start) for the open
/// loop. Constant spacing or seeded-Poisson gaps (exponential
/// inter-arrivals, mean `1/rate`); the Poisson stream is derived from
/// `--seed` but decorrelated from the request-mix stream.
fn arrival_offsets_us(n: usize, rate: f64, poisson: bool, seed: u64) -> Vec<u64> {
    let gap_us = 1e6 / rate;
    if !poisson {
        return (0..n).map(|i| (i as f64 * gap_us) as u64).collect();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa55a_5a5a_d15e_a5e5);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential; 1-u is in (0, 1] so ln is finite.
            t += -(1.0 - rng.gen_f64()).ln() * gap_us;
            t as u64
        })
        .collect()
}

/// How a reply was classified. Only [`Outcome::Ok`] latencies feed the
/// percentile histograms — busy/timeout/error replies are counted but
/// never mixed into latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Busy,
    Timeout,
    Error,
}

/// One request's life, in run-relative second buckets — the unit the
/// per-second NDJSON series aggregates over.
struct Completion {
    send_sec: u64,
    done_sec: u64,
    latency_us: u64,
    outcome: Outcome,
}

/// Keep the top slow successful requests for exemplar joining: the
/// server echoes `corr` in every reply, so a slow latency here can be
/// grepped in the daemon's access log and `spt trace` spans.
const EXEMPLARS: usize = 3;

/// What one client connection observed.
struct ClientResult {
    /// Latencies of ok replies only.
    hist: LogLinearHist,
    completions: Vec<Completion>,
    ok: u64,
    cached: u64,
    busy: u64,
    timeouts: u64,
    errors: u64,
    /// XOR of per-request `fnv1a64("{id}:{result}")` — order-independent,
    /// so the combined digest is stable however threads interleave.
    digest: u64,
    /// `(latency_us, id, corr)` of the slowest ok replies, descending.
    exemplars: Vec<(u64, String, String)>,
}

impl ClientResult {
    fn new() -> ClientResult {
        ClientResult {
            hist: LogLinearHist::default(),
            completions: Vec::new(),
            ok: 0,
            cached: 0,
            busy: 0,
            timeouts: 0,
            errors: 0,
            digest: 0,
            exemplars: Vec::new(),
        }
    }

    /// Classify one reply and fold it in. `latency_us` is from the
    /// actual send in closed-loop mode, from the intended send in open
    /// loop.
    fn absorb(
        &mut self,
        reply: &str,
        latency_us: u64,
        send_sec: u64,
        done_sec: u64,
    ) -> Result<(), String> {
        let v = Json::parse(reply.trim()).map_err(|e| format!("bad reply {reply:?}: {e}"))?;
        let outcome = if v.get("ok").and_then(Json::as_bool) == Some(true) {
            self.ok += 1;
            if v.get("cached").and_then(Json::as_bool) == Some(true) {
                self.cached += 1;
            }
            let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
            let result = v.get("result").map(Json::encode).unwrap_or_default();
            self.digest ^= fnv1a64(format!("{id}:{result}").as_bytes());
            self.hist.record(latency_us);
            let corr = v
                .get("corr")
                .and_then(Json::as_str)
                .unwrap_or("-")
                .to_string();
            self.exemplars.push((latency_us, id.to_string(), corr));
            self.exemplars.sort_by_key(|e| std::cmp::Reverse(e.0));
            self.exemplars.truncate(EXEMPLARS);
            Outcome::Ok
        } else {
            match v.get("error").and_then(Json::as_str) {
                Some("busy") => {
                    self.busy += 1;
                    Outcome::Busy
                }
                Some("timeout") => {
                    self.timeouts += 1;
                    Outcome::Timeout
                }
                _ => {
                    self.errors += 1;
                    Outcome::Error
                }
            }
        };
        self.completions.push(Completion {
            send_sec,
            done_sec,
            latency_us,
            outcome,
        });
        Ok(())
    }

    fn fold_into(self, total: &mut ClientResult) -> Result<(), String> {
        total.hist.merge(&self.hist)?;
        total.completions.extend(self.completions);
        total.ok += self.ok;
        total.cached += self.cached;
        total.busy += self.busy;
        total.timeouts += self.timeouts;
        total.errors += self.errors;
        total.digest ^= self.digest;
        total.exemplars.extend(self.exemplars);
        total.exemplars.sort_by_key(|e| std::cmp::Reverse(e.0));
        total.exemplars.truncate(EXEMPLARS);
        Ok(())
    }
}

/// One closed-loop client: send, wait for the reply, send the next.
/// Latency is measured from the actual send — by construction this
/// client never queues more than one request, which is exactly the
/// coordinated-omission blind spot the open loop corrects.
fn run_closed_client(
    addr: &str,
    lines: Vec<String>,
    start: Instant,
) -> Result<ClientResult, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut res = ClientResult::new();
    let mut reply = String::new();
    for line in lines {
        let send_sec = start.elapsed().as_secs();
        let sent = Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        reply.clear();
        let n = reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("recv: connection closed".into());
        }
        let latency_us = sent.elapsed().as_micros() as u64;
        res.absorb(&reply, latency_us, send_sec, start.elapsed().as_secs())?;
    }
    Ok(res)
}

/// One open-loop connection: a writer thread fires requests at their
/// intended times while this thread reads replies in order (the daemon
/// serializes replies per connection), charging each reply the time
/// since its **intended** send — queueing delay included.
fn run_open_client(
    addr: &str,
    items: Vec<(u64, String)>,
    start: Instant,
) -> Result<ClientResult, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let expected = items.len();
    let (tx, rx) = mpsc::channel::<u64>();
    let send = std::thread::spawn(move || -> Result<(), String> {
        for (intended_us, line) in items {
            let target = start + Duration::from_micros(intended_us);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| format!("send: {e}"))?;
            // The reader learns the intended time only after the write
            // succeeded, so in-order reply matching can't skew.
            if tx.send(intended_us).is_err() {
                return Err("reader hung up".into());
            }
        }
        Ok(())
    });
    let mut res = ClientResult::new();
    let mut reply = String::new();
    let mut read_err = None;
    for _ in 0..expected {
        reply.clear();
        let n = match reader.read_line(&mut reply) {
            Ok(n) => n,
            Err(e) => {
                read_err = Some(format!("recv: {e}"));
                break;
            }
        };
        if n == 0 {
            read_err = Some("recv: connection closed".into());
            break;
        }
        let Ok(intended_us) = rx.recv() else {
            read_err = Some("writer hung up".into());
            break;
        };
        let now_us = start.elapsed().as_micros() as u64;
        let latency_us = now_us.saturating_sub(intended_us);
        res.absorb(
            &reply,
            latency_us,
            intended_us / 1_000_000,
            now_us / 1_000_000,
        )?;
    }
    let send_res = send.join().map_err(|_| "send thread panicked")?;
    send_res?;
    if let Some(e) = read_err {
        return Err(e);
    }
    Ok(res)
}

/// Render the per-second NDJSON time series: offered sends, per-outcome
/// completions, end-of-second inflight, and interval latency
/// percentiles (ok replies completing in that second).
fn series_ndjson(completions: &[Completion]) -> String {
    let mut out = String::new();
    if completions.is_empty() {
        return out;
    }
    let last = completions
        .iter()
        .map(|c| c.done_sec.max(c.send_sec))
        .max()
        .unwrap_or(0);
    for sec in 0..=last {
        let offered = completions.iter().filter(|c| c.send_sec == sec).count();
        let (mut ok, mut busy, mut timeout, mut error) = (0u64, 0u64, 0u64, 0u64);
        let ih = LogLinearHist::default();
        for c in completions.iter().filter(|c| c.done_sec == sec) {
            match c.outcome {
                Outcome::Ok => {
                    ok += 1;
                    ih.record(c.latency_us);
                }
                Outcome::Busy => busy += 1,
                Outcome::Timeout => timeout += 1,
                Outcome::Error => error += 1,
            }
        }
        let inflight_end = completions
            .iter()
            .filter(|c| c.send_sec <= sec && c.done_sec > sec)
            .count();
        let p = ih.percentiles();
        let _ = writeln!(
            out,
            "{{\"sec\":{sec},\"offered\":{offered},\"ok\":{ok},\"busy\":{busy},\
             \"timeout\":{timeout},\"error\":{error},\"inflight_end\":{inflight_end},\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            p.p50, p.p90, p.p99, p.max
        );
    }
    out
}

/// `spt loadgen`: drive the seeded mix closed-loop (default) or
/// open-loop (`--rate`), with optional NDJSON series, Prometheus body,
/// and SLO gating.
pub fn loadgen(a: &Args) -> Result<(), String> {
    let addr = a.get("addr").unwrap_or("127.0.0.1:7077").to_string();
    let requests: usize = a.get_or("requests", 50)?;
    let concurrency: usize = a.get_or("concurrency", 4)?;
    let seed: u64 = a.get_or("seed", 1)?;
    let shutdown = match a.get("shutdown") {
        None | Some("off") => false,
        Some("on") => true,
        Some(other) => return Err(format!("--shutdown: expected on|off, got {other}")),
    };
    let rate: Option<f64> = match a.get("rate") {
        None => None,
        Some(v) => {
            let r: f64 = v
                .parse()
                .map_err(|_| format!("--rate: cannot parse {v:?}"))?;
            if !(r.is_finite() && r > 0.0) {
                return Err("--rate must be a positive requests/second".into());
            }
            Some(r)
        }
    };
    let poisson = match a.get("arrivals") {
        None | Some("constant") => false,
        Some("poisson") => true,
        Some(other) => {
            return Err(format!(
                "--arrivals: expected constant|poisson, got {other}"
            ))
        }
    };
    if poisson && rate.is_none() {
        return Err("--arrivals needs --rate (open-loop mode)".into());
    }
    let slo = a.get("slo").map(Slo::parse).transpose()?;
    if requests == 0 || concurrency == 0 {
        return Err("--requests and --concurrency must be positive".into());
    }
    let mix = request_mix(seed, requests);
    let mix_digest = mix
        .iter()
        .fold(0u64, |acc, line| acc ^ fnv1a64(line.as_bytes()));

    // Deal requests round-robin so every connection sees an interleaved
    // slice of the mix (and, open loop, an increasing schedule).
    let clients = concurrency.min(requests);
    let started = Instant::now();
    let handles: Vec<_> = if let Some(rate) = rate {
        let offsets = arrival_offsets_us(requests, rate, poisson, seed);
        let mut slices: Vec<Vec<(u64, String)>> = vec![Vec::new(); clients];
        for (i, (line, off)) in mix.into_iter().zip(offsets).enumerate() {
            slices[i % clients].push((off, line));
        }
        slices
            .into_iter()
            .map(|items| {
                let addr = addr.clone();
                std::thread::spawn(move || run_open_client(&addr, items, started))
            })
            .collect()
    } else {
        let mut slices: Vec<Vec<String>> = vec![Vec::new(); clients];
        for (i, line) in mix.into_iter().enumerate() {
            slices[i % clients].push(line);
        }
        slices
            .into_iter()
            .map(|lines| {
                let addr = addr.clone();
                std::thread::spawn(move || run_closed_client(&addr, lines, started))
            })
            .collect()
    };
    let mut total = ClientResult::new();
    for h in handles {
        let t = h.join().map_err(|_| "client thread panicked")??;
        t.fold_into(&mut total)?;
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let replies = total.ok + total.busy + total.timeouts + total.errors;
    let achieved_rate = replies as f64 / wall;
    let p = total.hist.percentiles();

    println!("loadgen: {requests} requests, concurrency {concurrency}, seed {seed}");
    match rate {
        Some(r) => println!(
            "  mode open-loop, rate {r} req/s, arrivals {}",
            if poisson { "poisson" } else { "constant" }
        ),
        None => println!("  mode closed-loop"),
    }
    println!(
        "  ok {} (cached {}), busy {}, timeouts {}, errors {}",
        total.ok, total.cached, total.busy, total.timeouts, total.errors
    );
    println!(
        "  throughput {achieved_rate:.1} req/s over {wall:.2}s{}",
        match rate {
            Some(r) => format!(" (offered {r:.1} req/s)"),
            None => String::new(),
        }
    );
    println!(
        "  latency_us p50 {} p90 {} p99 {} p999 {} max {}",
        p.p50, p.p90, p.p99, p.p999, p.max
    );
    for (lat, id, corr) in &total.exemplars {
        println!("  slowest {lat}us id {id} corr {corr}");
    }
    println!(
        "  mix_digest {mix_digest:016x}  result_digest {:016x}",
        total.digest
    );

    if let Some(path) = a.get("series") {
        let body = series_ndjson(&total.completions);
        sp_bench::write_atomic(std::path::Path::new(path), &body)
            .map_err(|e| format!("--series {path}: {e}"))?;
        println!("  series {} rows -> {path}", body.lines().count());
    }
    if let Some(path) = a.get("prom") {
        let body = render_loadgen(&LoadgenSnapshot {
            mode: if rate.is_some() { "open" } else { "closed" },
            offered: requests as u64,
            ok: total.ok,
            busy: total.busy,
            timeouts: total.timeouts,
            errors: total.errors,
            offered_rate: rate.unwrap_or(0.0),
            achieved_rate,
            latency: &total.hist,
        });
        sp_bench::write_atomic(std::path::Path::new(path), &body)
            .map_err(|e| format!("--prom {path}: {e}"))?;
        println!("  prom -> {path}");
    }

    let mut slo_failed = false;
    if let Some(slo) = &slo {
        let failed = total.busy + total.timeouts + total.errors;
        let verdict = slo.evaluate(&Measured {
            p50_us: p.p50,
            p90_us: p.p90,
            p99_us: p.p99,
            p999_us: p.p999,
            max_us: p.max,
            error_rate: if replies == 0 {
                1.0
            } else {
                failed as f64 / replies as f64
            },
        });
        println!("slo_verdict {}", verdict.to_json().encode());
        slo_failed = !verdict.pass;
    }

    if shutdown {
        let mut c = run_shutdown(&addr)?;
        println!("  drain acknowledged: {}", c.remove(0));
    }
    if total.errors > 0 {
        return Err(format!("{} protocol errors", total.errors));
    }
    if slo_failed {
        return Err("slo violated (see slo_verdict above)".into());
    }
    Ok(())
}

fn run_shutdown(addr: &str) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"type\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv shutdown ack: {e}"))?;
    Ok(vec![reply.trim().to_string()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let offs = arrival_offsets_us(5, 100.0, false, 1);
        assert_eq!(offs, vec![0, 10_000, 20_000, 30_000, 40_000]);
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_monotone() {
        let a = arrival_offsets_us(50, 200.0, true, 7);
        let b = arrival_offsets_us(50, 200.0, true, 7);
        let c = arrival_offsets_us(50, 200.0, true, 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        // The mean gap approximates 1/rate = 5ms over 50 arrivals.
        let mean_gap = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!(
            (1_000.0..25_000.0).contains(&mean_gap),
            "mean gap {mean_gap}us wildly off 5000us"
        );
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        assert_eq!(request_mix(3, 20), request_mix(3, 20));
        assert_ne!(request_mix(3, 20), request_mix(4, 20));
    }

    #[test]
    fn absorb_classifies_outcomes_and_excludes_failures_from_latency() {
        let mut r = ClientResult::new();
        r.absorb(
            "{\"corr\":\"c7\",\"id\":1,\"ok\":true,\"cached\":false,\"micros\":10,\"result\":{\"x\":1}}",
            1_000,
            0,
            0,
        )
        .unwrap();
        r.absorb(
            "{\"corr\":\"c8\",\"id\":2,\"ok\":false,\"error\":\"busy\",\"detail\":\"full\"}",
            9_000_000,
            0,
            1,
        )
        .unwrap();
        r.absorb(
            "{\"corr\":\"c9\",\"id\":3,\"ok\":false,\"error\":\"timeout\",\"detail\":\"t\"}",
            9_000_000,
            1,
            1,
        )
        .unwrap();
        assert_eq!((r.ok, r.busy, r.timeouts, r.errors), (1, 1, 1, 0));
        // Only the ok reply's latency is in the histogram.
        assert_eq!(r.hist.count(), 1);
        assert_eq!(r.hist.max(), 1_000);
        assert_eq!(r.exemplars.len(), 1);
        assert_eq!(r.exemplars[0].2, "c7");
        assert_eq!(r.completions.len(), 3);
    }

    #[test]
    fn series_rows_cover_every_second_with_the_full_schema() {
        let completions = vec![
            Completion {
                send_sec: 0,
                done_sec: 0,
                latency_us: 500,
                outcome: Outcome::Ok,
            },
            Completion {
                send_sec: 0,
                done_sec: 2,
                latency_us: 2_100_000,
                outcome: Outcome::Ok,
            },
            Completion {
                send_sec: 1,
                done_sec: 1,
                latency_us: 9,
                outcome: Outcome::Busy,
            },
        ];
        let body = series_ndjson(&completions);
        let rows: Vec<&str> = body.lines().collect();
        assert_eq!(rows.len(), 3, "one row per second 0..=2");
        for (i, row) in rows.iter().enumerate() {
            let v = Json::parse(row).unwrap();
            assert_eq!(v.get("sec").and_then(Json::as_u64), Some(i as u64));
            for key in [
                "offered",
                "ok",
                "busy",
                "timeout",
                "error",
                "inflight_end",
                "p50_us",
                "p90_us",
                "p99_us",
                "max_us",
            ] {
                assert!(v.get(key).is_some(), "row {i} missing {key}: {row}");
            }
        }
        // Second 0: two sends, one ok done; the slow one still in flight.
        let v = Json::parse(rows[0]).unwrap();
        assert_eq!(v.get("offered").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("inflight_end").and_then(Json::as_u64), Some(1));
        // Second 1: busy completion counted, not in percentiles.
        let v = Json::parse(rows[1]).unwrap();
        assert_eq!(v.get("busy").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("p50_us").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn series_is_empty_for_no_completions() {
        assert_eq!(series_ndjson(&[]), "");
    }
}
