//! `--slo` specification parsing and evaluation for `spt loadgen` —
//! the piece that turns the load generator into a CI-usable latency
//! gate.
//!
//! A spec is a comma-separated list of clauses, each
//! `metric<=limit`: latency metrics (`p50|p90|p99|p999|max`) take a
//! limit with a `us`/`ms`/`s` unit suffix (bare numbers are
//! microseconds), and `error_rate` takes a percentage (`0.1%`) or a
//! bare ratio (`0.001`). Example:
//!
//! ```text
//! --slo "p99<=5ms,p999<=20ms,error_rate<=0.1%"
//! ```
//!
//! Evaluation produces a machine-readable one-line verdict
//! (`slo_verdict {...}`) and the caller exits non-zero when any clause
//! fails.

use sp_serve::Json;

/// One metric a clause can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Median latency.
    P50,
    /// 90th-percentile latency.
    P90,
    /// 99th-percentile latency.
    P99,
    /// 99.9th-percentile latency.
    P999,
    /// Maximum observed latency.
    Max,
    /// Non-ok replies (busy + timeout + error) over all replies.
    ErrorRate,
}

impl Metric {
    fn name(self) -> &'static str {
        match self {
            Metric::P50 => "p50",
            Metric::P90 => "p90",
            Metric::P99 => "p99",
            Metric::P999 => "p999",
            Metric::Max => "max",
            Metric::ErrorRate => "error_rate",
        }
    }

    fn is_latency(self) -> bool {
        self != Metric::ErrorRate
    }
}

/// One parsed `metric<=limit` clause. Latency limits are stored in
/// microseconds; the error-rate limit as a ratio in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The bounded metric.
    pub metric: Metric,
    /// The inclusive upper limit (us for latency, ratio for error_rate).
    pub limit: f64,
}

/// A parsed `--slo` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// The clauses, in spec order.
    pub clauses: Vec<Clause>,
}

/// The measured quantities a spec is judged against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Maximum latency, microseconds.
    pub max_us: u64,
    /// Non-ok replies over all replies, in `[0, 1]`.
    pub error_rate: f64,
}

/// One clause's outcome.
#[derive(Debug, Clone)]
pub struct ClauseResult {
    /// The clause that was checked.
    pub clause: Clause,
    /// The measured value (same unit as the clause limit).
    pub actual: f64,
    /// True when `actual <= limit`.
    pub pass: bool,
}

/// The whole spec's outcome.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// True when every clause passed.
    pub pass: bool,
    /// Per-clause outcomes, in spec order.
    pub rows: Vec<ClauseResult>,
}

impl Verdict {
    /// The machine-readable verdict object printed as `slo_verdict {..}`.
    pub fn to_json(&self) -> Json {
        Json::obj().push("pass", Json::Bool(self.pass)).push(
            "clauses",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        let unit = if r.clause.metric.is_latency() {
                            "us"
                        } else {
                            "ratio"
                        };
                        Json::obj()
                            .push("metric", Json::str(r.clause.metric.name()))
                            .push("limit", Json::num(r.clause.limit))
                            .push("actual", Json::num(r.actual))
                            .push("unit", Json::str(unit))
                            .push("pass", Json::Bool(r.pass))
                    })
                    .collect(),
            ),
        )
    }
}

/// Parse a latency limit with an optional unit suffix into microseconds.
fn parse_latency_limit(s: &str) -> Result<f64, String> {
    let (num, scale) = if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e6)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad latency limit {s:?} (want e.g. 5ms, 250us, 1s)"))?;
    if v < 0.0 || !v.is_finite() {
        return Err(format!("latency limit {s:?} must be finite and >= 0"));
    }
    Ok(v * scale)
}

/// Parse an error-rate limit: `0.1%` or a bare ratio like `0.001`.
fn parse_rate_limit(s: &str) -> Result<f64, String> {
    let (num, scale) = match s.strip_suffix('%') {
        Some(n) => (n, 1e-2),
        None => (s, 1.0),
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad error_rate limit {s:?} (want e.g. 0.1% or 0.001)"))?;
    let ratio = v * scale;
    if !(0.0..=1.0).contains(&ratio) {
        return Err(format!("error_rate limit {s:?} must be in [0, 100%]"));
    }
    Ok(ratio)
}

impl Slo {
    /// Parse a comma-separated spec like `p99<=5ms,error_rate<=0.1%`.
    pub fn parse(spec: &str) -> Result<Slo, String> {
        let mut clauses = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (lhs, rhs) = raw
                .split_once("<=")
                .ok_or_else(|| format!("slo clause {raw:?} must use metric<=limit"))?;
            let metric = match lhs.trim() {
                "p50" => Metric::P50,
                "p90" => Metric::P90,
                "p99" => Metric::P99,
                "p999" => Metric::P999,
                "max" => Metric::Max,
                "error_rate" => Metric::ErrorRate,
                other => {
                    return Err(format!(
                        "unknown slo metric {other:?}; expected p50|p90|p99|p999|max|error_rate"
                    ))
                }
            };
            let limit = if metric.is_latency() {
                parse_latency_limit(rhs.trim())?
            } else {
                parse_rate_limit(rhs.trim())?
            };
            clauses.push(Clause { metric, limit });
        }
        if clauses.is_empty() {
            return Err("empty slo spec".into());
        }
        Ok(Slo { clauses })
    }

    /// Judge `m` against every clause.
    pub fn evaluate(&self, m: &Measured) -> Verdict {
        let rows: Vec<ClauseResult> = self
            .clauses
            .iter()
            .map(|c| {
                let actual = match c.metric {
                    Metric::P50 => m.p50_us as f64,
                    Metric::P90 => m.p90_us as f64,
                    Metric::P99 => m.p99_us as f64,
                    Metric::P999 => m.p999_us as f64,
                    Metric::Max => m.max_us as f64,
                    Metric::ErrorRate => m.error_rate,
                };
                ClauseResult {
                    clause: c.clone(),
                    actual,
                    pass: actual <= c.limit,
                }
            })
            .collect();
        Verdict {
            pass: rows.iter().all(|r| r.pass),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_spec() {
        let slo = Slo::parse("p99<=5ms,p999<=20ms,error_rate<=0.1%").unwrap();
        assert_eq!(
            slo.clauses,
            vec![
                Clause {
                    metric: Metric::P99,
                    limit: 5_000.0
                },
                Clause {
                    metric: Metric::P999,
                    limit: 20_000.0
                },
                Clause {
                    metric: Metric::ErrorRate,
                    limit: 0.001
                },
            ]
        );
    }

    #[test]
    fn parses_every_unit_form() {
        let slo = Slo::parse("p50<=250us, max<=1s, p90<=750, error_rate<=0.05").unwrap();
        assert_eq!(slo.clauses[0].limit, 250.0);
        assert_eq!(slo.clauses[1].limit, 1e6);
        assert_eq!(slo.clauses[2].limit, 750.0); // bare number = us
        assert_eq!(slo.clauses[3].limit, 0.05); // bare number = ratio
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Slo::parse("").is_err());
        assert!(Slo::parse("p99>5ms").is_err(), "only <= is supported");
        assert!(Slo::parse("p42<=5ms").is_err(), "unknown metric");
        assert!(Slo::parse("p99<=fastpls").is_err(), "non-numeric limit");
        assert!(Slo::parse("error_rate<=150%").is_err(), "rate above 100%");
        assert!(Slo::parse("p99<=-3ms").is_err(), "negative latency");
    }

    #[test]
    fn evaluation_flags_only_the_violated_clauses() {
        let slo = Slo::parse("p99<=5ms,error_rate<=1%").unwrap();
        let m = Measured {
            p99_us: 7_100,
            error_rate: 0.002,
            ..Measured::default()
        };
        let v = slo.evaluate(&m);
        assert!(!v.pass);
        assert!(!v.rows[0].pass, "p99 7.1ms > 5ms must fail");
        assert!(v.rows[1].pass, "0.2% <= 1% must pass");
        let json = v.to_json().encode();
        assert!(json.contains("\"pass\":false"), "got {json}");
        assert!(
            json.contains("\"metric\":\"p99\",\"limit\":5000,\"actual\":7100"),
            "got {json}"
        );
    }

    #[test]
    fn boundary_values_pass() {
        let slo = Slo::parse("p99<=5ms").unwrap();
        let m = Measured {
            p99_us: 5_000,
            ..Measured::default()
        };
        assert!(slo.evaluate(&m).pass, "limits are inclusive");
    }
}
