//! `spt top` — a live terminal dashboard over a running sp-serve
//! daemon. Polls the NDJSON `stats` command at `--interval-ms`, keeps
//! short histories, and redraws in place with plain ANSI (cursor-up +
//! line-clear — no terminal library), rendering throughput, cache hit
//! ratio, queue depth, worker utilization, and latency percentiles
//! with [`sp_bench::sparkline`] history rows.
//!
//! `--once` polls a single time and prints one static frame (no ANSI);
//! `--once --json` prints the raw `stats` result object for scripting
//! — the shape is golden-pinned by `tests/top_snapshot.rs` and
//! schema-checked in CI.

use crate::args::Args;
use sp_serve::Json;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// History depth for the sparkline rows.
const HISTORY: usize = 32;

/// One decoded `stats` snapshot.
#[derive(Debug)]
struct Sample {
    uptime_ms: u64,
    requests_total: u64,
    busy: u64,
    timeouts: u64,
    errors: u64,
    cache_entries: u64,
    hit_ratio: f64,
    queue_depth: u64,
    queue_capacity: u64,
    workers: u64,
    completed: u64,
    utilization: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

fn field_u64(v: &Json, obj: &str, key: &str) -> Result<u64, String> {
    v.get(obj)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("stats missing {obj}.{key}"))
}

fn field_f64(v: &Json, obj: &str, key: &str) -> Result<f64, String> {
    v.get(obj)
        .and_then(|o| o.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("stats missing {obj}.{key}"))
}

impl Sample {
    fn decode(v: &Json) -> Result<Sample, String> {
        Ok(Sample {
            uptime_ms: v
                .get("uptime_ms")
                .and_then(Json::as_u64)
                .ok_or("stats missing uptime_ms")?,
            requests_total: field_u64(v, "requests", "total")?,
            busy: field_u64(v, "requests", "busy")?,
            timeouts: field_u64(v, "requests", "timeouts")?,
            errors: field_u64(v, "requests", "errors")?,
            cache_entries: field_u64(v, "cache", "entries")?,
            hit_ratio: field_f64(v, "cache", "hit_ratio")?,
            queue_depth: field_u64(v, "queue", "depth")?,
            queue_capacity: field_u64(v, "queue", "capacity")?,
            workers: field_u64(v, "workers", "count")?,
            completed: field_u64(v, "workers", "completed")?,
            utilization: field_f64(v, "workers", "utilization")?,
            p50_us: field_u64(v, "latency", "p50_us")?,
            p90_us: field_u64(v, "latency", "p90_us")?,
            p99_us: field_u64(v, "latency", "p99_us")?,
            p999_us: field_u64(v, "latency", "p999_us")?,
            max_us: field_u64(v, "latency", "max_us")?,
        })
    }
}

/// One `stats` round trip on a fresh connection; returns the reply's
/// `result` object.
fn poll_stats(addr: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"type\":\"stats\"}\n")
        .map_err(|e| format!("send stats: {e}"))?;
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv stats: {e}"))?;
    if n == 0 {
        return Err("recv stats: connection closed".into());
    }
    let v = Json::parse(reply.trim()).map_err(|e| format!("bad stats reply: {e}"))?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("stats refused: {}", reply.trim()));
    }
    v.get("result")
        .cloned()
        .ok_or_else(|| "stats reply missing result".into())
}

/// Bounded history ring for one sparkline row.
struct Ring(VecDeque<u64>);

impl Ring {
    fn new() -> Ring {
        Ring(VecDeque::with_capacity(HISTORY))
    }

    fn push(&mut self, v: u64) {
        if self.0.len() == HISTORY {
            self.0.pop_front();
        }
        self.0.push_back(v);
    }

    fn spark(&self) -> String {
        sp_bench::sparkline(&self.0.iter().copied().collect::<Vec<_>>())
    }
}

/// Per-metric histories the live view scrolls through.
struct Histories {
    throughput: Ring,
    hit_ratio: Ring,
    queue: Ring,
    util: Ring,
    p99: Ring,
}

impl Histories {
    fn new() -> Histories {
        Histories {
            throughput: Ring::new(),
            hit_ratio: Ring::new(),
            queue: Ring::new(),
            util: Ring::new(),
            p99: Ring::new(),
        }
    }
}

/// Render one frame; returns the text and its line count. Every line
/// opens with an erase-line escape when `ansi` is set, so in-place
/// redraws never leave stale tails.
fn render_frame(
    addr: &str,
    s: &Sample,
    throughput: f64,
    h: &Histories,
    ansi: bool,
) -> (String, usize) {
    let clear = if ansi { "\x1b[2K" } else { "" };
    let mut out = String::new();
    let mut lines = 0;
    let row = |text: String, out: &mut String| {
        out.push_str(clear);
        out.push_str(&text);
        out.push('\n');
    };
    row(
        format!("spt top — {addr}   uptime {:.1}s", s.uptime_ms as f64 / 1e3),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  requests  {:>8} total  {throughput:>8.1} req/s  {}",
            s.requests_total,
            h.throughput.spark()
        ),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  outcomes  busy {} timeouts {} errors {}",
            s.busy, s.timeouts, s.errors
        ),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  cache     {:>8} entries  hit_ratio {:.2}  {}",
            s.cache_entries,
            s.hit_ratio,
            h.hit_ratio.spark()
        ),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  queue     {:>4}/{:<4} depth  {}",
            s.queue_depth,
            s.queue_capacity,
            h.queue.spark()
        ),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  workers   {:>4} util {:.2}  completed {}  {}",
            s.workers,
            s.utilization,
            s.completed,
            h.util.spark()
        ),
        &mut out,
    );
    lines += 1;
    row(
        format!(
            "  latency   p50 {}us p90 {}us p99 {}us p999 {}us max {}us  {}",
            s.p50_us,
            s.p90_us,
            s.p99_us,
            s.p999_us,
            s.max_us,
            h.p99.spark()
        ),
        &mut out,
    );
    lines += 1;
    (out, lines)
}

/// `spt top`: live dashboard, or `--once [--json]` snapshot.
pub fn top(a: &Args) -> Result<(), String> {
    let addr = a.get("addr").unwrap_or("127.0.0.1:7077").to_string();
    let once = a.switch("once");
    let json = a.switch("json");
    let interval_ms: u64 = a.get_or("interval-ms", 1_000)?;
    let count: u64 = a.get_or("count", 0)?;
    if json && !once {
        return Err("--json needs --once (live mode is for terminals)".into());
    }
    if interval_ms == 0 {
        return Err("--interval-ms must be positive".into());
    }
    if once {
        let v = poll_stats(&addr)?;
        if json {
            println!("{}", v.encode());
        } else {
            let s = Sample::decode(&v)?;
            let (frame, _) = render_frame(&addr, &s, 0.0, &Histories::new(), false);
            print!("{frame}");
        }
        return Ok(());
    }
    let mut h = Histories::new();
    let mut prev: Option<Sample> = None;
    let mut drawn_lines = 0usize;
    let mut frames = 0u64;
    loop {
        let v = poll_stats(&addr)?;
        let s = Sample::decode(&v)?;
        // Throughput from the requests-total delta over the uptime
        // delta, so a missed poll can't inflate the rate.
        let throughput = match &prev {
            Some(p) if s.uptime_ms > p.uptime_ms => {
                (s.requests_total.saturating_sub(p.requests_total)) as f64
                    / ((s.uptime_ms - p.uptime_ms) as f64 / 1e3)
            }
            _ => 0.0,
        };
        h.throughput.push(throughput.round() as u64);
        h.hit_ratio.push((s.hit_ratio * 100.0).round() as u64);
        h.queue.push(s.queue_depth);
        h.util.push((s.utilization * 100.0).round() as u64);
        h.p99.push(s.p99_us);
        if drawn_lines > 0 {
            print!("\x1b[{drawn_lines}A");
        }
        let (frame, lines) = render_frame(&addr, &s, throughput, &h, true);
        print!("{frame}");
        let _ = std::io::stdout().flush();
        drawn_lines = lines;
        prev = Some(s);
        frames += 1;
        if count > 0 && frames >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_fixture() -> Json {
        Json::parse(
            r#"{"uptime_ms":5000,
                "requests":{"total":42,"by_kind":{"ping":40},"busy":1,"timeouts":0,"errors":1},
                "cache":{"entries":3,"capacity":256,"hits":9,"misses":3,"hit_ratio":0.75},
                "queue":{"depth":2,"capacity":64,"rejected":1},
                "workers":{"count":4,"completed":12,"panicked":0,"utilization":0.5},
                "latency_us":[{"le_us":100,"count":40}],
                "latency":{"count":42,"sum_us":4200,"min_us":10,"max_us":900,
                           "p50_us":90,"p90_us":200,"p99_us":700,"p999_us":900}}"#,
        )
        .unwrap()
    }

    #[test]
    fn sample_decodes_the_stats_shape() {
        let s = Sample::decode(&stats_fixture()).unwrap();
        assert_eq!(s.requests_total, 42);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.p99_us, 700);
        assert!((s.hit_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sample_decode_reports_the_missing_field() {
        let mut v = stats_fixture();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "latency");
        }
        let err = Sample::decode(&v).unwrap_err();
        assert!(err.contains("latency"), "got {err}");
    }

    #[test]
    fn frame_renders_without_ansi_when_static() {
        let s = Sample::decode(&stats_fixture()).unwrap();
        let (frame, lines) = render_frame("127.0.0.1:1", &s, 12.5, &Histories::new(), false);
        assert_eq!(lines, frame.lines().count());
        assert!(!frame.contains('\x1b'), "static frame must be ANSI-free");
        assert!(frame.contains("p99 700us"), "got {frame}");
        assert!(frame.contains("hit_ratio 0.75"), "got {frame}");
    }

    #[test]
    fn frame_clears_lines_in_live_mode() {
        let s = Sample::decode(&stats_fixture()).unwrap();
        let (frame, lines) = render_frame("127.0.0.1:1", &s, 0.0, &Histories::new(), true);
        assert_eq!(frame.matches("\x1b[2K").count(), lines);
    }

    #[test]
    fn ring_is_bounded() {
        let mut r = Ring::new();
        for i in 0..(HISTORY as u64 + 10) {
            r.push(i);
        }
        assert_eq!(r.0.len(), HISTORY);
        assert_eq!(r.0.front().copied(), Some(10));
    }
}
