//! Snapshot test of every `spt` help page: the top-level usage plus
//! `spt <command> --help` for each subcommand, pinned byte-for-byte in
//! one fixture so any flag change is a deliberate fixture update.
//!
//! Re-bless after an intentional change:
//!
//! ```text
//! SP_BLESS=1 cargo test -p sp-cli --test help_snapshot
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Must match `help::COMMANDS` in the binary (asserted indirectly: a
/// command missing here would leave its page out of the fixture, and a
/// page for an unknown command exits non-zero below).
const COMMANDS: [&str; 15] = [
    "affinity",
    "sweep",
    "delinquent",
    "phases",
    "reuse",
    "adaptive",
    "selection",
    "dump",
    "bench",
    "events",
    "trace",
    "report",
    "serve",
    "loadgen",
    "top",
];

fn spt(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spt"))
        .args(args)
        .output()
        .expect("run spt")
}

#[test]
fn help_pages_match_fixture() {
    let mut snapshot = String::new();
    let top = spt(&["--help"]);
    assert!(top.status.success(), "spt --help failed");
    snapshot.push_str("===== spt --help =====\n");
    snapshot.push_str(&String::from_utf8(top.stdout).unwrap());
    for cmd in COMMANDS {
        let out = spt(&[cmd, "--help"]);
        assert!(out.status.success(), "spt {cmd} --help failed");
        assert!(out.stderr.is_empty(), "spt {cmd} --help wrote to stderr");
        snapshot.push_str(&format!("===== spt {cmd} --help =====\n"));
        snapshot.push_str(&String::from_utf8(out.stdout).unwrap());
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/help.txt");
    if std::env::var_os("SP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &snapshot).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with SP_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, snapshot,
        "help output drifted; if intentional, re-bless with SP_BLESS=1"
    );
}

#[test]
fn unknown_command_help_fails_cleanly() {
    let out = spt(&["warp", "--help"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "stderr: {err}");
}

#[test]
fn every_listed_command_is_dispatchable() {
    // A command with a help page but no dispatch arm (or vice versa)
    // would pass the snapshot; catch it by exercising the parser. An
    // unknown *flag-less* invocation of each command must not report
    // "unknown command" (anything else — missing flags, run output — is
    // command-specific and fine here).
    for cmd in COMMANDS {
        if cmd == "serve" || cmd == "loadgen" || cmd == "top" {
            continue; // would bind a socket / need a daemon
        }
        let out = spt(&[cmd, "--bad-flag"]);
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            !err.contains("unknown command"),
            "spt {cmd} not dispatched: {err}"
        );
    }
}
