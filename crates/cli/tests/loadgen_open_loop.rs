//! End-to-end `spt loadgen` tests against an in-process sp-serve
//! daemon on an ephemeral port: open-loop determinism and NDJSON
//! series schema, SLO gate exit codes, and the closed-loop summary
//! shapes CI's serve-smoke step greps.

use sp_serve::{Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;

/// Start a daemon on an ephemeral port.
fn start() -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// Drain the daemon and join its accept loop.
fn drain(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let stream = TcpStream::connect(addr).expect("connect for drain");
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    handle.join().unwrap().unwrap();
}

fn spt(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spt"))
        .args(args)
        .output()
        .expect("run spt")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn grab<'a>(haystack: &'a str, marker: &str) -> &'a str {
    let at = haystack
        .find(marker)
        .unwrap_or_else(|| panic!("missing {marker:?} in {haystack}"));
    haystack[at..].split_whitespace().nth(1).unwrap()
}

#[test]
fn open_loop_is_deterministic_and_writes_the_series() {
    let (addr, handle) = start();
    let addr_s = addr.to_string();
    let dir = std::env::temp_dir().join("spt_loadgen_open_loop_test");
    std::fs::create_dir_all(&dir).unwrap();
    let s1 = dir.join("series1.ndjson");
    let s2 = dir.join("series2.ndjson");
    let prom = dir.join("loadgen.prom");

    let run = |series: &std::path::Path| {
        spt(&[
            "loadgen",
            "--addr",
            &addr_s,
            "--requests",
            "40",
            "--concurrency",
            "4",
            "--seed",
            "5",
            "--rate",
            "400",
            "--arrivals",
            "poisson",
            "--series",
            series.to_str().unwrap(),
            "--prom",
            prom.to_str().unwrap(),
        ])
    };
    let a = run(&s1);
    assert!(a.status.success(), "first run failed: {}", stdout_of(&a));
    let b = run(&s2);
    assert!(b.status.success(), "second run failed: {}", stdout_of(&b));
    let (out_a, out_b) = (stdout_of(&a), stdout_of(&b));

    // Same seed ⇒ identical request mix (and byte-identical results,
    // since the warm run answers from the daemon's cache).
    assert_eq!(grab(&out_a, "mix_digest"), grab(&out_b, "mix_digest"));
    assert_eq!(grab(&out_a, "result_digest"), grab(&out_b, "result_digest"));
    assert!(out_a.contains("mode open-loop"), "got {out_a}");

    // Every series row carries the full schema; offered sends total the
    // request count.
    let series_keys = [
        "sec",
        "offered",
        "ok",
        "busy",
        "timeout",
        "error",
        "inflight_end",
        "p50_us",
        "p90_us",
        "p99_us",
        "max_us",
    ];
    let mut offered_total = 0u64;
    for (path, out) in [(&s1, &out_a), (&s2, &out_b)] {
        let body = std::fs::read_to_string(path).unwrap();
        assert!(!body.is_empty(), "empty series from {out}");
        for row in body.lines() {
            let v = Json::parse(row).expect("series row is JSON");
            for key in series_keys {
                assert!(v.get(key).is_some(), "row missing {key}: {row}");
            }
        }
        if path == &s1 {
            offered_total = body
                .lines()
                .map(|r| {
                    Json::parse(r)
                        .unwrap()
                        .get("offered")
                        .and_then(Json::as_u64)
                        .unwrap()
                })
                .sum();
        }
    }
    assert_eq!(offered_total, 40, "offered sends must total --requests");

    // The Prometheus body came out through the linted renderer.
    let prom_body = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_body.contains("# TYPE sp_loadgen_requests_total counter"));
    assert!(prom_body.contains("sp_loadgen_open_loop 1"), "{prom_body}");
    assert!(prom_body.contains("sp_build_info{version="), "{prom_body}");

    drain(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slo_gate_exit_codes() {
    let (addr, handle) = start();
    let addr_s = addr.to_string();
    let base = [
        "loadgen",
        "--addr",
        &addr_s,
        "--requests",
        "10",
        "--concurrency",
        "2",
        "--seed",
        "3",
    ];

    // Generous SLO: must pass with exit 0 and a machine-readable verdict.
    let mut args = base.to_vec();
    args.extend(["--slo", "p99<=60s,p999<=60s,error_rate<=100%"]);
    let out = spt(&args);
    let text = stdout_of(&out);
    assert!(out.status.success(), "generous slo failed: {text}");
    let verdict_line = text
        .lines()
        .find(|l| l.starts_with("slo_verdict "))
        .expect("verdict line");
    let v = Json::parse(verdict_line.strip_prefix("slo_verdict ").unwrap()).unwrap();
    assert_eq!(v.get("pass").and_then(Json::as_bool), Some(true));
    assert!(v.get("clauses").and_then(Json::as_arr).unwrap().len() == 3);

    // Impossible SLO: non-zero exit, verdict says which clause failed.
    let mut args = base.to_vec();
    args.extend(["--slo", "max<=0us"]);
    let out = spt(&args);
    let text = stdout_of(&out);
    assert!(!out.status.success(), "impossible slo must fail");
    assert!(text.contains("\"pass\":false"), "got {text}");

    // Malformed spec: non-zero exit before any load is generated.
    let mut args = base.to_vec();
    args.extend(["--slo", "p42<=1ms"]);
    let out = spt(&args);
    assert!(!out.status.success(), "bad spec must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown slo metric"), "stderr: {err}");

    drain(addr, handle);
}

#[test]
fn closed_loop_summary_keeps_the_ci_grep_shapes() {
    let (addr, handle) = start();
    let out = spt(&[
        "loadgen",
        "--addr",
        &addr.to_string(),
        "--requests",
        "12",
        "--concurrency",
        "3",
        "--seed",
        "1",
    ]);
    let text = stdout_of(&out);
    assert!(out.status.success(), "closed loop failed: {text}");
    assert!(text.contains("mode closed-loop"), "got {text}");
    // The shapes CI's serve-smoke step greps/seds: digests and exactly
    // one line carrying `cached N`.
    assert!(text.contains("mix_digest "), "got {text}");
    assert!(text.contains("result_digest "), "got {text}");
    let cached_lines = text.lines().filter(|l| l.contains("cached ")).count();
    assert_eq!(cached_lines, 1, "got {text}");
    // Outcome counters are distinct and the percentile line comes from
    // the shared histogram (p999 present).
    assert!(text.contains("busy "), "got {text}");
    assert!(text.contains("timeouts "), "got {text}");
    assert!(
        text.contains("latency_us p50 ") && text.contains(" p999 "),
        "got {text}"
    );
    drain(addr, handle);
}
