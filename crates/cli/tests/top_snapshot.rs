//! `spt top --once --json` golden snapshot: the machine-readable
//! stats shape is pinned against a fixture with every numeric value
//! normalized to 0 (values vary run to run; the schema must not).
//!
//! Re-bless after an intentional schema change:
//!
//! ```text
//! SP_BLESS=1 cargo test -p sp-cli --test top_snapshot
//! ```

use sp_serve::{Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;

fn start() -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn drain(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let stream = TcpStream::connect(addr).expect("connect for drain");
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    handle.join().unwrap().unwrap();
}

/// Zero every number and empty every array so only the schema remains.
/// Arrays are emptied (not recursed) because histogram bucket rows vary
/// in count with the data's spread.
fn normalize(v: &Json) -> Json {
    match v {
        Json::Num(_) => Json::Num(0.0),
        Json::Arr(_) => Json::Arr(Vec::new()),
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(k, val)| (k.clone(), normalize(val)))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn top_once_json_matches_the_golden_schema() {
    let (addr, handle) = start();
    let addr_s = addr.to_string();

    // Put a little traffic through so the histogram rows exist (they
    // are normalized away, but the summary keys must be present).
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..5 {
            writer
                .write_all(format!("{{\"id\":{i},\"type\":\"ping\"}}\n").as_bytes())
                .unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
        }
    }

    let out = Command::new(env!("CARGO_BIN_EXE_spt"))
        .args(["top", "--addr", &addr_s, "--once", "--json"])
        .output()
        .expect("run spt top");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "spt top failed: {text}");
    let v = Json::parse(text.trim()).expect("top --json output is JSON");
    let snapshot = normalize(&v).encode() + "\n";

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/top_once.json");
    if std::env::var_os("SP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &snapshot).unwrap();
    } else {
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with SP_BLESS=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            expected, snapshot,
            "spt top --once --json schema drifted; if intentional, re-bless with SP_BLESS=1"
        );
    }

    // The human frame works too, without ANSI escapes.
    let out = Command::new(env!("CARGO_BIN_EXE_spt"))
        .args(["top", "--addr", &addr_s, "--once"])
        .output()
        .expect("run spt top");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "spt top --once failed: {text}");
    assert!(text.contains("spt top —"), "got {text}");
    assert!(text.contains("latency"), "got {text}");
    assert!(!text.contains('\x1b'), "static frame must be ANSI-free");

    drain(addr, handle);
}

#[test]
fn top_live_mode_renders_bounded_frames() {
    let (addr, handle) = start();
    // Two fast frames, then exit: exercises the redraw path end to end.
    let out = Command::new(env!("CARGO_BIN_EXE_spt"))
        .args([
            "top",
            "--addr",
            &addr.to_string(),
            "--interval-ms",
            "20",
            "--count",
            "2",
        ])
        .output()
        .expect("run spt top live");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "live top failed: {text}");
    // Second frame repositions with cursor-up and clears each line.
    assert!(text.contains("\x1b[7A"), "missing cursor-up: {text:?}");
    assert!(text.matches("\x1b[2K").count() >= 14, "got {text:?}");
    drain(addr, handle);
}

#[test]
fn top_rejects_json_without_once() {
    let out = Command::new(env!("CARGO_BIN_EXE_spt"))
        .args(["top", "--json"])
        .output()
        .expect("run spt top");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--json needs --once"), "stderr: {err}");
}
