//! Feedback-directed (adaptive) prefetch-distance control.
//!
//! The paper selects the prefetch distance *offline* from the
//! Set-Affinity profile and lists runtime adaptation as future work; its
//! related-work section contrasts with feedback-directed prefetching
//! (Srinath et al., refs \[6\]/\[34\]), which throttles hardware prefetchers
//! from accuracy / lateness / pollution feedback. This module implements
//! both directions on top of the SP engine:
//!
//! * [`FeedbackController`] — an FDP-style controller: each epoch it
//!   reads the epoch's prefetch accuracy, lateness (partial hits among
//!   useful prefetches), and pollution rate, and grows or shrinks the
//!   distance accordingly.
//! * [`BoundedFeedbackController`] — the same controller clamped by the
//!   Set-Affinity bound, i.e. the paper's static analysis used as a
//!   safety ceiling for the dynamic policy (the natural synthesis of the
//!   two ideas).
//!
//! Both plug into the engine through
//! [`crate::engine::HelperSchedule`].

use crate::engine::{run_scheduled, EngineOptions, HelperSchedule, RunResult};
use crate::params::SpParams;
use crate::skip::HelperStep;
use sp_cachesim::{CacheConfig, Cycle, MemStats, MemorySystem};
use sp_trace::HotLoopTrace;

/// Per-epoch feedback handed to an [`AdaptivePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochFeedback {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Parameters that were active during the epoch.
    pub params: SpParams,
    /// Helper prefetches issued during the epoch.
    pub issued: u64,
    /// L2 lines the helper actually brought in during the epoch (the
    /// accuracy denominator — most helper loads hit cache and fill
    /// nothing).
    pub fills: u64,
    /// Helper prefetches first-used by the main thread during the epoch.
    pub useful: u64,
    /// Main-thread partial hits during the epoch (late prefetches).
    pub partial_hits: u64,
    /// Main-thread totally misses during the epoch.
    pub total_misses: u64,
    /// Pollution events during the epoch.
    pub pollution: u64,
}

impl EpochFeedback {
    /// Useful prefetches per helper-brought line (1.0 when the helper
    /// brought nothing, so an idle helper is never throttled).
    pub fn accuracy(&self) -> f64 {
        if self.fills == 0 {
            1.0
        } else {
            self.useful as f64 / self.fills as f64
        }
    }

    /// Partial hits per useful prefetch — high values mean prefetches
    /// arrive late (distance too short).
    pub fn lateness(&self) -> f64 {
        if self.useful == 0 {
            0.0
        } else {
            self.partial_hits as f64 / self.useful as f64
        }
    }

    /// Pollution events per issued prefetch — high values mean the
    /// distance is too long.
    pub fn pollution_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.pollution as f64 / self.issued as f64
        }
    }
}

/// A policy that picks the next epoch's parameters from feedback.
pub trait AdaptivePolicy {
    /// Parameters for the first epoch.
    fn initial(&self) -> SpParams;
    /// Parameters for the epoch following `feedback`'s.
    fn adjust(&mut self, feedback: &EpochFeedback) -> SpParams;
}

/// FDP-style dynamic distance controller (see module docs).
#[derive(Debug, Clone)]
pub struct FeedbackController {
    /// Current prefetch distance.
    distance: u32,
    /// Prefetch ratio (fixed; the paper fixes RP per application).
    rp: f64,
    /// Inclusive distance range the controller moves within.
    pub min_distance: u32,
    /// Inclusive upper limit (`u32::MAX` when unclamped).
    pub max_distance: u32,
    /// Lateness above this grows the distance.
    pub lateness_hi: f64,
    /// Pollution rate above this shrinks the distance.
    pub pollution_hi: f64,
    /// Accuracy below this shrinks the distance (prefetches evicted or
    /// overshooting the loop — FDP's throttle-on-inaccuracy rule).
    pub accuracy_lo: f64,
}

impl FeedbackController {
    /// A controller starting at `distance` with ratio `rp`, moving in
    /// `[1, u32::MAX]`.
    pub fn new(distance: u32, rp: f64) -> Self {
        FeedbackController {
            distance: distance.max(1),
            rp,
            min_distance: 1,
            max_distance: u32::MAX,
            lateness_hi: 0.05,
            pollution_hi: 0.25,
            accuracy_lo: 0.5,
        }
    }

    /// Clamp the controller by the Set-Affinity bound (the paper's
    /// `min SA / 2` rule), yielding the hybrid static+dynamic policy.
    pub fn bounded(mut self, max_distance: u32) -> Self {
        self.max_distance = max_distance.max(self.min_distance);
        self.distance = self.distance.min(self.max_distance);
        self
    }

    /// The distance the controller currently sits at.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    fn params(&self) -> SpParams {
        SpParams::from_distance_rp(self.distance, self.rp)
    }
}

impl AdaptivePolicy for FeedbackController {
    fn initial(&self) -> SpParams {
        self.params()
    }

    fn adjust(&mut self, fb: &EpochFeedback) -> SpParams {
        // FDP's decision order: pollution or inaccuracy dominate
        // (shrink), then lateness (grow); otherwise hold.
        if fb.pollution_rate() > self.pollution_hi || fb.accuracy() < self.accuracy_lo {
            self.distance = (self.distance / 2).max(self.min_distance);
        } else if fb.lateness() > self.lateness_hi {
            self.distance = self
                .distance
                .saturating_mul(2)
                .min(self.max_distance)
                .max(1);
        }
        self.params()
    }
}

/// The hybrid policy: [`FeedbackController`] with the Set-Affinity bound
/// as its ceiling.
pub type BoundedFeedbackController = FeedbackController;

/// One epoch as recorded by an adaptive run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// The feedback computed at the end of the epoch.
    pub feedback: EpochFeedback,
    /// The distance chosen for the *next* epoch.
    pub next_distance: u32,
}

/// Result of an adaptive run: the usual [`RunResult`] plus the epoch log.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRunResult {
    /// The run outcome.
    pub run: RunResult,
    /// Per-epoch feedback and decisions, in order.
    pub epochs: Vec<EpochRecord>,
}

/// The engine-facing schedule wrapping an [`AdaptivePolicy`].
struct AdaptiveSchedule<'a, P: AdaptivePolicy> {
    policy: &'a mut P,
    cur: SpParams,
    epoch_len: usize,
    /// Iteration at which the current epoch (and its round phase) began.
    epoch_start: usize,
    epoch_index: usize,
    last: MemStats,
    records: Vec<EpochRecord>,
}

impl<P: AdaptivePolicy> HelperSchedule for AdaptiveSchedule<'_, P> {
    fn step(&self, iter: usize) -> HelperStep {
        // Same round structure as the static plan, but phased from the
        // epoch start so a distance change restarts the rounds cleanly.
        let round = self.cur.round_len() as usize;
        let phase = iter.saturating_sub(self.epoch_start) % round;
        if phase < self.cur.a_ski as usize {
            HelperStep::Chase
        } else {
            HelperStep::Prefetch
        }
    }

    fn window(&self) -> usize {
        self.cur.round_len() as usize
    }

    fn jump_distance(&self) -> u32 {
        self.cur.a_ski
    }

    fn on_main_iter(&mut self, main_iter: usize, mem: &MemorySystem, _clock: Cycle) {
        if (main_iter + 1) < self.epoch_start + self.epoch_len {
            return;
        }
        let s = mem.stats();
        let fb = EpochFeedback {
            epoch: self.epoch_index,
            params: self.cur,
            issued: s.prefetches_issued[0] - self.last.prefetches_issued[0],
            fills: s.l2_fills_by[1] - self.last.l2_fills_by[1],
            useful: s.prefetches_useful[0] - self.last.prefetches_useful[0],
            partial_hits: s.main.partial_hits - self.last.main.partial_hits,
            total_misses: s.main.total_misses - self.last.main.total_misses,
            pollution: s.pollution.total() - self.last.pollution.total(),
        };
        self.cur = self.policy.adjust(&fb);
        self.records.push(EpochRecord {
            feedback: fb,
            next_distance: self.cur.a_ski,
        });
        self.last = s.clone();
        self.epoch_start = main_iter + 1;
        self.epoch_index += 1;
    }
}

/// Run SP with an adaptive distance policy, adjusting every `epoch_len`
/// outer iterations of the main thread.
pub fn run_sp_adaptive<P: AdaptivePolicy>(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    policy: &mut P,
    epoch_len: usize,
) -> AdaptiveRunResult {
    assert!(epoch_len > 0, "epoch length must be positive");
    let mut schedule = AdaptiveSchedule {
        cur: policy.initial(),
        policy,
        epoch_len,
        epoch_start: 0,
        epoch_index: 0,
        last: MemStats::default(),
        records: Vec::new(),
    };
    let run = run_scheduled(trace, cache_cfg, &mut schedule, EngineOptions::default());
    AdaptiveRunResult {
        run,
        epochs: schedule.records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cachesim::CacheGeometry;
    use sp_trace::synth;

    fn cfg() -> CacheConfig {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(1024, 2, 64),
            l2: CacheGeometry::new(16 * 1024, 4, 64),
            hw_prefetchers: false,
            ..CacheConfig::scaled_default()
        }
    }

    #[test]
    fn epochs_cover_the_run() {
        let t = synth::sequential(1000, 2, 0, 64, 0);
        let mut p = FeedbackController::new(4, 0.5);
        let r = run_sp_adaptive(&t, cfg(), &mut p, 100);
        // 1000 iterations / 100 per epoch -> 10 boundary crossings, the
        // last at iteration 999 (no following epoch).
        assert_eq!(r.epochs.len(), 10);
        for (i, e) in r.epochs.iter().enumerate() {
            assert_eq!(e.feedback.epoch, i);
        }
        assert_eq!(r.run.outer_iters, 1000);
    }

    #[test]
    fn distance_stays_within_configured_range() {
        let t = synth::random(2000, 4, 0, 1 << 20, 3, 0);
        let mut p = FeedbackController::new(8, 0.5).bounded(32);
        let r = run_sp_adaptive(&t, cfg(), &mut p, 50);
        for e in &r.epochs {
            assert!(
                e.next_distance >= 1 && e.next_distance <= 32,
                "{:?}",
                e.next_distance
            );
        }
    }

    #[test]
    fn lateness_grows_the_distance() {
        let mut p = FeedbackController::new(2, 0.5);
        let fb = EpochFeedback {
            epoch: 0,
            params: SpParams::new(2, 2),
            issued: 100,
            fills: 90,
            useful: 80,
            partial_hits: 40, // 50% late
            total_misses: 10,
            pollution: 0,
        };
        let next = p.adjust(&fb);
        assert_eq!(next.a_ski, 4, "distance must double on high lateness");
    }

    #[test]
    fn pollution_shrinks_the_distance_and_dominates_lateness() {
        let mut p = FeedbackController::new(16, 0.5);
        let fb = EpochFeedback {
            epoch: 0,
            params: SpParams::new(16, 16),
            issued: 100,
            fills: 90,
            useful: 50,
            partial_hits: 50,
            total_misses: 40,
            pollution: 60, // 60% pollution
        };
        let next = p.adjust(&fb);
        assert_eq!(next.a_ski, 8, "pollution must halve the distance");
    }

    #[test]
    fn stable_epoch_holds_the_distance() {
        let mut p = FeedbackController::new(8, 0.5);
        let fb = EpochFeedback {
            epoch: 0,
            params: SpParams::new(8, 8),
            issued: 100,
            fills: 98,
            useful: 95,
            partial_hits: 1,
            total_misses: 5,
            pollution: 2,
        };
        assert_eq!(p.adjust(&fb).a_ski, 8);
    }

    #[test]
    fn accuracy_and_rates_handle_zero_denominators() {
        let fb = EpochFeedback {
            epoch: 0,
            params: SpParams::new(1, 1),
            issued: 0,
            fills: 0,
            useful: 0,
            partial_hits: 0,
            total_misses: 0,
            pollution: 0,
        };
        assert_eq!(fb.accuracy(), 1.0, "idle helper must not look inaccurate");
        assert_eq!(fb.lateness(), 0.0);
        assert_eq!(fb.pollution_rate(), 0.0);
    }

    #[test]
    fn adaptive_run_is_deterministic() {
        let t = synth::random(800, 3, 0, 1 << 18, 9, 2);
        let run = || {
            let mut p = FeedbackController::new(4, 0.5).bounded(64);
            run_sp_adaptive(&t, cfg(), &mut p, 100)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_rejected() {
        let t = synth::sequential(10, 1, 0, 64, 0);
        let mut p = FeedbackController::new(1, 0.5);
        let _ = run_sp_adaptive(&t, cfg(), &mut p, 0);
    }
}
