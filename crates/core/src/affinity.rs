//! Set Affinity analysis (paper §III.B, Fig. 3) and the prefetch-distance
//! upper bound.
//!
//! **Definition 1 (Set Affinity).** Given a cache set, its Set Affinity
//! is the iteration count of the outer hot loop at which the distinct
//! accessed blocks mapped to that set exceed the set's capacity
//! (associativity).
//!
//! **Definition 2 (Original Set Affinity).** Set Affinity measured from
//! an application running alone (no hardware prefetchers, no helper).
//!
//! **Definition 3 (Set Affinity with Helper Thread).** Set Affinity with
//! helper-thread prefetching applied.
//!
//! The paper's bound (§III.B): once the helper (and hardware prefetchers)
//! are active, `SA_helper * 2 <= SA_original`, so to keep prefetched data
//! from being displaced (or displacing reusable data) before use:
//!
//! ```text
//! prefetch distance < SA_with_helper,  i.e.  distance < SA_original / 2
//! ```
//!
//! with the binding value being the *minimum* Set Affinity over all
//! touched sets.

use crate::params::SpParams;
use crate::skip::{helper_refs, plan, HelperStep};
use sp_cachesim::CacheGeometry;
use sp_profiler::Burst;
use sp_trace::{HotLoopTrace, VAddr};
use std::collections::HashMap;

/// Per-set outcome of the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SetState {
    distinct_blocks: u32,
    /// Iteration at which the set overflowed, once recorded.
    affinity: Option<u32>,
}

/// Result of a Set Affinity analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SetAffinityReport {
    /// Set index -> Set Affinity (outer-iteration count at overflow), for
    /// every set that overflowed.
    pub per_set: HashMap<u64, u32>,
    /// Number of sets touched at least once.
    pub sets_touched: usize,
}

impl SetAffinityReport {
    /// Smallest Set Affinity over all overflowed sets — the binding value
    /// for the distance bound. `None` if no set ever overflowed (the
    /// loop's footprint fits; any distance is safe).
    pub fn min(&self) -> Option<u32> {
        self.per_set.values().copied().min()
    }

    /// Largest recorded Set Affinity.
    pub fn max(&self) -> Option<u32> {
        self.per_set.values().copied().max()
    }

    /// The paper's range notation `SA(L, Sx)` (Table 2, last column).
    pub fn range(&self) -> Option<(u32, u32)> {
        Some((self.min()?, self.max()?))
    }

    /// Fraction of touched sets that overflowed.
    pub fn overflow_fraction(&self) -> f64 {
        if self.sets_touched == 0 {
            0.0
        } else {
            self.per_set.len() as f64 / self.sets_touched as f64
        }
    }

    /// The paper's prefetch-distance upper limit:
    /// `distance < min(SA_original) / 2`. Returns the largest *allowed*
    /// distance, or `None` if unbounded (no set overflowed).
    pub fn distance_bound(&self) -> Option<u32> {
        self.min().map(|sa| (sa / 2).saturating_sub(1).max(1))
    }

    /// Merge another report (used to combine per-burst analyses): the
    /// per-set affinity keeps the smaller (more conservative) value.
    pub fn merge(&mut self, other: &SetAffinityReport) {
        for (&set, &sa) in &other.per_set {
            self.per_set
                .entry(set)
                .and_modify(|v| *v = (*v).min(sa))
                .or_insert(sa);
        }
        self.sets_touched = self.sets_touched.max(other.sets_touched);
    }
}

/// The Fig. 3 algorithm over an arbitrary `(outer_iteration, address)`
/// stream.
///
/// ```
/// use sp_cachesim::CacheGeometry;
/// use sp_core::original_set_affinity;
/// use sp_trace::synth;
///
/// // One new block lands in set 5 per outer iteration of a 4-way cache:
/// // the set overflows (5th distinct block) in iteration 5.
/// let geo = CacheGeometry::new(16 * 1024, 4, 64);
/// let trace = synth::set_hammer(50, 1, 5, geo.sets(), geo.line_size);
/// let report = original_set_affinity(&trace, geo);
/// assert_eq!(report.range(), Some((5, 5)));
/// assert_eq!(report.distance_bound(), Some(1)); // min SA / 2, exclusive
/// ```
///
/// For each touched set, track the distinct blocks mapped to it; when the
/// count first *exceeds* the set's associativity, record the current
/// outer-iteration count (1-based, "the program executes N iterations")
/// as that set's affinity.
pub fn set_affinity_stream<I>(stream: I, geo: CacheGeometry) -> SetAffinityReport
where
    I: IntoIterator<Item = (u32, VAddr)>,
{
    let ways = geo.ways;
    let mut sets: HashMap<u64, SetState> = HashMap::new();
    let mut blocks: HashMap<VAddr, ()> = HashMap::new();
    for (iter, addr) in stream {
        let block = geo.block_of(addr);
        if blocks.insert(block, ()).is_some() {
            continue; // already-seen block: not a new entrant anywhere
        }
        let set = geo.set_of(addr);
        let st = sets.entry(set).or_insert(SetState {
            distinct_blocks: 0,
            affinity: None,
        });
        st.distinct_blocks += 1;
        if st.affinity.is_none() && st.distinct_blocks > ways {
            st.affinity = Some(iter + 1); // 1-based iteration count
        }
    }
    SetAffinityReport {
        sets_touched: sets.len(),
        per_set: sets
            .into_iter()
            .filter_map(|(s, st)| st.affinity.map(|a| (s, a)))
            .collect(),
    }
}

/// **Original Set Affinity** (Definition 2): the full main-thread stream,
/// no helper, no hardware prefetchers.
pub fn original_set_affinity(trace: &HotLoopTrace, geo: CacheGeometry) -> SetAffinityReport {
    set_affinity_stream(trace.tagged_refs().map(|(i, r)| (i, r.vaddr)), geo)
}

/// **Set Affinity with Helper Thread** (Definition 3): the interleaved
/// stream in which, while the main thread executes iteration `i`, the
/// helper (running `A_SKI` iterations ahead) prefetches the inner loads
/// of iteration `i + A_SKI` according to its skip/pre-execute plan.
pub fn helper_set_affinity(
    trace: &HotLoopTrace,
    geo: CacheGeometry,
    params: SpParams,
) -> SetAffinityReport {
    let n = trace.iters.len();
    let steps = plan(params, n);
    let lead = params.a_ski as usize;
    let stream = (0..n).flat_map(move |i| {
        let main = trace.iters[i].refs().map(move |r| (i as u32, r.vaddr));
        let helper_iter = i + lead;
        let helper: Vec<(u32, VAddr)> =
            if helper_iter < n && steps[helper_iter] == HelperStep::Prefetch {
                helper_refs(&trace.iters[helper_iter].inner)
                    .map(|r| (i as u32, r.vaddr))
                    .collect()
            } else {
                Vec::new()
            };
        main.chain(helper)
    });
    set_affinity_stream(stream, geo)
}

/// Estimate Set Affinity from burst samples (the paper's low-overhead
/// profile run, §IV.C). Each burst is analyzed independently with
/// iteration counts relative to the burst start; sets whose affinity
/// exceeds the burst length are not observable within that burst, so the
/// estimate is the merge over all bursts (conservative per set).
pub fn sampled_set_affinity(bursts: &[Burst], geo: CacheGeometry) -> SetAffinityReport {
    let mut report = SetAffinityReport::default();
    for b in bursts {
        let stream = b
            .iters
            .iter()
            .enumerate()
            .flat_map(|(k, it)| it.refs().map(move |r| (k as u32, r.vaddr)));
        let r = set_affinity_stream(stream, geo);
        report.merge(&r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::synth;

    fn geo() -> CacheGeometry {
        // 64 sets x 4 ways x 64B.
        CacheGeometry::new(16 * 1024, 4, 64)
    }

    #[test]
    fn set_hammer_has_closed_form_affinity() {
        let g = geo();
        // 1 new block in set 5 per iteration: the 5th distinct block
        // (> 4 ways) arrives in iteration index 4 -> SA = 5 (1-based).
        let t = synth::set_hammer(20, 1, 5, g.sets(), g.line_size);
        let r = original_set_affinity(&t, g);
        assert_eq!(r.per_set.len(), 1);
        assert_eq!(r.per_set[&5], 5);
        assert_eq!(r.min(), Some(5));
        assert_eq!(r.range(), Some((5, 5)));
    }

    #[test]
    fn hammer_rate_scales_affinity_inversely() {
        let g = geo();
        // 2 new blocks per iteration: 5th block arrives in iteration 2
        // (0-based index 2) -> SA = 3.
        let t = synth::set_hammer(20, 2, 9, g.sets(), g.line_size);
        let r = original_set_affinity(&t, g);
        assert_eq!(r.per_set[&9], 3);
    }

    #[test]
    fn repeated_blocks_do_not_advance_affinity() {
        let g = geo();
        // Touch the same 4 blocks of one set forever: never overflows.
        let mut t = sp_trace::HotLoopTrace::new("t");
        for _ in 0..100 {
            let inner = (0..4u64)
                .map(|b| sp_trace::MemRef::anon(b * g.sets() * g.line_size))
                .collect();
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner,
                compute_cycles: 0,
            });
        }
        let r = original_set_affinity(&t, g);
        assert!(r.per_set.is_empty());
        assert_eq!(r.min(), None);
        assert_eq!(r.distance_bound(), None, "footprint fits: unbounded");
        assert_eq!(r.sets_touched, 1);
    }

    #[test]
    fn more_ways_never_decrease_affinity() {
        let small = CacheGeometry::new(16 * 1024, 4, 64);
        let big = CacheGeometry::new(32 * 1024, 8, 64); // same 64 sets, 8 ways
        assert_eq!(small.sets(), big.sets());
        let t = synth::random(400, 8, 0, 1 << 22, 11, 0);
        let rs = original_set_affinity(&t, small);
        let rb = original_set_affinity(&t, big);
        for (set, sa_big) in &rb.per_set {
            let sa_small = rs
                .per_set
                .get(set)
                .expect("overflowed at 8 ways => at 4 ways");
            assert!(sa_small <= sa_big, "set {set}: {sa_small} > {sa_big}");
        }
    }

    #[test]
    fn distance_bound_is_half_min_sa() {
        let g = geo();
        let t = synth::set_hammer(200, 1, 0, g.sets(), g.line_size);
        let r = original_set_affinity(&t, g);
        assert_eq!(r.min(), Some(5));
        // floor(5/2) - 1 = 1 -> max(1) = 1.
        assert_eq!(r.distance_bound(), Some(1));
        // A larger SA gives a proportionally larger bound.
        let t2 = {
            // one new block every 10 iterations
            let mut t2 = sp_trace::HotLoopTrace::new("slow");
            for i in 0..600u64 {
                let inner = if i % 10 == 0 {
                    vec![sp_trace::MemRef::anon((i / 10) * g.sets() * g.line_size)]
                } else {
                    Vec::new()
                };
                t2.iters.push(sp_trace::IterRecord {
                    backbone: Vec::new(),
                    inner,
                    compute_cycles: 0,
                });
            }
            t2
        };
        let r2 = original_set_affinity(&t2, g);
        assert_eq!(
            r2.min(),
            Some(41),
            "5th distinct block at iteration 40 (1-based 41)"
        );
        assert_eq!(r2.distance_bound(), Some(19));
    }

    #[test]
    fn helper_stream_halves_affinity_for_rp_half() {
        let g = geo();
        // Main touches 1 new block of set 0 per iteration; with the
        // helper running distance d ahead at RP 0.5, the combined stream
        // brings in roughly 1.5 new blocks per iteration -> SA drops.
        let t = synth::set_hammer(400, 1, 0, g.sets(), g.line_size);
        let orig = original_set_affinity(&t, g);
        let with_helper = helper_set_affinity(&t, g, SpParams::new(8, 8));
        let (o, h) = (orig.per_set[&0], with_helper.per_set[&0]);
        assert!(h < o, "helper must reduce SA: orig {o}, helper {h}");
        assert!(
            h * 2 <= o + 2,
            "paper's halving bound (±1 rounding): orig {o}, helper {h}"
        );
    }

    #[test]
    fn sampled_estimate_matches_full_for_small_affinity() {
        let g = geo();
        let t = synth::set_hammer(1000, 2, 3, g.sets(), g.line_size);
        let full = original_set_affinity(&t, g);
        let sampler = sp_profiler::BurstSampler::new(50, 150);
        let bursts = sampler.sample(&t);
        let est = sampled_set_affinity(&bursts, g);
        // The hammer is homogeneous: every burst sees the same overflow
        // pace, so the estimate equals the full-stream value.
        assert_eq!(est.per_set[&3], full.per_set[&3]);
    }

    #[test]
    fn sampled_estimate_misses_sets_slower_than_the_burst() {
        let g = geo();
        // SA = 41 > burst length 20: unobservable.
        let mut t = sp_trace::HotLoopTrace::new("slow");
        for i in 0..600u64 {
            let inner = if i % 10 == 0 {
                vec![sp_trace::MemRef::anon((i / 10) * g.sets() * g.line_size)]
            } else {
                Vec::new()
            };
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner,
                compute_cycles: 0,
            });
        }
        let bursts = sp_profiler::BurstSampler::new(20, 20).sample(&t);
        let est = sampled_set_affinity(&bursts, g);
        assert!(
            est.per_set.is_empty(),
            "20-iteration bursts cannot observe SA = 41"
        );
    }

    #[test]
    fn merge_keeps_conservative_minimum() {
        let mut a = SetAffinityReport {
            per_set: [(1u64, 10u32)].into_iter().collect(),
            sets_touched: 4,
        };
        let b = SetAffinityReport {
            per_set: [(1u64, 7u32), (2, 99)].into_iter().collect(),
            sets_touched: 2,
        };
        a.merge(&b);
        assert_eq!(a.per_set[&1], 7);
        assert_eq!(a.per_set[&2], 99);
        assert_eq!(a.sets_touched, 4);
    }

    #[test]
    fn overflow_fraction_bounds() {
        let g = geo();
        let t = synth::set_hammer(100, 1, 0, g.sets(), g.line_size);
        let r = original_set_affinity(&t, g);
        assert!((r.overflow_fraction() - 1.0).abs() < 1e-12);
        let empty = SetAffinityReport::default();
        assert_eq!(empty.overflow_fraction(), 0.0);
    }
}
