//! CALR (Computation/Access-Latency Ratio) estimation and the RP rule.
//!
//! The paper (§II.A–B): `CALR` is "the ratio of cycles for computation
//! over cycles for data accesses in hot loop", and drives the prefetch
//! ratio: *"for our targeted applications with CALR close to 0, we have
//! RP = 0.5 (A_SKI = A_PRE) ... for applications with CALR higher than 1,
//! RP = 1 (A_SKI = 0)"*.

use crate::params::SpParams;
use sp_cachesim::{CacheGeometry, Entity, LatencyConfig, Policy, SetAssocCache};
use sp_trace::HotLoopTrace;

/// Result of a CALR profile run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalrProfile {
    /// Total pure-computation cycles in the hot loop.
    pub compute_cycles: u64,
    /// Total data-access cycles (unloaded latencies, from a single-core
    /// replay with no prefetching — the paper's original profile run).
    pub access_cycles: u64,
    /// The ratio `compute_cycles / access_cycles`.
    pub calr: f64,
}

/// Replay `trace` through a private-L1 + L2 model (no prefetchers, no
/// helper) and estimate the loop's CALR under `latency`.
pub fn estimate_calr(
    trace: &HotLoopTrace,
    l1: CacheGeometry,
    l2: CacheGeometry,
    policy: Policy,
    latency: LatencyConfig,
) -> CalrProfile {
    let mut l1c = SetAssocCache::new(l1, Policy::Lru);
    let mut l2c = SetAssocCache::new(l2, policy);
    let mut access_cycles = 0u64;
    let mut compute_cycles = 0u64;
    for it in &trace.iters {
        compute_cycles += it.compute_cycles;
        for r in it.refs() {
            let is_store = r.kind == sp_trace::AccessKind::Store;
            access_cycles += if l1c.demand_touch(r.vaddr, is_store).is_some() {
                latency.l1_hit
            } else if l2c.demand_touch(r.vaddr, is_store).is_some() {
                l1c.fill(r.vaddr, Entity::Main, false);
                latency.l2_total()
            } else {
                l2c.fill(r.vaddr, Entity::Main, false);
                l1c.fill(r.vaddr, Entity::Main, false);
                latency.full_miss()
            };
        }
    }
    let calr = if access_cycles == 0 {
        f64::INFINITY
    } else {
        compute_cycles as f64 / access_cycles as f64
    };
    CalrProfile {
        compute_cycles,
        access_cycles,
        calr,
    }
}

/// The paper's RP selection rule, with linear interpolation between the
/// two published anchor points (`CALR -> 0 => RP = 0.5`,
/// `CALR >= 1 => RP = 1`); the paper only states the endpoints.
pub fn select_rp(calr: f64) -> f64 {
    if calr <= 0.0 {
        0.5
    } else if calr >= 1.0 {
        1.0
    } else {
        0.5 + 0.5 * calr
    }
}

/// Full parameter selection: RP from CALR, then `(A_SKI, A_PRE)` from the
/// chosen prefetch distance. With `RP = 1` the distance collapses to 0
/// (conventional helper prefetching), matching the paper.
pub fn select_params(calr: f64, distance: u32) -> SpParams {
    let rp = select_rp(calr);
    if (rp - 1.0).abs() < 1e-12 {
        SpParams::conventional()
    } else {
        SpParams::from_distance_rp(distance, rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::synth;

    fn geo() -> (CacheGeometry, CacheGeometry) {
        (
            CacheGeometry::new(1024, 2, 64),
            CacheGeometry::new(8192, 4, 64),
        )
    }

    #[test]
    fn pure_streaming_loop_has_low_calr() {
        let (l1, l2) = geo();
        let t = synth::sequential(256, 8, 0, 64, /*compute*/ 1);
        let p = estimate_calr(&t, l1, l2, Policy::Lru, LatencyConfig::default());
        assert!(p.calr < 0.1, "calr = {}", p.calr);
        assert_eq!(p.compute_cycles, 256);
        assert!(p.access_cycles > 0);
    }

    #[test]
    fn compute_heavy_loop_has_high_calr() {
        let (l1, l2) = geo();
        // One L1-resident block, huge compute per iteration.
        let mut t = sp_trace::HotLoopTrace::new("hot");
        for _ in 0..100 {
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner: vec![sp_trace::MemRef::anon(0)],
                compute_cycles: 1000,
            });
        }
        let p = estimate_calr(&t, l1, l2, Policy::Lru, LatencyConfig::default());
        assert!(p.calr > 100.0, "calr = {}", p.calr);
    }

    #[test]
    fn empty_access_stream_gives_infinite_calr() {
        let (l1, l2) = geo();
        let mut t = sp_trace::HotLoopTrace::new("noaccess");
        t.iters.push(sp_trace::IterRecord {
            backbone: Vec::new(),
            inner: Vec::new(),
            compute_cycles: 10,
        });
        let p = estimate_calr(&t, l1, l2, Policy::Lru, LatencyConfig::default());
        assert!(p.calr.is_infinite());
    }

    #[test]
    fn rp_rule_matches_paper_endpoints() {
        assert_eq!(select_rp(0.0), 0.5);
        assert_eq!(select_rp(-1.0), 0.5);
        assert_eq!(select_rp(1.0), 1.0);
        assert_eq!(select_rp(5.0), 1.0);
        let mid = select_rp(0.5);
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn select_params_low_calr_is_balanced() {
        let p = select_params(0.0, 8);
        assert_eq!((p.a_ski, p.a_pre), (8, 8));
    }

    #[test]
    fn select_params_high_calr_is_conventional() {
        let p = select_params(2.0, 8);
        assert_eq!(p, SpParams::conventional());
    }

    #[test]
    fn calr_is_deterministic() {
        let (l1, l2) = geo();
        let t = synth::random(200, 4, 0, 1 << 20, 5, 3);
        let a = estimate_calr(&t, l1, l2, Policy::Lru, LatencyConfig::default());
        let b = estimate_calr(&t, l1, l2, Policy::Lru, LatencyConfig::default());
        assert_eq!(a, b);
    }
}
