//! Prefetch-distance control: the sweep harness behind Figures 2 and
//! 4–6, and the bound-driven distance recommendation.

use crate::affinity::{original_set_affinity, SetAffinityReport};
use crate::engine::{
    compile_trace, run_original_passes_compiled, run_original_passes_compiled_ev,
    run_sp_with_compiled, run_sp_with_compiled_ev, run_trace_batched, run_trace_batched_ev,
    EngineOptions, LaneSpec, RunResult,
};
use crate::params::SpParams;
use crate::pollution::{BehaviorChange, PollutionSummary};
use sp_cachesim::epoch::{EpochSeries, EpochSink};
use sp_cachesim::events::{default_early_threshold, EventSummary, SummarySink};
use sp_cachesim::CacheConfig;
use sp_runner::{run_jobs, Job, RunnerReport};
use sp_trace::{CompiledTrace, GeometryMismatch, HotLoopTrace};
use std::sync::Arc;

/// One point of a prefetch-distance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The prefetch distance (`A_SKI`) of this run.
    pub distance: u32,
    /// The full parameter set used.
    pub params: SpParams,
    /// Runtime normalized to the original run (Fig. 2 / 4b / 5b / 6b).
    pub runtime_norm: f64,
    /// Main-thread memory accesses normalized to the original (Fig. 2).
    pub memory_accesses_norm: f64,
    /// Main-thread totally L2 misses normalized to the original —
    /// the paper's "hot misses" curve (Fig. 2).
    pub hot_misses_norm: f64,
    /// The behaviour-change triple (Fig. 4a / 5a / 6a).
    pub behavior: BehaviorChange,
    /// Pollution summary at this distance.
    pub pollution: PollutionSummary,
    /// The raw SP run.
    pub run: RunResult,
}

/// A complete distance sweep of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The original (no-helper) run everything is normalized to.
    pub baseline: RunResult,
    /// One point per requested distance, in the given order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// The distance with the lowest normalized runtime.
    pub fn best_distance(&self) -> Option<u32> {
        self.points
            .iter()
            .min_by(|a, b| a.runtime_norm.total_cmp(&b.runtime_norm))
            .map(|p| p.distance)
    }

    /// The point measured at `distance`, if swept.
    pub fn at(&self, distance: u32) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.distance == distance)
    }
}

/// Run the paper's sweep: the original program once, then SP at each
/// `distance` with the prefetch ratio fixed at `rp` (the paper uses
/// `RP = 0.5` for all three benchmarks, §V.B).
pub fn sweep_distances(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
) -> Sweep {
    sweep_distances_jobs(trace, cache_cfg, rp, distances, 1).0
}

/// [`sweep_distances`] fanned out on up to `jobs` worker threads
/// (`0` = all cores), plus the executor's timing report.
///
/// Every grid point (the baseline and each distance) owns its
/// `MemorySystem` and shares nothing, so the jobs are independent; the
/// runner returns them in submission order, making the assembled
/// `Sweep` **identical** to the serial one whatever `jobs` is (see
/// `tests/parallel_determinism.rs`).
pub fn sweep_distances_jobs(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    jobs: usize,
) -> (Sweep, RunnerReport) {
    sweep_distances_jobs_with(
        trace,
        cache_cfg,
        rp,
        distances,
        EngineOptions::default(),
        jobs,
    )
}

/// [`sweep_distances_jobs`] with explicit [`EngineOptions`] — the form
/// sp-serve executes, where a request may select the idealized helper
/// model or multi-pass runs. Baseline and SP points share the same
/// `opts.passes`, so the normalizations stay apples-to-apples.
pub fn sweep_distances_jobs_with(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
) -> (Sweep, RunnerReport) {
    let ct = Arc::new(compile_trace(trace, &cache_cfg));
    sweep_compiled_jobs_with(&ct, cache_cfg, rp, distances, opts, jobs)
        .expect("compiled for this geometry")
}

/// [`sweep_distances_jobs_with`] over an already-compiled trace — the
/// form long-lived services use, compiling once per `(trace, geometry)`
/// and sweeping many times. All grid points share the `Arc`'d
/// projections; each worker thread reuses one parked simulator across
/// the grid points it claims. Errors if `ct` was compiled for a
/// different address mapping than `cache_cfg`'s.
pub fn sweep_compiled_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
) -> Result<(Sweep, RunnerReport), GeometryMismatch> {
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    // Each grid point gets a deterministic child of the caller's
    // correlation ID (baseline = .1, distance i = .i+2), captured here
    // and re-established inside the job so spans recorded on pool
    // threads still correlate with the originating request.
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!("sweep", points = distances.len());
    let mut grid: Vec<Job<'static, RunResult>> = Vec::with_capacity(distances.len() + 1);
    let base_ct = Arc::clone(ct);
    grid.push(Box::new(move || {
        let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(1)));
        let _sp = sp_obs::span!("point", baseline = true);
        run_original_passes_compiled(&base_ct, cache_cfg, opts.passes).expect("geometry checked")
    }));
    for (i, &d) in distances.iter().enumerate() {
        let params = SpParams::from_distance_rp(d, rp);
        let point_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(i as u32 + 2)));
            let _sp = sp_obs::span!("point", distance = d);
            run_sp_with_compiled(&point_ct, cache_cfg, params, opts).expect("geometry checked")
        }));
    }
    let (mut results, report) = run_jobs(grid, jobs);
    let baseline = results.remove(0);
    Ok((assemble_sweep(baseline, distances, rp, results), report))
}

/// The sweep grid as lane specs: the baseline first, then one SP lane
/// per distance — the submission order every sweep driver shares.
fn sweep_specs(rp: f64, distances: &[u32]) -> Vec<LaneSpec> {
    std::iter::once(LaneSpec::Original)
        .chain(
            distances
                .iter()
                .map(|&d| LaneSpec::Sp(SpParams::from_distance_rp(d, rp))),
        )
        .collect()
}

/// [`sweep_compiled_jobs_with`] on the lane-batched engine: consecutive
/// grid points ride the same trace pass, `lanes` at a time, so the
/// decode/set-index work is paid once per batch instead of once per
/// point. Each batch is one job for the runner — `jobs` and `lanes`
/// compose — and results are flattened in submission order, so the
/// assembled `Sweep` is **identical** to the scalar sweep's at any
/// (jobs, lanes) combination. `lanes <= 1` delegates to the scalar
/// per-point path.
pub fn sweep_compiled_batched_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
    lanes: usize,
) -> Result<(Sweep, RunnerReport), GeometryMismatch> {
    if lanes <= 1 {
        return sweep_compiled_jobs_with(ct, cache_cfg, rp, distances, opts, jobs);
    }
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!("sweep", points = distances.len(), lanes = lanes);
    let specs = sweep_specs(rp, distances);
    let mut grid: Vec<Job<'static, Vec<RunResult>>> =
        Vec::with_capacity(specs.len().div_ceil(lanes));
    for (ci, chunk) in specs.chunks(lanes).enumerate() {
        let chunk = chunk.to_vec();
        let batch_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(ci as u32 + 1)));
            let _sp = sp_obs::span!("batch", lanes = chunk.len());
            run_trace_batched(&batch_ct, cache_cfg, &chunk, opts).expect("geometry checked")
        }));
    }
    let (results, report) = run_jobs(grid, jobs);
    let mut flat: Vec<RunResult> = results.into_iter().flatten().collect();
    let baseline = flat.remove(0);
    Ok((assemble_sweep(baseline, distances, rp, flat), report))
}

/// [`sweep_compiled_batched_jobs_with`] over an uncompiled trace — the
/// CLI's entry point.
pub fn sweep_distances_batched_jobs_with(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
    lanes: usize,
) -> (Sweep, RunnerReport) {
    let ct = Arc::new(compile_trace(trace, &cache_cfg));
    sweep_compiled_batched_jobs_with(&ct, cache_cfg, rp, distances, opts, jobs, lanes)
        .expect("compiled for this geometry")
}

/// Per-point event summaries of an observed sweep, parallel to
/// [`Sweep::points`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEvents {
    /// The original (no-helper) run's fold.
    pub baseline: EventSummary,
    /// One fold per swept distance, in the given order.
    pub points: Vec<EventSummary>,
}

/// [`sweep_compiled_jobs_with`] with a [`SummarySink`] attached to every
/// grid point, so the sweep can report *why* a distance crossed the
/// `SA/2` bound — which displacement case fired, in which sets, and how
/// prefetch timeliness shifted — instead of just that hits dropped.
/// Event folds ride in each job's return value, so the result is
/// submission-order deterministic at any `jobs` width like the plain
/// sweep. Early/on-time classification uses
/// [`default_early_threshold`] of the configuration's latencies.
pub fn sweep_events_compiled_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
) -> Result<(Sweep, SweepEvents, RunnerReport), GeometryMismatch> {
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let threshold = default_early_threshold(&cache_cfg.latency);
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!("sweep", points = distances.len(), events = true);
    let mut grid: Vec<Job<'static, (RunResult, EventSummary)>> =
        Vec::with_capacity(distances.len() + 1);
    let base_ct = Arc::clone(ct);
    grid.push(Box::new(move || {
        let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(1)));
        let _sp = sp_obs::span!("point", baseline = true);
        let mut sink = SummarySink::new(threshold);
        let run = run_original_passes_compiled_ev(&base_ct, cache_cfg, opts.passes, &mut sink)
            .expect("geometry checked");
        (run, sink.summary)
    }));
    for (i, &d) in distances.iter().enumerate() {
        let params = SpParams::from_distance_rp(d, rp);
        let point_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(i as u32 + 2)));
            let _sp = sp_obs::span!("point", distance = d);
            let mut sink = SummarySink::new(threshold);
            let run = run_sp_with_compiled_ev(&point_ct, cache_cfg, params, opts, &mut sink)
                .expect("geometry checked");
            (run, sink.summary)
        }));
    }
    let (mut results, report) = run_jobs(grid, jobs);
    let (baseline, base_events) = results.remove(0);
    let (runs, points): (Vec<RunResult>, Vec<EventSummary>) = results.into_iter().unzip();
    let sweep = assemble_sweep(baseline, distances, rp, runs);
    Ok((
        sweep,
        SweepEvents {
            baseline: base_events,
            points,
        },
        report,
    ))
}

/// [`sweep_events_compiled_jobs_with`] on the lane-batched engine: one
/// [`SummarySink`] per lane, so every grid point's fold is exactly what
/// its scalar observed run would produce. `lanes <= 1` delegates to the
/// scalar per-point path.
#[allow(clippy::type_complexity)]
pub fn sweep_events_compiled_batched_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    jobs: usize,
    lanes: usize,
) -> Result<(Sweep, SweepEvents, RunnerReport), GeometryMismatch> {
    if lanes <= 1 {
        return sweep_events_compiled_jobs_with(ct, cache_cfg, rp, distances, opts, jobs);
    }
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let threshold = default_early_threshold(&cache_cfg.latency);
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!(
        "sweep",
        points = distances.len(),
        lanes = lanes,
        events = true
    );
    let specs = sweep_specs(rp, distances);
    let mut grid: Vec<Job<'static, Vec<(RunResult, EventSummary)>>> =
        Vec::with_capacity(specs.len().div_ceil(lanes));
    for (ci, chunk) in specs.chunks(lanes).enumerate() {
        let chunk = chunk.to_vec();
        let batch_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(ci as u32 + 1)));
            let _sp = sp_obs::span!("batch", lanes = chunk.len(), events = true);
            let mut sinks: Vec<SummarySink> = (0..chunk.len())
                .map(|_| SummarySink::new(threshold))
                .collect();
            let runs = run_trace_batched_ev(&batch_ct, cache_cfg, &chunk, opts, &mut sinks)
                .expect("geometry checked");
            runs.into_iter()
                .zip(sinks)
                .map(|(r, s)| (r, s.summary))
                .collect()
        }));
    }
    let (results, report) = run_jobs(grid, jobs);
    let mut flat: Vec<(RunResult, EventSummary)> = results.into_iter().flatten().collect();
    let (baseline, base_events) = flat.remove(0);
    let (runs, points): (Vec<RunResult>, Vec<EventSummary>) = flat.into_iter().unzip();
    let sweep = assemble_sweep(baseline, distances, rp, runs);
    Ok((
        sweep,
        SweepEvents {
            baseline: base_events,
            points,
        },
        report,
    ))
}

/// Per-point epoch telemetry series of a recorded sweep, parallel to
/// [`Sweep::points`]. Named `SweepEpochs` (windows are
/// [`sp_cachesim::EpochWindow`]s) — distinct from the adaptive
/// controller's coarse per-interval [`crate::adaptive::EpochRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEpochs {
    /// The original (no-helper) run's series.
    pub baseline: EpochSeries,
    /// One series per swept distance, in the given order.
    pub points: Vec<EpochSeries>,
}

/// [`sweep_compiled_jobs_with`] with an [`EpochSink`] recording every
/// grid point, so the sweep reports *when* pollution happens — the
/// per-window displacement/timeliness/pressure series `spt report`
/// renders and the adaptive controller will steer on — not just the
/// run totals. `epoch_len` is the window length in main-thread
/// references ([`sp_cachesim::DEFAULT_EPOCH_LEN`] ≈ 10k); series ride
/// each job's return value, so the result is submission-order
/// deterministic at any `jobs` width.
#[allow(clippy::type_complexity)]
pub fn sweep_epochs_compiled_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    epoch_len: u64,
    jobs: usize,
) -> Result<(Sweep, SweepEpochs, RunnerReport), GeometryMismatch> {
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let threshold = default_early_threshold(&cache_cfg.latency);
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!("sweep", points = distances.len(), epochs = true);
    let mut grid: Vec<Job<'static, (RunResult, EpochSeries)>> =
        Vec::with_capacity(distances.len() + 1);
    let base_ct = Arc::clone(ct);
    grid.push(Box::new(move || {
        let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(1)));
        let _sp = sp_obs::span!("point", baseline = true);
        let mut sink = EpochSink::new(epoch_len, threshold);
        let run = run_original_passes_compiled_ev(&base_ct, cache_cfg, opts.passes, &mut sink)
            .expect("geometry checked");
        (run, sink.finish())
    }));
    for (i, &d) in distances.iter().enumerate() {
        let params = SpParams::from_distance_rp(d, rp);
        let point_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(i as u32 + 2)));
            let _sp = sp_obs::span!("point", distance = d);
            let mut sink = EpochSink::new(epoch_len, threshold);
            let run = run_sp_with_compiled_ev(&point_ct, cache_cfg, params, opts, &mut sink)
                .expect("geometry checked");
            (run, sink.finish())
        }));
    }
    let (mut results, report) = run_jobs(grid, jobs);
    let (baseline, base_epochs) = results.remove(0);
    let (runs, points): (Vec<RunResult>, Vec<EpochSeries>) = results.into_iter().unzip();
    let sweep = assemble_sweep(baseline, distances, rp, runs);
    Ok((
        sweep,
        SweepEpochs {
            baseline: base_epochs,
            points,
        },
        report,
    ))
}

/// [`sweep_epochs_compiled_jobs_with`] on the lane-batched engine: one
/// [`EpochSink`] per lane, so every grid point's series is exactly what
/// its scalar recorded run would produce (windows advance on the lane's
/// own demand ticks). `lanes <= 1` delegates to the scalar per-point
/// path.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub fn sweep_epochs_compiled_batched_jobs_with(
    ct: &Arc<CompiledTrace>,
    cache_cfg: CacheConfig,
    rp: f64,
    distances: &[u32],
    opts: EngineOptions,
    epoch_len: u64,
    jobs: usize,
    lanes: usize,
) -> Result<(Sweep, SweepEpochs, RunnerReport), GeometryMismatch> {
    if lanes <= 1 {
        return sweep_epochs_compiled_jobs_with(
            ct, cache_cfg, rp, distances, opts, epoch_len, jobs,
        );
    }
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let threshold = default_early_threshold(&cache_cfg.latency);
    let corr = sp_obs::corr::current();
    let _sp = sp_obs::span!(
        "sweep",
        points = distances.len(),
        lanes = lanes,
        epochs = true
    );
    let specs = sweep_specs(rp, distances);
    let mut grid: Vec<Job<'static, Vec<(RunResult, EpochSeries)>>> =
        Vec::with_capacity(specs.len().div_ceil(lanes));
    for (ci, chunk) in specs.chunks(lanes).enumerate() {
        let chunk = chunk.to_vec();
        let batch_ct = Arc::clone(ct);
        grid.push(Box::new(move || {
            let _cg = corr.map(|c| sp_obs::corr::set_current(c.child(ci as u32 + 1)));
            let _sp = sp_obs::span!("batch", lanes = chunk.len(), epochs = true);
            let mut sinks: Vec<EpochSink> = (0..chunk.len())
                .map(|_| EpochSink::new(epoch_len, threshold))
                .collect();
            let runs = run_trace_batched_ev(&batch_ct, cache_cfg, &chunk, opts, &mut sinks)
                .expect("geometry checked");
            runs.into_iter()
                .zip(sinks)
                .map(|(r, s)| (r, s.finish()))
                .collect()
        }));
    }
    let (results, report) = run_jobs(grid, jobs);
    let mut flat: Vec<(RunResult, EpochSeries)> = results.into_iter().flatten().collect();
    let (baseline, base_epochs) = flat.remove(0);
    let (runs, points): (Vec<RunResult>, Vec<EpochSeries>) = flat.into_iter().unzip();
    let sweep = assemble_sweep(baseline, distances, rp, runs);
    Ok((
        sweep,
        SweepEpochs {
            baseline: base_epochs,
            points,
        },
        report,
    ))
}

/// Normalize a grid of SP runs against the baseline — shared by the
/// plain and the event-observed sweeps so their `Sweep`s are assembled
/// identically.
fn assemble_sweep(baseline: RunResult, distances: &[u32], rp: f64, runs: Vec<RunResult>) -> Sweep {
    let base_rt = baseline.runtime.max(1) as f64;
    let base_ma = baseline.stats.main.memory_accesses().max(1) as f64;
    let base_miss = baseline.stats.main.total_misses.max(1) as f64;
    let points = distances
        .iter()
        .zip(runs)
        .map(|(&d, run)| SweepPoint {
            distance: d,
            params: SpParams::from_distance_rp(d, rp),
            runtime_norm: run.runtime as f64 / base_rt,
            memory_accesses_norm: run.stats.main.memory_accesses() as f64 / base_ma,
            hot_misses_norm: run.stats.main.total_misses as f64 / base_miss,
            behavior: BehaviorChange::between(&baseline, &run),
            pollution: PollutionSummary::from_run(&run),
            run,
        })
        .collect();
    Sweep { baseline, points }
}

/// The full distance-control pipeline of the paper:
/// profile → Set Affinity → bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceRecommendation {
    /// The Set Affinity report the bound came from.
    pub affinity: SetAffinityReport,
    /// The paper's upper limit: `min SA / 2` (exclusive), i.e. the
    /// maximum allowed distance. `None` when no set overflows.
    pub max_distance: Option<u32>,
}

/// Compute the Set-Affinity-based distance bound for a hot loop on a
/// cache configuration (using the **original** stream and the L2
/// geometry, per Definitions 1–2).
pub fn recommend_distance(trace: &HotLoopTrace, cache_cfg: &CacheConfig) -> DistanceRecommendation {
    let affinity = original_set_affinity(trace, cache_cfg.l2);
    let max_distance = affinity.distance_bound();
    DistanceRecommendation {
        affinity,
        max_distance,
    }
}

/// Clamp a requested distance to the recommendation (the controller the
/// paper's conclusion advocates: "controlling prefetch distance within
/// the estimated range").
pub fn controlled_distance(requested: u32, rec: &DistanceRecommendation) -> u32 {
    match rec.max_distance {
        Some(max) => requested.min(max),
        None => requested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cachesim::CacheGeometry;
    use sp_trace::synth;

    fn cfg() -> CacheConfig {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(1024, 2, 64),
            l2: CacheGeometry::new(16 * 1024, 4, 64),
            hw_prefetchers: false,
            ..CacheConfig::scaled_default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_distance() {
        let t = synth::sequential(800, 2, 0, 64, 0);
        let s = sweep_distances(&t, cfg(), 0.5, &[1, 4, 16]);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.points[0].distance, 1);
        assert!(s.at(4).is_some());
        assert!(s.at(99).is_none());
        assert!(s.best_distance().is_some());
    }

    #[test]
    fn normalizations_are_relative_to_the_baseline() {
        let t = synth::sequential(800, 2, 0, 64, 0);
        let s = sweep_distances(&t, cfg(), 0.5, &[4]);
        let p = &s.points[0];
        let expect = p.run.runtime as f64 / s.baseline.runtime as f64;
        assert!((p.runtime_norm - expect).abs() < 1e-12);
        assert!(p.runtime_norm > 0.0);
    }

    #[test]
    fn recommendation_uses_l2_geometry() {
        let c = cfg();
        let g = c.l2;
        // Hammer set 0 with one new block per iteration: SA = ways + 1.
        let t = synth::set_hammer(100, 1, 0, g.sets(), g.line_size);
        let rec = recommend_distance(&t, &c);
        assert_eq!(rec.affinity.min(), Some(g.ways + 1));
        assert_eq!(rec.max_distance, rec.affinity.distance_bound());
    }

    #[test]
    fn controlled_distance_clamps() {
        let rec = DistanceRecommendation {
            affinity: SetAffinityReport::default(),
            max_distance: Some(10),
        };
        assert_eq!(controlled_distance(5, &rec), 5);
        assert_eq!(controlled_distance(50, &rec), 10);
        let unbounded = DistanceRecommendation {
            affinity: SetAffinityReport::default(),
            max_distance: None,
        };
        assert_eq!(controlled_distance(50, &unbounded), 50);
    }

    #[test]
    fn sweep_is_deterministic() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let a = sweep_distances(&t, cfg(), 0.5, &[2, 8]);
        let b = sweep_distances(&t, cfg(), 0.5, &[2, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_with_default_options_equals_plain_sweep() {
        let t = synth::sequential(600, 2, 0, 64, 0);
        let plain = sweep_distances(&t, cfg(), 0.5, &[2, 8]);
        let (with, _) =
            sweep_distances_jobs_with(&t, cfg(), 0.5, &[2, 8], EngineOptions::default(), 1);
        assert_eq!(plain, with);
        // Non-default options change the simulation (multi-pass baseline
        // warms the cache), but the point count and normalization basis
        // stay consistent.
        let opts = EngineOptions {
            passes: 2,
            ..EngineOptions::default()
        };
        let (multi, _) = sweep_distances_jobs_with(&t, cfg(), 0.5, &[2, 8], opts, 1);
        assert_eq!(multi.points.len(), 2);
        assert!(multi.baseline.runtime > plain.baseline.runtime);
    }

    #[test]
    fn compiled_sweep_matches_and_rejects_wrong_geometry() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let plain = sweep_distances(&t, c, 0.5, &[2, 8]);
        let (compiled, rep) =
            sweep_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1).unwrap();
        assert_eq!(plain, compiled);
        assert_eq!(rep.jobs, 3);
        let other = CacheConfig {
            l2: CacheGeometry::new(32 * 1024, 4, 64),
            ..c
        };
        let err = sweep_compiled_jobs_with(&ct, other, 0.5, &[2], EngineOptions::default(), 1)
            .unwrap_err();
        assert_eq!(err.requested, other.trace_geometry());
    }

    #[test]
    fn events_sweep_matches_plain_sweep_and_folds_to_the_counters() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let (plain, _) =
            sweep_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1).unwrap();
        let (observed, events, _) =
            sweep_events_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1)
                .unwrap();
        assert_eq!(plain, observed, "observing a sweep must not change it");
        assert_eq!(events.points.len(), 2);
        assert_eq!(
            events.baseline.pollution_stats(),
            observed.baseline.stats.pollution
        );
        for (summary, point) in events.points.iter().zip(&observed.points) {
            assert_eq!(summary.pollution_stats(), point.run.stats.pollution);
            assert_eq!(summary.issued, point.run.stats.prefetches_issued);
            assert_eq!(summary.first_uses, point.run.stats.prefetches_useful);
        }
        // Event folds are jobs-width deterministic like the sweep itself.
        let par =
            sweep_events_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 4)
                .unwrap();
        assert_eq!(par.0, observed);
        assert_eq!(par.1, events);
    }

    #[test]
    fn batched_sweep_matches_scalar_sweep_at_any_shape() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let ds = [1, 4, 16, 64];
        let (scalar, _) =
            sweep_compiled_jobs_with(&ct, c, 0.5, &ds, EngineOptions::default(), 1).unwrap();
        // Lane widths that divide the 5-point grid evenly, raggedly, and
        // wider than the grid itself; jobs composed on top.
        for lanes in [2usize, 3, 5, 8] {
            for jobs in [1usize, 2] {
                let (batched, rep) = sweep_compiled_batched_jobs_with(
                    &ct,
                    c,
                    0.5,
                    &ds,
                    EngineOptions::default(),
                    jobs,
                    lanes,
                )
                .unwrap();
                assert_eq!(batched, scalar, "lanes={lanes} jobs={jobs}");
                assert_eq!(rep.jobs, 5usize.div_ceil(lanes));
            }
        }
    }

    #[test]
    fn batched_events_sweep_matches_scalar_events_sweep() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let (sweep, events, _) =
            sweep_events_compiled_jobs_with(&ct, c, 0.5, &[2, 8, 32], EngineOptions::default(), 1)
                .unwrap();
        let (bs, be, _) = sweep_events_compiled_batched_jobs_with(
            &ct,
            c,
            0.5,
            &[2, 8, 32],
            EngineOptions::default(),
            1,
            2,
        )
        .unwrap();
        assert_eq!(bs, sweep);
        assert_eq!(be, events, "per-lane folds must match scalar folds");
    }

    #[test]
    fn epoch_sweep_matches_plain_sweep_and_totals_fold_to_the_counters() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let (plain, _) =
            sweep_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1).unwrap();
        let (recorded, epochs, _) =
            sweep_epochs_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 64, 1)
                .unwrap();
        assert_eq!(plain, recorded, "recording a sweep must not change it");
        assert_eq!(epochs.points.len(), 2);
        // Every window but the last is exactly the epoch length, and the
        // series totals are the run-aggregate counters, refined in time.
        for (series, run) in std::iter::once((&epochs.baseline, &recorded.baseline)).chain(
            epochs
                .points
                .iter()
                .zip(recorded.points.iter().map(|p| &p.run)),
        ) {
            for w in &series.epochs[..series.len().saturating_sub(1)] {
                assert_eq!(w.refs, 64);
            }
            let t = series.totals();
            let m = &run.stats.main;
            assert_eq!(
                t.main,
                [m.l1_hits, m.total_hits, m.partial_hits, m.total_misses]
            );
            let h = &run.stats.helper;
            assert_eq!(
                t.helper,
                [h.l1_hits, h.total_hits, h.partial_hits, h.total_misses]
            );
            assert_eq!(t.issued, run.stats.prefetches_issued);
            assert_eq!(t.first_uses, run.stats.prefetches_useful);
            assert_eq!(series.pollution_stats(), run.stats.pollution);
        }
        // Epoch series are jobs-width deterministic like the sweep.
        let par =
            sweep_epochs_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 64, 4)
                .unwrap();
        assert_eq!(par.0, recorded);
        assert_eq!(par.1, epochs);
    }

    #[test]
    fn batched_epoch_sweep_matches_scalar_epoch_sweep() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let (sweep, epochs, _) = sweep_epochs_compiled_jobs_with(
            &ct,
            c,
            0.5,
            &[2, 8, 32],
            EngineOptions::default(),
            64,
            1,
        )
        .unwrap();
        for lanes in [2usize, 4] {
            let (bs, be, _) = sweep_epochs_compiled_batched_jobs_with(
                &ct,
                c,
                0.5,
                &[2, 8, 32],
                EngineOptions::default(),
                64,
                1,
                lanes,
            )
            .unwrap();
            assert_eq!(bs, sweep, "lanes={lanes}");
            assert_eq!(
                be, epochs,
                "per-lane series must match scalar, lanes={lanes}"
            );
        }
    }

    #[test]
    fn batched_sweep_lanes_one_is_the_scalar_path() {
        let t = synth::sequential(400, 2, 0, 64, 0);
        let c = cfg();
        let ct = std::sync::Arc::new(crate::engine::compile_trace(&t, &c));
        let (batched, rep) =
            sweep_compiled_batched_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1, 1)
                .unwrap();
        let (scalar, srep) =
            sweep_compiled_jobs_with(&ct, c, 0.5, &[2, 8], EngineOptions::default(), 1).unwrap();
        assert_eq!(batched, scalar);
        assert_eq!(rep.jobs, srep.jobs, "lanes=1 keeps per-point jobs");
    }

    #[test]
    fn parallel_sweep_matches_serial_and_reports_every_job() {
        let t = synth::random(300, 3, 0, 1 << 20, 23, 2);
        let serial = sweep_distances(&t, cfg(), 0.5, &[1, 4, 16, 64]);
        for jobs in [2usize, 4] {
            let (par, rep) = sweep_distances_jobs(&t, cfg(), 0.5, &[1, 4, 16, 64], jobs);
            assert_eq!(par, serial);
            assert_eq!(rep.jobs, 5, "baseline + one job per distance");
            assert!(rep.workers <= jobs);
        }
    }
}
