//! Two-core co-simulation of the main thread and the SP helper thread.
//!
//! The engine replays a [`HotLoopTrace`] on the shared
//! [`MemorySystem`]:
//!
//! * The **main thread** (core 0) executes every iteration in full:
//!   backbone loads, inner loads/stores (all demand accesses that stall),
//!   plus the iteration's pure-computation cycles.
//! * The **helper thread** (core 1) follows the SP plan
//!   ([`crate::skip::plan`]): on *Chase* iterations it executes only the
//!   backbone loads (demand — it needs the pointer values to advance); on
//!   *Prefetch* iterations it additionally issues the inner-loop loads as
//!   non-blocking software prefetches.
//!
//! **Synchronization** mirrors the paper's round construction: the helper
//! may run at most one round (`A_SKI + A_PRE` iterations) ahead of the
//! main thread; past that it spins until the main thread advances. If the
//! main thread ever overtakes it (possible when the backbone chase
//! dominates), the helper *jumps* forward to `main + A_SKI`, re-syncing
//! like a real helper thread does on its shared progress counter.
//!
//! The engine alternates between the two threads by picking whichever has
//! the smaller local clock, so the memory system always sees accesses in
//! global time order.

use crate::params::SpParams;
use crate::skip::HelperStep;
use sp_cachesim::events::{EventSink, NullSink};
use sp_cachesim::{CacheConfig, Cycle, Entity, MemStats, MemorySystem};
use sp_trace::{AccessKind, CompiledTrace, GeometryMismatch, HotLoopTrace};
use std::cell::RefCell;

thread_local! {
    /// One parked simulator per thread, tagged with the configuration it
    /// was built for. Replays acquire it (resetting in place), run, and
    /// park it again — so a sweep's grid points, a multi-request service
    /// worker, or a bench loop reuse one allocation instead of rebuilding
    /// the whole hierarchy per run. The take/put protocol keeps the
    /// `RefCell` borrow scoped to the swap, never across a simulation.
    static PARKED_SIM: RefCell<Option<(CacheConfig, MemorySystem)>> = const { RefCell::new(None) };

    /// Parked lane-batched simulators, keyed by (config, lane count). A
    /// batched sweep alternates a small number of shapes — the full lane
    /// width plus a ragged remainder — so a short list with LRU-ish
    /// eviction keeps [`sp_cachesim::sim_build_count`] flat across
    /// repeated batched sweeps.
    static PARKED_BATCH: RefCell<Vec<(CacheConfig, usize, MemorySystem)>> =
        const { RefCell::new(Vec::new()) };
}

/// Cap on parked batch shapes per thread.
const PARKED_BATCH_CAP: usize = 4;

/// Main steps each lane runs back to back before the batched driver
/// rotates to the next lane. Purely a host-locality knob (lane order is
/// free — see [`run_trace_batched_ev`]): big enough that a lane's
/// private simulator state stays resident across a stretch of refs,
/// small enough that the compiled records of the block are still hot
/// when the last lane replays them.
const BATCH_BLOCK_STEPS: usize = 1024;

/// A lane-batched simulator for `(cfg, lanes)`: a parked one reset in
/// place when its shape matches, a fresh build otherwise.
fn acquire_batch(cfg: CacheConfig, lanes: usize) -> MemorySystem {
    let parked = PARKED_BATCH.with(|p| {
        let mut v = p.borrow_mut();
        v.iter()
            .position(|(c, l, _)| *c == cfg && *l == lanes)
            .map(|i| v.remove(i).2)
    });
    match parked {
        Some(mut sim) => {
            sim.reset();
            sim
        }
        None => MemorySystem::new_batch(cfg, lanes),
    }
}

/// Park `sim` for the next [`acquire_batch`] of the same shape on this
/// thread.
fn release_batch(cfg: CacheConfig, lanes: usize, sim: MemorySystem) {
    PARKED_BATCH.with(|p| {
        let mut v = p.borrow_mut();
        if v.len() >= PARKED_BATCH_CAP {
            v.remove(0); // oldest shape out
        }
        v.push((cfg, lanes, sim));
    });
}

/// A simulator for `cfg`: the parked one reset in place when its
/// configuration matches, a fresh build otherwise.
fn acquire_sim(cfg: CacheConfig) -> MemorySystem {
    match PARKED_SIM.with(|p| p.borrow_mut().take()) {
        Some((parked_cfg, mut sim)) if parked_cfg == cfg => {
            sim.reset();
            sim
        }
        _ => MemorySystem::new(cfg),
    }
}

/// Park `sim` for the next [`acquire_sim`] on this thread.
fn release_sim(cfg: CacheConfig, sim: MemorySystem) {
    PARKED_SIM.with(|p| *p.borrow_mut() = Some((cfg, sim)));
}

/// Compile `trace` for the address mapping of `cache_cfg` — the
/// projections every replay of this (trace, geometry) pair shares. Wrap
/// the result in an `Arc` to fan it out across sweep grid points.
pub fn compile_trace(trace: &HotLoopTrace, cache_cfg: &CacheConfig) -> CompiledTrace {
    let _sp = sp_obs::span!("compile", refs = trace.total_refs());
    CompiledTrace::compile(trace, cache_cfg.trace_geometry())
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Main-thread completion time — the paper's "runtime".
    pub runtime: Cycle,
    /// Helper-thread completion time (0 for original runs).
    pub helper_runtime: Cycle,
    /// Full memory-system statistics.
    pub stats: MemStats,
    /// Outer iterations executed by the main thread.
    pub outer_iters: usize,
    /// Times the helper hit the sync window and had to wait.
    pub helper_waits: u64,
    /// Times the helper fell behind and jumped forward.
    pub helper_jumps: u64,
}

impl RunResult {
    /// Main-thread memory accesses (the paper's normalization base).
    pub fn memory_accesses(&self) -> u64 {
        self.stats.main.memory_accesses()
    }
}

/// How the helper thread's covered loads are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// `true` (default, faithful to the paper): the helper's inner-loop
    /// loads are *real blocking loads* on the helper core whose fills are
    /// marked speculative — the helper "executes the load's computation"
    /// and can barely outrun the main thread on low-CALR loops, which is
    /// exactly the problem SP's skipping solves.
    ///
    /// `false` (idealized, for the helper-model ablation): inner loads
    /// are fire-and-forget software prefetches costing only their issue
    /// cycles, as if the helper had unbounded memory-level parallelism.
    pub blocking_helper: bool,
    /// How many times the hot loop executes back to back (Olden programs
    /// iterate their kernels; passes after the first run against a warm
    /// cache). The helper follows the main thread across pass boundaries.
    pub passes: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            blocking_helper: true,
            passes: 1,
        }
    }
}

/// Run the original program: main thread only (hardware prefetchers per
/// `cache_cfg`).
pub fn run_original(trace: &HotLoopTrace, cache_cfg: CacheConfig) -> RunResult {
    run_original_passes(trace, cache_cfg, 1)
}

/// Run the original program for `passes` back-to-back executions of the
/// hot loop (pass 2+ sees a warm cache).
pub fn run_original_passes(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    passes: usize,
) -> RunResult {
    let ct = compile_trace(trace, &cache_cfg);
    run_original_passes_compiled(&ct, cache_cfg, passes).expect("compiled for this geometry")
}

/// [`run_original_passes`] over an already-compiled trace: every pass
/// replays the precomputed projections, and the per-thread simulator is
/// reused. Errors (instead of simulating garbage) if `ct` was compiled
/// for a different address mapping than `cache_cfg`'s.
pub fn run_original_passes_compiled(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    passes: usize,
) -> Result<RunResult, GeometryMismatch> {
    run_original_passes_compiled_ev(ct, cache_cfg, passes, &mut NullSink)
}

/// [`run_original_passes_compiled`] with an event sink observing the
/// replay (see `sp_cachesim::events`). The sink-free entry point
/// delegates here with [`NullSink`], which compiles the event layer out.
pub fn run_original_passes_compiled_ev<S: EventSink>(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    passes: usize,
    sink: &mut S,
) -> Result<RunResult, GeometryMismatch> {
    assert!(passes > 0, "need at least one pass");
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let _sp = sp_obs::span!("simulate", mode = "original", passes = passes);
    let mut mem = acquire_sim(cache_cfg);
    let mut clock: Cycle = 0;
    for _ in 0..passes {
        for it in 0..ct.outer_iters() {
            for i in ct.iter_refs(it) {
                let res = mem.demand_access_pre_ev(Entity::Main, &ct.get(i), clock, sink);
                clock = res.complete_at;
            }
            clock += ct.compute_cycles(it);
        }
    }
    let stats = mem.finish_stats_ev(sink);
    release_sim(cache_cfg, mem);
    Ok(RunResult {
        runtime: clock,
        helper_runtime: 0,
        stats,
        outer_iters: ct.outer_iters() * passes,
        helper_waits: 0,
        helper_jumps: 0,
    })
}

/// Per-thread replay cursor.
struct Cursor {
    /// Outer iteration currently being executed.
    iter: usize,
    /// Next reference index within the iteration's flattened ref list.
    ref_idx: usize,
    clock: Cycle,
    done: bool,
}

/// What the helper does per iteration, and how tightly it is leashed —
/// implemented by the static SP plan and by the adaptive controller in
/// [`crate::adaptive`].
pub trait HelperSchedule {
    /// The helper's action for outer iteration `iter`.
    fn step(&self, iter: usize) -> HelperStep;
    /// Maximum iterations the helper may lead the main thread.
    fn window(&self) -> usize;
    /// Iterations ahead of the main thread the helper re-syncs to after
    /// falling behind.
    fn jump_distance(&self) -> u32;
    /// Called once each time the main thread completes an outer
    /// iteration — the hook adaptive schedules use to read feedback.
    fn on_main_iter(&mut self, _main_iter: usize, _mem: &MemorySystem, _clock: Cycle) {}
}

/// The paper's static SP schedule: a fixed `(A_SKI, A_PRE)` round plan,
/// computed modularly so it extends over any number of passes.
pub struct StaticSchedule {
    params: SpParams,
}

impl StaticSchedule {
    /// Plan `params` over the hot loop.
    pub fn new(params: SpParams) -> Self {
        StaticSchedule { params }
    }
}

impl HelperSchedule for StaticSchedule {
    fn step(&self, iter: usize) -> HelperStep {
        if (iter % self.params.round_len() as usize) < self.params.a_ski as usize {
            HelperStep::Chase
        } else {
            HelperStep::Prefetch
        }
    }
    fn window(&self) -> usize {
        self.params.round_len() as usize
    }
    fn jump_distance(&self) -> u32 {
        self.params.a_ski
    }
}

/// Run the SP mechanism: main + helper with the given parameters and the
/// default (blocking-helper) model.
pub fn run_sp(trace: &HotLoopTrace, cache_cfg: CacheConfig, params: SpParams) -> RunResult {
    run_sp_with(trace, cache_cfg, params, EngineOptions::default())
}

/// Run the SP mechanism with explicit engine options.
pub fn run_sp_with(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    params: SpParams,
    opts: EngineOptions,
) -> RunResult {
    let mut schedule = StaticSchedule::new(params);
    run_scheduled(trace, cache_cfg, &mut schedule, opts)
}

/// [`run_sp_with`] over an already-compiled trace.
pub fn run_sp_with_compiled(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    params: SpParams,
    opts: EngineOptions,
) -> Result<RunResult, GeometryMismatch> {
    let mut schedule = StaticSchedule::new(params);
    run_scheduled_compiled(ct, cache_cfg, &mut schedule, opts)
}

/// [`run_sp_with_compiled`] with an event sink observing both threads'
/// accesses.
pub fn run_sp_with_compiled_ev<S: EventSink>(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    params: SpParams,
    opts: EngineOptions,
    sink: &mut S,
) -> Result<RunResult, GeometryMismatch> {
    let mut schedule = StaticSchedule::new(params);
    run_scheduled_compiled_ev(ct, cache_cfg, &mut schedule, opts, sink)
}

/// The generic two-thread co-simulation loop over any
/// [`HelperSchedule`]. [`run_sp_with`] instantiates it with the static
/// plan; `sp_core::adaptive` with a feedback-driven one.
pub fn run_scheduled(
    trace: &HotLoopTrace,
    cache_cfg: CacheConfig,
    schedule: &mut dyn HelperSchedule,
    opts: EngineOptions,
) -> RunResult {
    let ct = compile_trace(trace, &cache_cfg);
    run_scheduled_compiled(&ct, cache_cfg, schedule, opts).expect("compiled for this geometry")
}

/// [`run_scheduled`] over an already-compiled trace: both threads replay
/// the precomputed projections, and the per-thread simulator is reused.
pub fn run_scheduled_compiled(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    schedule: &mut dyn HelperSchedule,
    opts: EngineOptions,
) -> Result<RunResult, GeometryMismatch> {
    run_scheduled_compiled_ev(ct, cache_cfg, schedule, opts, &mut NullSink)
}

/// [`run_scheduled_compiled`] with an event sink observing the co-sim.
pub fn run_scheduled_compiled_ev<S: EventSink>(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    schedule: &mut dyn HelperSchedule,
    opts: EngineOptions,
    sink: &mut S,
) -> Result<RunResult, GeometryMismatch> {
    assert!(opts.passes > 0, "need at least one pass");
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let _sp = sp_obs::span!("simulate", mode = "scheduled", passes = opts.passes);
    // Virtual iteration space: `passes` back-to-back executions of the
    // hot loop; iteration v executes trace iteration v % len.
    let n = ct.outer_iters() * opts.passes;
    let mut mem = acquire_sim(cache_cfg);

    let mut main = Cursor {
        iter: 0,
        ref_idx: 0,
        clock: 0,
        done: n == 0,
    };
    let mut helper = Cursor {
        iter: 0,
        ref_idx: 0,
        clock: 0,
        done: n == 0,
    };
    let mut helper_waits = 0u64;
    let mut helper_jumps = 0u64;
    let mut helper_blocked = false;
    let mut helper_finish: Cycle = 0;

    // One "step" = one memory access (plus, for the main thread, the
    // iteration's compute when it finishes the iteration's refs).
    while !main.done {
        // Re-sync the helper against the main thread's progress.
        if !helper.done {
            if helper.iter < main.iter {
                // Fell behind: jump ahead like a real resync.
                helper.iter = (main.iter + schedule.jump_distance() as usize).min(n);
                helper.ref_idx = 0;
                helper_jumps += 1;
                if helper.iter >= n {
                    helper.done = true;
                    helper_finish = helper.clock;
                }
            }
            let was_blocked = helper_blocked;
            helper_blocked = !helper.done && helper.iter >= main.iter + schedule.window();
            if helper_blocked && !was_blocked {
                helper_waits += 1;
            }
            if was_blocked && !helper_blocked {
                // Spun until the main thread advanced.
                helper.clock = helper.clock.max(main.clock);
            }
        }

        let run_helper = !helper.done && !helper_blocked && helper.clock <= main.clock;
        if run_helper {
            let step = schedule.step(helper.iter);
            step_helper(
                0,
                &mut helper,
                &mut mem,
                ct,
                step,
                n,
                &mut helper_finish,
                opts,
                sink,
            );
        } else {
            let before = main.iter;
            step_main(0, &mut main, &mut mem, ct, n, sink);
            if main.iter != before {
                schedule.on_main_iter(before, &mem, main.clock);
            }
        }
    }
    if !helper.done {
        helper_finish = helper.clock;
    }

    let stats = mem.finish_stats_ev(sink);
    release_sim(cache_cfg, mem);
    Ok(RunResult {
        runtime: main.clock,
        helper_runtime: helper_finish,
        stats,
        outer_iters: n,
        helper_waits,
        helper_jumps,
    })
}

/// What one lane of a batched run simulates: the untransformed program,
/// or the SP mechanism at a fixed parameter point.
///
/// The adaptive controller is deliberately *not* expressible here: its
/// schedule mutates on main-thread feedback through
/// [`HelperSchedule::on_main_iter`], which the lockstep batched driver
/// does not deliver. Static grids are exactly what distance sweeps need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSpec {
    /// Main thread only (the paper's baseline).
    Original,
    /// Main + helper under the static SP plan.
    Sp(SpParams),
}

/// Replay state for one lane's helper thread.
struct HelperLane {
    cur: Cursor,
    sched: StaticSchedule,
    blocked: bool,
    waits: u64,
    jumps: u64,
    finish: Cycle,
}

/// Replay state for one lane: a main-thread cursor plus, for SP lanes,
/// the helper and its leash bookkeeping.
struct LaneState {
    main: Cursor,
    helper: Option<HelperLane>,
}

/// `k` independent co-simulations advancing in lockstep over one
/// compiled trace: a lane-structured [`MemorySystem`] (all lanes' tags
/// for a set adjacent in memory) plus per-lane replay cursors.
///
/// The batch streams each [`sp_trace::CompiledRef`] once — decode,
/// set-indexing, and loop control are shared — and applies it to every
/// lane back to back, so the k accesses touch adjacent tag columns while
/// they are hot in the host cache. Each lane runs *literally the scalar
/// engine's code* against its own lane of the memory system, which is
/// what makes the batched counters bit-identical to k scalar runs.
pub struct LaneBatch {
    mem: MemorySystem,
    lanes: Vec<LaneState>,
    /// Virtual iteration count (`outer_iters * passes`).
    n: usize,
    opts: EngineOptions,
}

impl LaneBatch {
    fn new(
        ct: &CompiledTrace,
        cache_cfg: CacheConfig,
        specs: &[LaneSpec],
        opts: EngineOptions,
    ) -> Self {
        let n = ct.outer_iters() * opts.passes;
        let lanes = specs
            .iter()
            .map(|spec| LaneState {
                main: Cursor {
                    iter: 0,
                    ref_idx: 0,
                    clock: 0,
                    done: n == 0,
                },
                helper: match spec {
                    LaneSpec::Original => None,
                    LaneSpec::Sp(params) => Some(HelperLane {
                        cur: Cursor {
                            iter: 0,
                            ref_idx: 0,
                            clock: 0,
                            done: n == 0,
                        },
                        sched: StaticSchedule::new(*params),
                        blocked: false,
                        waits: 0,
                        jumps: 0,
                        finish: 0,
                    }),
                },
            })
            .collect();
        LaneBatch {
            mem: acquire_batch(cache_cfg, specs.len()),
            lanes,
            n,
            opts,
        }
    }

    /// Advance lane `li` by one main-thread step, first letting its
    /// helper run as far as the co-sim interleaving allows. This is the
    /// scalar loop body of [`run_scheduled_compiled_ev`] verbatim — the
    /// re-sync (jump / block / clock catch-up) runs before *every* step,
    /// and the helper runs whenever its clock has not passed the main
    /// thread's — just unrolled so the main thread retires exactly one
    /// step per call, keeping all lanes on the same `CompiledRef`.
    fn advance<S: EventSink>(&mut self, li: usize, ct: &CompiledTrace, sink: &mut S) {
        let n = self.n;
        let lane = &mut self.lanes[li];
        loop {
            if let Some(h) = &mut lane.helper {
                if !h.cur.done {
                    if h.cur.iter < lane.main.iter {
                        // Fell behind: jump ahead like a real resync.
                        h.cur.iter = (lane.main.iter + h.sched.jump_distance() as usize).min(n);
                        h.cur.ref_idx = 0;
                        h.jumps += 1;
                        if h.cur.iter >= n {
                            h.cur.done = true;
                            h.finish = h.cur.clock;
                        }
                    }
                    let was_blocked = h.blocked;
                    h.blocked = !h.cur.done && h.cur.iter >= lane.main.iter + h.sched.window();
                    if h.blocked && !was_blocked {
                        h.waits += 1;
                    }
                    if was_blocked && !h.blocked {
                        // Spun until the main thread advanced.
                        h.cur.clock = h.cur.clock.max(lane.main.clock);
                    }
                }
                if !h.cur.done && !h.blocked && h.cur.clock <= lane.main.clock {
                    let step = h.sched.step(h.cur.iter);
                    step_helper(
                        li,
                        &mut h.cur,
                        &mut self.mem,
                        ct,
                        step,
                        n,
                        &mut h.finish,
                        self.opts,
                        sink,
                    );
                    continue;
                }
            }
            step_main(li, &mut lane.main, &mut self.mem, ct, n, sink);
            return;
        }
    }

    /// Collect lane `li`'s result (final drain included).
    fn finish_lane<S: EventSink>(&mut self, li: usize, sink: &mut S) -> RunResult {
        let lane = &mut self.lanes[li];
        if let Some(h) = &mut lane.helper {
            if !h.cur.done {
                h.finish = h.cur.clock;
            }
        }
        let stats = self.mem.finish_stats_lane_ev(li, sink);
        RunResult {
            runtime: lane.main.clock,
            helper_runtime: lane.helper.as_ref().map_or(0, |h| h.finish),
            stats,
            outer_iters: self.n,
            helper_waits: lane.helper.as_ref().map_or(0, |h| h.waits),
            helper_jumps: lane.helper.as_ref().map_or(0, |h| h.jumps),
        }
    }
}

/// Run `specs.len()` independent simulations of `ct` in one pass over
/// the trace — one [`LaneSpec`] per lane. Returns one [`RunResult`] per
/// lane, each bit-identical to the corresponding scalar run
/// ([`run_original_passes_compiled`] / [`run_sp_with_compiled`]).
pub fn run_trace_batched(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    specs: &[LaneSpec],
    opts: EngineOptions,
) -> Result<Vec<RunResult>, GeometryMismatch> {
    let mut sinks = vec![NullSink; specs.len()];
    run_trace_batched_ev(ct, cache_cfg, specs, opts, &mut sinks)
}

/// [`run_trace_batched`] with one event sink per lane. Each lane's sink
/// observes exactly the event stream its scalar run would emit.
pub fn run_trace_batched_ev<S: EventSink>(
    ct: &CompiledTrace,
    cache_cfg: CacheConfig,
    specs: &[LaneSpec],
    opts: EngineOptions,
    sinks: &mut [S],
) -> Result<Vec<RunResult>, GeometryMismatch> {
    assert!(opts.passes > 0, "need at least one pass");
    assert!(!specs.is_empty(), "need at least one lane");
    assert_eq!(specs.len(), sinks.len(), "one sink per lane");
    ct.ensure_geometry(cache_cfg.trace_geometry())?;
    let k = specs.len();
    let _sp = sp_obs::span!(
        "simulate",
        mode = "batched",
        lanes = k,
        passes = opts.passes
    );
    let mut batch = LaneBatch::new(ct, cache_cfg, specs, opts);

    // Stream the trace once, in blocks of whole virtual iterations:
    // every lane replays a block's compiled records back to back before
    // the next lane starts the same block, so the records stay hot in
    // the host cache while each lane's private (cache/MSHR/prefetcher)
    // state sees a long run of locality. Lanes are fully independent,
    // which makes the interleave order free — any schedule yields
    // bit-identical results — so the block size only tunes host
    // locality, not behaviour. `steps` counts main steps per iteration
    // (one per ref; one boundary-only step when the iteration is empty),
    // which holds every lane on the same record range.
    let mut v = 0usize;
    while v < batch.n {
        let mut steps = 0usize;
        while v < batch.n && steps < BATCH_BLOCK_STEPS {
            steps += ct.iter_refs(v % ct.outer_iters()).len().max(1);
            v += 1;
        }
        for (li, sink) in sinks.iter_mut().enumerate() {
            for _ in 0..steps {
                batch.advance(li, ct, sink);
            }
        }
    }

    let results = (0..k)
        .map(|li| batch.finish_lane(li, &mut sinks[li]))
        .collect();
    release_batch(cache_cfg, k, batch.mem);
    Ok(results)
}

/// Execute the main thread's next access in `lane`; advances its clock,
/// including the iteration's compute cycles when the iteration ends.
fn step_main<S: EventSink>(
    lane: usize,
    c: &mut Cursor,
    mem: &mut MemorySystem,
    ct: &CompiledTrace,
    n: usize,
    sink: &mut S,
) {
    let it = c.iter % ct.outer_iters();
    let refs = ct.iter_refs(it);
    let total = refs.len();
    if c.ref_idx < total {
        let res = mem.demand_access_lane_ev(
            lane,
            Entity::Main,
            &ct.get(refs.start + c.ref_idx),
            c.clock,
            sink,
        );
        c.clock = res.complete_at;
        c.ref_idx += 1;
    }
    if c.ref_idx >= total {
        c.clock += ct.compute_cycles(it);
        c.iter += 1;
        c.ref_idx = 0;
        if c.iter >= n {
            c.done = true;
        }
    }
}

/// Execute the helper thread's next access in `lane` per its SP plan.
#[allow(clippy::too_many_arguments)]
fn step_helper<S: EventSink>(
    lane: usize,
    c: &mut Cursor,
    mem: &mut MemorySystem,
    ct: &CompiledTrace,
    step: HelperStep,
    n: usize,
    finish: &mut Cycle,
    opts: EngineOptions,
    sink: &mut S,
) {
    let it = c.iter % ct.outer_iters();
    let prefetching = step == HelperStep::Prefetch;
    // The helper's work list for this iteration: backbone (blocking loads
    // whose fills are still speculative — everything the helper brings in
    // is a prefetch from the main thread's point of view), then — on
    // pre-executed iterations — the inner loads.
    let backbone = ct.iter_backbone(it);
    let inner = ct.iter_inner(it);
    let backbone_len = backbone.len();
    let total = if prefetching {
        backbone_len + inner.len()
    } else {
        backbone_len
    };
    let mut idx = c.ref_idx;
    // Skip inner refs the helper doesn't replicate (stores).
    loop {
        if idx >= total {
            break;
        }
        if idx < backbone_len {
            let res = mem.helper_load_lane_ev(lane, &ct.get(backbone.start + idx), c.clock, sink);
            c.clock = res.complete_at;
            idx += 1;
            break;
        }
        let cr = ct.get(inner.start + (idx - backbone_len));
        if cr.kind == AccessKind::Load {
            let res = if opts.blocking_helper {
                mem.helper_load_lane_ev(lane, &cr, c.clock, sink)
            } else {
                // The projections are kind-independent, so the compiled
                // record stands in for `mem_ref().as_prefetch()` directly.
                mem.prefetch_access_lane_ev(lane, &cr, c.clock, sink)
            };
            c.clock = res.complete_at;
            idx += 1;
            break;
        }
        idx += 1; // store or other: dropped, try the next ref
    }
    c.ref_idx = idx;
    if c.ref_idx >= total {
        c.iter += 1;
        c.ref_idx = 0;
        if c.iter >= n {
            c.done = true;
            *finish = c.clock;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cachesim::{CacheGeometry, HitClass};
    use sp_trace::synth;

    fn cfg() -> CacheConfig {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(1024, 2, 64),
            l2: CacheGeometry::new(16 * 1024, 4, 64),
            hw_prefetchers: false,
            ..CacheConfig::scaled_default()
        }
    }

    #[test]
    fn original_run_accounts_every_reference() {
        let t = synth::random(200, 4, 0, 1 << 22, 3, 5);
        let r = run_original(&t, cfg());
        assert_eq!(r.stats.main.demand_accesses(), 800);
        assert_eq!(r.stats.helper.demand_accesses(), 0);
        assert!(
            r.runtime >= 200 * 5,
            "compute cycles must be in the runtime"
        );
        assert_eq!(r.outer_iters, 200);
    }

    #[test]
    fn original_run_is_deterministic() {
        let t = synth::random(100, 4, 0, 1 << 20, 9, 2);
        let a = run_original(&t, cfg());
        let b = run_original(&t, cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn sp_helper_issues_prefetches_at_rp_rate() {
        // Pointer-chase backbone + 2 inner loads per iteration.
        let mut t = synth::pointer_chase(400, 64, 1, 0);
        for (i, it) in t.iters.iter_mut().enumerate() {
            it.inner = vec![
                sp_trace::MemRef::load(0x40_0000 + i as u64 * 64, sp_trace::SiteId(1)),
                sp_trace::MemRef::load(0x80_0000 + i as u64 * 64, sp_trace::SiteId(2)),
            ];
        }
        let r = run_sp(&t, cfg(), SpParams::new(4, 4));
        // Helper chases every backbone (speculative loads) and covers
        // ~half the iterations' 2 inner loads each: ~400 + ~400.
        let p = r.stats.prefetches_issued[0];
        assert!((600..=900).contains(&p), "prefetches {p} should be ~800");
        // Helper's backbone chases are demand loads.
        assert!(r.stats.helper.demand_accesses() > 0);
    }

    #[test]
    fn sp_reduces_main_thread_total_misses_on_a_prefetchable_loop() {
        // Every iteration misses in the original (streaming new blocks,
        // no hw prefetchers): the helper turns a large share into (at
        // least partial) hits.
        let t = synth::sequential(2000, 2, 0, 64, 0);
        let orig = run_original(&t, cfg());
        let sp = run_sp(&t, cfg(), SpParams::new(8, 8));
        assert!(
            sp.stats.main.total_misses < orig.stats.main.total_misses,
            "SP must cut misses: {} vs {}",
            sp.stats.main.total_misses,
            orig.stats.main.total_misses
        );
        assert!(
            sp.stats.main.partial_hits + sp.stats.main.total_hits
                > orig.stats.main.partial_hits + orig.stats.main.total_hits
        );
    }

    #[test]
    fn helper_respects_the_sync_window() {
        let t = synth::sequential(1000, 2, 0, 64, 50);
        let r = run_sp(&t, cfg(), SpParams::new(2, 2));
        // With a tight window on a slow main loop, the helper must block
        // at least once.
        assert!(r.helper_waits > 0, "helper should hit the window");
    }

    #[test]
    fn sp_run_is_deterministic() {
        let t = synth::random(300, 3, 0, 1 << 20, 17, 4);
        let a = run_sp(&t, cfg(), SpParams::new(4, 4));
        let b = run_sp(&t, cfg(), SpParams::new(4, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let t = sp_trace::HotLoopTrace::new("empty");
        let r = run_sp(&t, cfg(), SpParams::new(1, 1));
        assert_eq!(r.runtime, 0);
        assert_eq!(r.stats.main.demand_accesses(), 0);
        let o = run_original(&t, cfg());
        assert_eq!(o.runtime, 0);
    }

    #[test]
    fn helper_never_issues_store_prefetches() {
        let mut t = synth::sequential(100, 1, 0, 64, 0);
        for it in t.iters.iter_mut() {
            it.inner
                .push(sp_trace::MemRef::store(0x99_0000, sp_trace::SiteId(7)));
        }
        let r = run_sp(&t, cfg(), SpParams::conventional());
        // 100 loads prefetched, stores dropped; allow the engine's own
        // issue accounting only.
        assert_eq!(r.stats.prefetches_issued[0], 100);
    }

    #[test]
    fn main_thread_timing_unaffected_by_helper_on_disjoint_streams() {
        // Helper prefetches a stream disjoint from the main's; with an
        // uncontended bus the main thread's class counts are unchanged.
        let t = synth::sequential(64, 1, 0, 64, 0);
        let orig = run_original(&t, cfg());
        // Conventional helper on the same trace touches the same stream;
        // instead check the degenerate case: distance so large the helper
        // never gets to run past the window... simplest invariant: totals
        // conserve.
        let sp = run_sp(&t, cfg(), SpParams::new(1, 1));
        assert_eq!(
            sp.stats.main.demand_accesses(),
            orig.stats.main.demand_accesses(),
            "main thread executes the same references regardless of SP"
        );
    }

    #[test]
    fn multi_pass_executes_the_loop_repeatedly() {
        let t = synth::random(100, 3, 0, 1 << 14, 5, 2);
        let one = run_original(&t, cfg());
        let three = run_original_passes(&t, cfg(), 3);
        assert_eq!(three.outer_iters, 300);
        assert_eq!(
            three.stats.main.demand_accesses(),
            3 * one.stats.main.demand_accesses()
        );
    }

    #[test]
    fn warm_passes_are_cheaper_when_the_footprint_fits() {
        // Footprint ~64 blocks (fits the 16KB L2): pass 2+ mostly hits.
        let t = synth::random(200, 2, 0, 64 * 64, 7, 0);
        let one = run_original(&t, cfg());
        let two = run_original_passes(&t, cfg(), 2);
        assert!(
            two.runtime < one.runtime * 2,
            "second pass must be cheaper: {} vs 2x{}",
            two.runtime,
            one.runtime
        );
        assert!(two.stats.main.total_misses < one.stats.main.total_misses * 2);
    }

    #[test]
    fn sp_multi_pass_helper_follows_across_passes() {
        let t = synth::sequential(300, 2, 0, 64, 0);
        let opts = EngineOptions {
            passes: 3,
            ..EngineOptions::default()
        };
        let r = run_sp_with(&t, cfg(), SpParams::new(4, 4), opts);
        assert_eq!(r.outer_iters, 900);
        // Helper keeps prefetching in later passes.
        assert!(r.stats.prefetches_issued[0] > 400);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let t = synth::sequential(10, 1, 0, 64, 0);
        let _ = run_original_passes(&t, cfg(), 0);
    }

    #[test]
    fn compiled_runs_match_trace_runs_exactly() {
        let t = synth::random(250, 3, 0, 1 << 20, 31, 2);
        let c = cfg();
        let ct = compile_trace(&t, &c);
        assert_eq!(
            run_original_passes(&t, c, 2),
            run_original_passes_compiled(&ct, c, 2).unwrap()
        );
        let params = SpParams::new(4, 4);
        assert_eq!(
            run_sp(&t, c, params),
            run_sp_with_compiled(&ct, c, params, EngineOptions::default()).unwrap()
        );
        let opts = EngineOptions {
            blocking_helper: false,
            ..EngineOptions::default()
        };
        assert_eq!(
            run_sp_with(&t, c, params, opts),
            run_sp_with_compiled(&ct, c, params, opts).unwrap()
        );
    }

    #[test]
    fn compiled_run_rejects_mismatched_geometry() {
        let t = synth::sequential(50, 1, 0, 64, 0);
        let ct = compile_trace(&t, &cfg());
        let other = CacheConfig {
            l2: sp_cachesim::CacheGeometry::new(32 * 1024, 4, 64),
            ..cfg()
        };
        let err = run_original_passes_compiled(&ct, other, 1).unwrap_err();
        assert_eq!(err.compiled_for, cfg().trace_geometry());
        assert_eq!(err.requested, other.trace_geometry());
        assert!(
            run_sp_with_compiled(&ct, other, SpParams::new(2, 2), EngineOptions::default())
                .is_err()
        );
    }

    #[test]
    fn same_thread_reruns_through_the_parked_simulator_are_identical() {
        // The build counter is process-wide, so concurrent tests make an
        // exact count assertion racy here; the single-test
        // `tests/sim_reuse.rs` pins the count. This test pins what reuse
        // must preserve: reruns and interleaved configs stay bit-identical.
        let t = synth::random(80, 2, 0, 1 << 18, 13, 1);
        let c = cfg();
        let other = CacheConfig {
            l2: sp_cachesim::CacheGeometry::new(32 * 1024, 4, 64),
            ..cfg()
        };
        let first = run_original(&t, c);
        let first_other = run_original(&t, other);
        for _ in 0..3 {
            assert_eq!(run_original(&t, c), first);
            assert_eq!(run_original(&t, other), first_other, "config swap");
        }
    }

    #[test]
    fn batched_lanes_match_their_scalar_runs_bit_for_bit() {
        let t = synth::random(250, 3, 0, 1 << 20, 31, 2);
        let c = cfg();
        let ct = compile_trace(&t, &c);
        let opts = EngineOptions {
            passes: 2,
            ..EngineOptions::default()
        };
        let specs = [
            LaneSpec::Original,
            LaneSpec::Sp(SpParams::new(4, 4)),
            LaneSpec::Sp(SpParams::new(16, 16)),
            LaneSpec::Sp(SpParams::new(2, 6)),
        ];
        let batched = run_trace_batched(&ct, c, &specs, opts).unwrap();
        for (spec, got) in specs.iter().zip(&batched) {
            let scalar = match spec {
                LaneSpec::Original => run_original_passes_compiled(&ct, c, opts.passes).unwrap(),
                LaneSpec::Sp(p) => run_sp_with_compiled(&ct, c, *p, opts).unwrap(),
            };
            assert_eq!(got, &scalar, "lane {spec:?} must replay its scalar run");
        }
    }

    #[test]
    fn batched_single_lane_equals_scalar() {
        let t = synth::sequential(300, 2, 0, 64, 1);
        let c = cfg();
        let ct = compile_trace(&t, &c);
        let opts = EngineOptions::default();
        let p = SpParams::new(8, 8);
        let batched = run_trace_batched(&ct, c, &[LaneSpec::Sp(p)], opts).unwrap();
        assert_eq!(batched[0], run_sp_with_compiled(&ct, c, p, opts).unwrap());
    }

    #[test]
    fn batched_empty_trace_is_a_noop() {
        let t = sp_trace::HotLoopTrace::new("empty");
        let c = cfg();
        let ct = compile_trace(&t, &c);
        let r = run_trace_batched(
            &ct,
            c,
            &[LaneSpec::Original, LaneSpec::Sp(SpParams::new(1, 1))],
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(r[0].runtime, 0);
        assert_eq!(r[1].stats.main.demand_accesses(), 0);
    }

    #[test]
    fn first_access_classification_is_total_miss() {
        let mut mem = MemorySystem::new(cfg());
        let res = mem.demand_access(Entity::Main, sp_trace::MemRef::anon(0x1234), 0);
        assert_eq!(res.class, HitClass::TotalMiss);
    }
}
