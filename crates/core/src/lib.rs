//! # sp-core
//!
//! The paper's contribution: **Skip helper-threaded Prefetching (SP)**
//! with a **Set-Affinity-bounded prefetch distance**.
//!
//! * [`params`] — `A_SKI` (prefetch distance), `A_PRE` (degree), and
//!   `RP = A_PRE / (A_SKI + A_PRE)` (ratio).
//! * [`calr`] — CALR profiling and the paper's RP-selection rule.
//! * [`skip`] — the SP transformation: which outer iterations the helper
//!   skips vs. pre-executes, and which loads become prefetches.
//! * [`engine`] — two-core co-simulation of main + helper on the shared
//!   memory system from `sp-cachesim`.
//! * [`affinity`] — the Fig. 3 Set Affinity algorithm, Definitions 1–3,
//!   and the `distance < min SA / 2` bound.
//! * [`pollution`] — the paper's behaviour-change metric and pollution
//!   summaries.
//! * [`distance`] — the sweep harness behind Figures 2 and 4–6, and the
//!   bound-driven distance controller.
//!
//! ## Quick start
//!
//! ```
//! use sp_core::prelude::*;
//! use sp_cachesim::CacheConfig;
//! use sp_workloads::{Benchmark, Workload};
//!
//! // Build a (tiny) EM3D instance and profile its hot loop.
//! let w = Workload::tiny(Benchmark::Em3d);
//! let trace = w.trace();
//! let cfg = CacheConfig::scaled_default();
//!
//! // The paper's pipeline: Set Affinity -> distance bound -> SP run.
//! let rec = recommend_distance(&trace, &cfg);
//! let d = controlled_distance(64, &rec); // clamp a requested distance
//! let params = SpParams::from_distance_rp(d, 0.5);
//! let baseline = run_original(&trace, cfg);
//! let sp = run_sp(&trace, cfg, params);
//! assert!(sp.stats.prefetches_issued[0] > 0);
//! assert_eq!(baseline.outer_iters, sp.outer_iters);
//! ```

pub mod adaptive;
pub mod affinity;
pub mod calr;
pub mod distance;
pub mod engine;
pub mod params;
pub mod pollution;
pub mod skip;

pub use adaptive::{
    run_sp_adaptive, AdaptivePolicy, AdaptiveRunResult, EpochFeedback, EpochRecord,
    FeedbackController,
};
pub use affinity::{
    helper_set_affinity, original_set_affinity, sampled_set_affinity, set_affinity_stream,
    SetAffinityReport,
};
pub use calr::{estimate_calr, select_params, select_rp, CalrProfile};
pub use distance::{
    controlled_distance, recommend_distance, sweep_compiled_batched_jobs_with,
    sweep_compiled_jobs_with, sweep_distances, sweep_distances_batched_jobs_with,
    sweep_distances_jobs, sweep_distances_jobs_with, sweep_epochs_compiled_batched_jobs_with,
    sweep_epochs_compiled_jobs_with, sweep_events_compiled_batched_jobs_with,
    sweep_events_compiled_jobs_with, DistanceRecommendation, Sweep, SweepEpochs, SweepEvents,
    SweepPoint,
};
pub use engine::{
    compile_trace, run_original, run_original_passes, run_original_passes_compiled,
    run_original_passes_compiled_ev, run_scheduled, run_scheduled_compiled,
    run_scheduled_compiled_ev, run_sp, run_sp_with, run_sp_with_compiled, run_sp_with_compiled_ev,
    run_trace_batched, run_trace_batched_ev, EngineOptions, HelperSchedule, LaneBatch, LaneSpec,
    RunResult, StaticSchedule,
};
pub use params::SpParams;
pub use pollution::{BehaviorChange, PollutionSummary};
pub use skip::{helper_refs, plan, summarize, HelperStep, PlanSummary};

/// The deterministic fan-out executor the sweep harness runs on,
/// re-exported so downstream drivers can submit their own job grids.
pub use sp_runner as runner;
pub use sp_runner::{
    map_jobs, resolve_jobs, run_jobs, JobMetric, RunnerReport, SubmitError, WorkerPool, WorkerStat,
};

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::affinity::{helper_set_affinity, original_set_affinity, SetAffinityReport};
    pub use crate::calr::{estimate_calr, select_rp};
    pub use crate::distance::{
        controlled_distance, recommend_distance, sweep_distances, sweep_distances_jobs,
        DistanceRecommendation,
    };
    pub use crate::engine::{run_original, run_sp, run_sp_with, EngineOptions, RunResult};
    pub use crate::params::SpParams;
    pub use crate::pollution::{BehaviorChange, PollutionSummary};
}
