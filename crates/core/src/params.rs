//! SP parameters: prefetch distance, degree, and ratio.

/// The Skip-Prefetching schedule parameters (paper §II.A).
///
/// The helper thread processes the outer hot loop in rounds of
/// `a_ski + a_pre` iterations: it *skips* the inner loops of the first
/// `a_ski` iterations (chasing only the backbone pointer) and
/// *pre-executes* the inner loops of the next `a_pre` iterations.
///
/// * `a_ski` is the **prefetch distance** — "schedules prefetches to get
///   ahead of main thread the proper amount of iteration in each round".
/// * `a_pre` is the **prefetch degree** — how many iterations each round
///   pre-executes.
/// * `RP = a_pre / (a_ski + a_pre)` is the **prefetch ratio** — the
///   fraction of delinquent loads the helper covers.
///
/// ```
/// use sp_core::SpParams;
/// // The paper's operating point for its low-CALR benchmarks:
/// let p = SpParams::from_distance_rp(16, 0.5);
/// assert_eq!((p.a_ski, p.a_pre), (16, 16));
/// assert_eq!(p.rp(), 0.5);
/// // Conventional helper prefetching covers everything:
/// assert_eq!(SpParams::conventional().rp(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpParams {
    /// Prefetch distance `A_SKI` (iterations skipped per round).
    pub a_ski: u32,
    /// Prefetch degree `A_PRE` (iterations pre-executed per round).
    pub a_pre: u32,
}

impl SpParams {
    /// Build a parameter set.
    ///
    /// # Panics
    /// If `a_pre == 0` (a helper that never prefetches is not SP).
    pub fn new(a_ski: u32, a_pre: u32) -> Self {
        assert!(a_pre > 0, "A_PRE must be positive");
        SpParams { a_ski, a_pre }
    }

    /// The prefetch ratio `RP = A_PRE / (A_SKI + A_PRE)`.
    pub fn rp(&self) -> f64 {
        self.a_pre as f64 / (self.a_ski + self.a_pre) as f64
    }

    /// Iterations per round.
    pub fn round_len(&self) -> u32 {
        self.a_ski + self.a_pre
    }

    /// The prefetch distance (`A_SKI`).
    pub fn distance(&self) -> u32 {
        self.a_ski
    }

    /// Derive `(A_SKI, A_PRE)` from a prefetch distance and a target
    /// ratio — the parameterization the paper's sweeps use (they fix
    /// `RP = 0.5` and grow the distance, so `A_PRE = A_SKI`).
    ///
    /// `A_PRE` is rounded to the nearest positive integer satisfying
    /// `A_PRE / (A_SKI + A_PRE) ≈ rp`; for `rp >= 1.0` the distance must
    /// be 0 (conventional helper prefetching covers everything).
    ///
    /// # Panics
    /// If `rp` is not in `(0, 1]`, or `rp == 1` with a nonzero distance.
    pub fn from_distance_rp(distance: u32, rp: f64) -> Self {
        assert!(rp > 0.0 && rp <= 1.0, "RP must be in (0, 1]");
        if (rp - 1.0).abs() < 1e-12 {
            assert!(
                distance == 0,
                "RP = 1 means A_SKI = 0; a nonzero distance is inconsistent"
            );
            return SpParams::new(0, 1);
        }
        let a_pre = ((distance as f64 * rp / (1.0 - rp)).round() as u32).max(1);
        SpParams::new(distance, a_pre)
    }

    /// Conventional helper-threaded prefetching (the paper's contrast
    /// case): the helper covers *every* delinquent load (`RP = 1`).
    pub fn conventional() -> Self {
        SpParams::new(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rp_matches_definition() {
        let p = SpParams::new(10, 10);
        assert!((p.rp() - 0.5).abs() < 1e-12);
        assert_eq!(p.round_len(), 20);
        assert_eq!(p.distance(), 10);
        let p = SpParams::new(0, 5);
        assert!((p.rp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_distance_rp_half_gives_equal_ski_pre() {
        for d in [1u32, 2, 10, 800, 3150] {
            let p = SpParams::from_distance_rp(d, 0.5);
            assert_eq!(p.a_ski, d);
            assert_eq!(p.a_pre, d);
        }
    }

    #[test]
    fn from_distance_rp_quarter() {
        // rp 0.25 -> a_pre = a_ski / 3.
        let p = SpParams::from_distance_rp(9, 0.25);
        assert_eq!(p.a_ski, 9);
        assert_eq!(p.a_pre, 3);
        assert!((p.rp() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_keeps_positive_degree() {
        let p = SpParams::from_distance_rp(0, 0.5);
        assert_eq!(p.a_ski, 0);
        assert!(p.a_pre >= 1);
    }

    #[test]
    fn conventional_is_rp_one() {
        let p = SpParams::conventional();
        assert!((p.rp() - 1.0).abs() < 1e-12);
        assert_eq!(p.distance(), 0);
    }

    #[test]
    fn rp_one_via_from_distance() {
        let p = SpParams::from_distance_rp(0, 1.0);
        assert!((p.rp() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "A_PRE must be positive")]
    fn zero_a_pre_rejected() {
        let _ = SpParams::new(5, 0);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rp_one_with_distance_rejected() {
        let _ = SpParams::from_distance_rp(5, 1.0);
    }

    #[test]
    #[should_panic(expected = "RP must be in")]
    fn rp_out_of_range_rejected() {
        let _ = SpParams::from_distance_rp(5, 0.0);
    }
}
