//! Pollution metrics and the paper's access-behaviour deltas.
//!
//! Figures 4(a), 5(a), 6(a) plot the *change of access behaviour*: the
//! difference in totally hits / totally misses / partially hits between
//! the SP run and the original run, **normalized to the original run's
//! memory accesses** (paper §V.B: "The results ... are normalized to the
//! memory accesses of the original programs"), in percent.

use crate::engine::RunResult;
use sp_cachesim::PollutionStats;

/// The paper's behaviour-change triple for one SP configuration, in
/// percent of the original run's memory accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorChange {
    /// Δ totally L2 cache hits (positive = SP gained hits).
    pub totally_hit_pct: f64,
    /// Δ totally L2 cache misses (negative = SP eliminated misses).
    pub totally_miss_pct: f64,
    /// Δ partially L2 cache hits.
    pub partially_hit_pct: f64,
}

impl BehaviorChange {
    /// Compute the deltas between an SP run and the original run of the
    /// same trace.
    ///
    /// # Panics
    /// If the original run has no memory accesses (nothing to normalize
    /// by — the paper's metric is undefined there).
    pub fn between(orig: &RunResult, sp: &RunResult) -> Self {
        let base = orig.stats.main.memory_accesses();
        assert!(base > 0, "original run must have memory accesses");
        let base = base as f64;
        let d = |a: u64, b: u64| (b as f64 - a as f64) / base * 100.0;
        BehaviorChange {
            totally_hit_pct: d(orig.stats.main.total_hits, sp.stats.main.total_hits),
            totally_miss_pct: d(orig.stats.main.total_misses, sp.stats.main.total_misses),
            partially_hit_pct: d(orig.stats.main.partial_hits, sp.stats.main.partial_hits),
        }
    }

    /// `true` when SP traded misses for hits (its success criterion:
    /// "decrease totally cache misses and increase cache hits").
    pub fn is_improvement(&self) -> bool {
        self.totally_miss_pct < 0.0 && (self.totally_hit_pct > 0.0 || self.partially_hit_pct > 0.0)
    }
}

/// Pollution summary for a run, with rates relative to L2 fills.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollutionSummary {
    /// Raw counters.
    pub stats: PollutionStats,
    /// Pollution events per L2 fill.
    pub per_fill: f64,
    /// Never-used prefetched lines per issued prefetch (all entities).
    pub dead_prefetch_rate: f64,
}

impl PollutionSummary {
    /// Derive the summary from a run.
    pub fn from_run(run: &RunResult) -> Self {
        let fills = run.stats.l2_fills.max(1) as f64;
        let issued: u64 = run.stats.prefetches_issued.iter().sum();
        PollutionSummary {
            stats: run.stats.pollution,
            per_fill: run.stats.pollution.total() as f64 / fills,
            dead_prefetch_rate: if issued == 0 {
                0.0
            } else {
                run.stats.pollution.dead_prefetches as f64 / issued as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_original, run_sp};
    use crate::params::SpParams;
    use sp_cachesim::{CacheConfig, CacheGeometry};
    use sp_trace::synth;

    fn cfg() -> CacheConfig {
        CacheConfig {
            cores: 2,
            l1: CacheGeometry::new(1024, 2, 64),
            l2: CacheGeometry::new(16 * 1024, 4, 64),
            hw_prefetchers: false,
            ..CacheConfig::scaled_default()
        }
    }

    #[test]
    fn behaviour_change_zero_against_itself() {
        let t = synth::sequential(500, 2, 0, 64, 0);
        let orig = run_original(&t, cfg());
        let b = BehaviorChange::between(&orig, &orig);
        assert_eq!(b.totally_hit_pct, 0.0);
        assert_eq!(b.totally_miss_pct, 0.0);
        assert_eq!(b.partially_hit_pct, 0.0);
        assert!(!b.is_improvement());
    }

    #[test]
    fn sp_on_streaming_trace_is_an_improvement() {
        let t = synth::sequential(2000, 2, 0, 64, 0);
        let orig = run_original(&t, cfg());
        let sp = run_sp(&t, cfg(), SpParams::new(8, 8));
        let b = BehaviorChange::between(&orig, &sp);
        assert!(b.is_improvement(), "{b:?}");
        assert!(b.totally_miss_pct < 0.0);
    }

    #[test]
    fn deltas_are_percentages_of_original_memory_accesses() {
        let t = synth::sequential(1000, 1, 0, 64, 0);
        let orig = run_original(&t, cfg());
        let sp = run_sp(&t, cfg(), SpParams::new(4, 4));
        let b = BehaviorChange::between(&orig, &sp);
        let base = orig.stats.main.memory_accesses() as f64;
        let expect = (sp.stats.main.total_misses as f64 - orig.stats.main.total_misses as f64)
            / base
            * 100.0;
        assert!((b.totally_miss_pct - expect).abs() < 1e-9);
    }

    #[test]
    fn pollution_summary_rates_are_bounded() {
        let t = synth::sequential(1000, 2, 0, 64, 0);
        let sp = run_sp(&t, cfg(), SpParams::new(16, 16));
        let p = PollutionSummary::from_run(&sp);
        assert!(p.per_fill >= 0.0);
        assert!((0.0..=1.0).contains(&p.dead_prefetch_rate));
    }

    #[test]
    fn no_prefetches_means_zero_dead_rate() {
        let t = synth::sequential(100, 1, 0, 64, 0);
        let orig = run_original(&t, cfg());
        let p = PollutionSummary::from_run(&orig);
        assert_eq!(p.dead_prefetch_rate, 0.0);
        assert_eq!(p.stats.total(), 0);
    }
}
