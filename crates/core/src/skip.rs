//! The SP transformation: main-thread hot loop -> helper-thread schedule.
//!
//! Paper Fig. 1(b): per round the helper executes `A_SKI` iterations of
//! the outer loop *omitting the inner loops* (it still chases the
//! backbone pointer — `node_index = node_index->next` — because the list
//! cannot be advanced otherwise), then pre-executes `A_PRE` full
//! iterations whose inner-loop loads become prefetches.

use crate::params::SpParams;
use sp_trace::{HotLoopTrace, MemRef};

/// What the helper thread does with one outer-loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperStep {
    /// Skip: execute only the backbone (advance the pointer chase).
    Chase,
    /// Pre-execute: backbone plus inner-loop loads issued as prefetches.
    Prefetch,
}

/// The helper's per-iteration schedule for a hot loop of `n_iters`
/// outer iterations.
pub fn plan(params: SpParams, n_iters: usize) -> Vec<HelperStep> {
    let round = params.round_len() as usize;
    (0..n_iters)
        .map(|i| {
            if (i % round) < params.a_ski as usize {
                HelperStep::Chase
            } else {
                HelperStep::Prefetch
            }
        })
        .collect()
}

/// The prefetch references the helper issues for one pre-executed
/// iteration: every *load* of the inner loop, converted to a prefetch
/// (the helper "executes only the load's computation" — stores and
/// non-loads are dropped).
pub fn helper_refs(iter_inner: &[MemRef]) -> impl Iterator<Item = MemRef> + '_ {
    iter_inner
        .iter()
        .filter(|r| r.kind.helper_visible())
        .map(|r| r.as_prefetch())
}

/// Summary of an SP plan over a concrete trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSummary {
    /// Outer iterations whose inner loops the helper covers.
    pub covered_iters: usize,
    /// Outer iterations the helper merely chases through.
    pub skipped_iters: usize,
    /// Inner-loop loads converted to prefetches, total.
    pub prefetch_refs: usize,
    /// Achieved coverage ratio (covered / total) — converges to `RP`.
    pub coverage: f64,
}

/// Summarize what `params` would make the helper do on `trace`.
pub fn summarize(params: SpParams, trace: &HotLoopTrace) -> PlanSummary {
    let steps = plan(params, trace.iters.len());
    let mut covered = 0usize;
    let mut prefetch_refs = 0usize;
    for (step, it) in steps.iter().zip(&trace.iters) {
        if *step == HelperStep::Prefetch {
            covered += 1;
            prefetch_refs += helper_refs(&it.inner).count();
        }
    }
    let n = trace.iters.len().max(1);
    PlanSummary {
        covered_iters: covered,
        skipped_iters: trace.iters.len() - covered,
        prefetch_refs,
        coverage: covered as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::{AccessKind, IterRecord, SiteId};

    #[test]
    fn round_structure_is_skip_then_prefetch() {
        let p = SpParams::new(2, 3);
        let steps = plan(p, 12);
        use HelperStep::*;
        assert_eq!(
            steps,
            vec![
                Chase, Chase, Prefetch, Prefetch, Prefetch, Chase, Chase, Prefetch, Prefetch,
                Prefetch, Chase, Chase
            ]
        );
    }

    #[test]
    fn conventional_prefetches_everything() {
        let steps = plan(SpParams::conventional(), 7);
        assert!(steps.iter().all(|s| *s == HelperStep::Prefetch));
    }

    #[test]
    fn coverage_converges_to_rp() {
        let p = SpParams::new(5, 5);
        let mut t = HotLoopTrace::new("t");
        for i in 0..1000u64 {
            t.iters.push(IterRecord {
                backbone: vec![MemRef::load(i * 64, SiteId(0))],
                inner: vec![MemRef::load(i * 64 + 8, SiteId(1))],
                compute_cycles: 0,
            });
        }
        let s = summarize(p, &t);
        assert!(
            (s.coverage - p.rp()).abs() < 0.01,
            "coverage {}",
            s.coverage
        );
        assert_eq!(s.covered_iters + s.skipped_iters, 1000);
        assert_eq!(s.prefetch_refs, s.covered_iters);
    }

    #[test]
    fn helper_refs_drop_stores_and_convert_loads() {
        let inner = vec![
            MemRef::load(0, SiteId(1)),
            MemRef::store(64, SiteId(2)),
            MemRef::load(128, SiteId(3)),
        ];
        let out: Vec<MemRef> = helper_refs(&inner).collect();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.kind == AccessKind::Prefetch));
        assert_eq!(out[0].vaddr, 0);
        assert_eq!(out[1].vaddr, 128);
    }

    #[test]
    fn plan_length_matches_trace() {
        assert_eq!(plan(SpParams::new(3, 1), 10).len(), 10);
        assert!(plan(SpParams::new(3, 1), 0).is_empty());
    }

    #[test]
    fn partial_final_round_is_well_formed() {
        let steps = plan(SpParams::new(4, 4), 10);
        // Final (partial) round: 2 chase steps.
        assert_eq!(steps[8..], [HelperStep::Chase, HelperStep::Chase]);
    }
}
