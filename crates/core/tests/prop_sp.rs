//! Property tests: SP plan tiling, Set Affinity laws, and engine
//! conservation invariants.

use proptest::prelude::*;
use sp_cachesim::{CacheConfig, CacheGeometry};
use sp_core::prelude::*;
use sp_core::{plan, set_affinity_stream, HelperStep};
use sp_trace::{synth, HotLoopTrace, IterRecord, MemRef};

fn tiny_cfg() -> CacheConfig {
    CacheConfig {
        cores: 2,
        l1: CacheGeometry::new(512, 2, 64),
        l2: CacheGeometry::new(4 * 1024, 4, 64),
        hw_prefetchers: false,
        mshr_entries: 4,
        ..CacheConfig::scaled_default()
    }
}

fn arb_trace() -> impl Strategy<Value = HotLoopTrace> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..(1 << 16), 0..2),
            proptest::collection::vec(0u64..(1 << 16), 0..6),
            0u64..30,
        ),
        1..60,
    )
    .prop_map(|iters| {
        let mut t = HotLoopTrace::new("arb");
        for (bb, inner, compute) in iters {
            t.iters.push(IterRecord {
                backbone: bb.into_iter().map(MemRef::anon).collect(),
                inner: inner.into_iter().map(MemRef::anon).collect(),
                compute_cycles: compute,
            });
        }
        t
    })
}

proptest! {
    /// Every full round of the plan contains exactly `a_ski` chases then
    /// `a_pre` prefetches, in that order.
    #[test]
    fn plan_round_tiling(a_ski in 0u32..10, a_pre in 1u32..10, rounds in 1usize..10) {
        let p = SpParams::new(a_ski, a_pre);
        let n = rounds * p.round_len() as usize;
        let steps = plan(p, n);
        for r in 0..rounds {
            let base = r * p.round_len() as usize;
            for k in 0..p.round_len() as usize {
                let expect = if (k as u32) < a_ski { HelperStep::Chase } else { HelperStep::Prefetch };
                prop_assert_eq!(steps[base + k], expect, "round {}, offset {}", r, k);
            }
        }
        // Coverage over full rounds is exactly RP.
        let covered = steps.iter().filter(|s| **s == HelperStep::Prefetch).count();
        prop_assert_eq!(covered, rounds * a_pre as usize);
    }

    /// `from_distance_rp` honours the requested ratio within integer
    /// rounding: |achieved - requested| <= 1/(a_ski + a_pre).
    #[test]
    fn rp_roundtrip(d in 1u32..2000, rp_pct in 5u32..96) {
        let rp = rp_pct as f64 / 100.0;
        let p = SpParams::from_distance_rp(d, rp);
        prop_assert_eq!(p.a_ski, d);
        let tol = 1.0 / p.round_len() as f64;
        prop_assert!((p.rp() - rp).abs() <= tol, "rp {} vs requested {}", p.rp(), rp);
    }

    /// Set Affinity never decreases when associativity grows (same sets).
    #[test]
    fn affinity_monotone_in_ways(seed in 0u64..500) {
        let small = CacheGeometry::new(4 * 1024, 4, 64); // 16 sets
        let big = CacheGeometry::new(8 * 1024, 8, 64);   // 16 sets, 8 ways
        let t = synth::random(120, 6, 0, 1 << 16, seed, 0);
        let rs = original_set_affinity(&t, small);
        let rb = original_set_affinity(&t, big);
        for (set, sa_big) in &rb.per_set {
            let sa_small = rs.per_set.get(set).expect("8-way overflow implies 4-way overflow");
            prop_assert!(sa_small <= sa_big);
        }
    }

    /// Extending a stream never changes the affinity recorded on its
    /// prefix (first-overflow is a prefix property).
    #[test]
    fn affinity_is_prefix_stable(t in arb_trace(), extra in arb_trace()) {
        let geo = CacheGeometry::new(2 * 1024, 2, 64);
        let r1 = original_set_affinity(&t, geo);
        let mut combined = t.clone();
        combined.iters.extend(extra.iters);
        let r2 = original_set_affinity(&combined, geo);
        for (set, sa) in &r1.per_set {
            prop_assert_eq!(r2.per_set.get(set), Some(sa), "set {} changed", set);
        }
        prop_assert!(r2.per_set.len() >= r1.per_set.len());
    }

    /// The generic stream analyzer agrees with the trace wrapper.
    #[test]
    fn stream_and_trace_agree(t in arb_trace()) {
        let geo = CacheGeometry::new(2 * 1024, 2, 64);
        let a = original_set_affinity(&t, geo);
        let b = set_affinity_stream(t.tagged_refs().map(|(i, r)| (i, r.vaddr)), geo);
        prop_assert_eq!(a, b);
    }

    /// Engine conservation: the main thread executes exactly the trace,
    /// original and SP runs agree on that count, and runtime covers the
    /// compute cycles.
    #[test]
    fn engine_conservation(t in arb_trace(), a_ski in 0u32..8, a_pre in 1u32..8) {
        let cfg = tiny_cfg();
        let orig = run_original(&t, cfg);
        let sp = run_sp(&t, cfg, SpParams::new(a_ski, a_pre));
        let refs = t.total_refs() as u64;
        prop_assert_eq!(orig.stats.main.demand_accesses(), refs);
        prop_assert_eq!(sp.stats.main.demand_accesses(), refs);
        let compute: u64 = t.iters.iter().map(|it| it.compute_cycles).sum();
        prop_assert!(orig.runtime >= compute);
        prop_assert!(sp.runtime >= compute);
    }

    /// SP runs are deterministic for arbitrary traces and parameters.
    #[test]
    fn engine_deterministic(t in arb_trace(), a_ski in 0u32..6, a_pre in 1u32..6) {
        let cfg = tiny_cfg();
        let p = SpParams::new(a_ski, a_pre);
        prop_assert_eq!(run_sp(&t, cfg, p), run_sp(&t, cfg, p));
    }

    /// The distance controller never exceeds the bound and is the
    /// identity below it.
    #[test]
    fn controller_clamps(requested in 0u32..10_000, bound in proptest::option::of(1u32..5000)) {
        let rec = DistanceRecommendation {
            affinity: SetAffinityReport::default(),
            max_distance: bound,
        };
        let d = controlled_distance(requested, &rec);
        match bound {
            Some(b) => {
                prop_assert!(d <= b);
                if requested <= b { prop_assert_eq!(d, requested); }
            }
            None => prop_assert_eq!(d, requested),
        }
    }
}
