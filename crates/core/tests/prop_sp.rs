//! Property tests: SP plan tiling, Set Affinity laws, and engine
//! conservation invariants.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only).

use sp_cachesim::{CacheConfig, CacheGeometry};
use sp_core::prelude::*;
use sp_core::{plan, set_affinity_stream, HelperStep};
use sp_testkit::{check, gen_vec, SmallRng};
use sp_trace::{synth, HotLoopTrace, IterRecord, MemRef};

fn tiny_cfg() -> CacheConfig {
    CacheConfig {
        cores: 2,
        l1: CacheGeometry::new(512, 2, 64),
        l2: CacheGeometry::new(4 * 1024, 4, 64),
        hw_prefetchers: false,
        mshr_entries: 4,
        ..CacheConfig::scaled_default()
    }
}

fn arb_trace(rng: &mut SmallRng) -> HotLoopTrace {
    let mut t = HotLoopTrace::new("arb");
    let iters = rng.gen_range(1usize..60);
    for _ in 0..iters {
        let backbone = gen_vec(rng, 0..2, |r| MemRef::anon(r.gen_range(0u64..(1 << 16))));
        let inner = gen_vec(rng, 0..6, |r| MemRef::anon(r.gen_range(0u64..(1 << 16))));
        t.iters.push(IterRecord {
            backbone,
            inner,
            compute_cycles: rng.gen_range(0u64..30),
        });
    }
    t
}

/// Every full round of the plan contains exactly `a_ski` chases then
/// `a_pre` prefetches, in that order.
#[test]
fn plan_round_tiling() {
    check(64, |rng| {
        let a_ski = rng.gen_range(0u32..10);
        let a_pre = rng.gen_range(1u32..10);
        let rounds = rng.gen_range(1usize..10);
        let p = SpParams::new(a_ski, a_pre);
        let n = rounds * p.round_len() as usize;
        let steps = plan(p, n);
        for r in 0..rounds {
            let base = r * p.round_len() as usize;
            for k in 0..p.round_len() as usize {
                let expect = if (k as u32) < a_ski {
                    HelperStep::Chase
                } else {
                    HelperStep::Prefetch
                };
                assert_eq!(steps[base + k], expect, "round {r}, offset {k}");
            }
        }
        // Coverage over full rounds is exactly RP.
        let covered = steps.iter().filter(|s| **s == HelperStep::Prefetch).count();
        assert_eq!(covered, rounds * a_pre as usize);
    });
}

/// `from_distance_rp` honours the requested ratio within integer
/// rounding: |achieved - requested| <= 1/(a_ski + a_pre).
#[test]
fn rp_roundtrip() {
    check(64, |rng| {
        let d = rng.gen_range(1u32..2000);
        let rp = rng.gen_range(5u32..96) as f64 / 100.0;
        let p = SpParams::from_distance_rp(d, rp);
        assert_eq!(p.a_ski, d);
        let tol = 1.0 / p.round_len() as f64;
        assert!(
            (p.rp() - rp).abs() <= tol,
            "rp {} vs requested {}",
            p.rp(),
            rp
        );
    });
}

/// Set Affinity never decreases when associativity grows (same sets).
#[test]
fn affinity_monotone_in_ways() {
    check(64, |rng| {
        let seed = rng.gen_range(0u64..500);
        let small = CacheGeometry::new(4 * 1024, 4, 64); // 16 sets
        let big = CacheGeometry::new(8 * 1024, 8, 64); // 16 sets, 8 ways
        let t = synth::random(120, 6, 0, 1 << 16, seed, 0);
        let rs = original_set_affinity(&t, small);
        let rb = original_set_affinity(&t, big);
        for (set, sa_big) in &rb.per_set {
            let sa_small = rs
                .per_set
                .get(set)
                .expect("8-way overflow implies 4-way overflow");
            assert!(sa_small <= sa_big);
        }
    });
}

/// Extending a stream never changes the affinity recorded on its
/// prefix (first-overflow is a prefix property).
#[test]
fn affinity_is_prefix_stable() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let extra = arb_trace(rng);
        let geo = CacheGeometry::new(2 * 1024, 2, 64);
        let r1 = original_set_affinity(&t, geo);
        let mut combined = t.clone();
        combined.iters.extend(extra.iters);
        let r2 = original_set_affinity(&combined, geo);
        for (set, sa) in &r1.per_set {
            assert_eq!(r2.per_set.get(set), Some(sa), "set {set} changed");
        }
        assert!(r2.per_set.len() >= r1.per_set.len());
    });
}

/// The generic stream analyzer agrees with the trace wrapper.
#[test]
fn stream_and_trace_agree() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let geo = CacheGeometry::new(2 * 1024, 2, 64);
        let a = original_set_affinity(&t, geo);
        let b = set_affinity_stream(t.tagged_refs().map(|(i, r)| (i, r.vaddr)), geo);
        assert_eq!(a, b);
    });
}

/// Engine conservation: the main thread executes exactly the trace,
/// original and SP runs agree on that count, and runtime covers the
/// compute cycles.
#[test]
fn engine_conservation() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let a_ski = rng.gen_range(0u32..8);
        let a_pre = rng.gen_range(1u32..8);
        let cfg = tiny_cfg();
        let orig = run_original(&t, cfg);
        let sp = run_sp(&t, cfg, SpParams::new(a_ski, a_pre));
        let refs = t.total_refs() as u64;
        assert_eq!(orig.stats.main.demand_accesses(), refs);
        assert_eq!(sp.stats.main.demand_accesses(), refs);
        let compute: u64 = t.iters.iter().map(|it| it.compute_cycles).sum();
        assert!(orig.runtime >= compute);
        assert!(sp.runtime >= compute);
    });
}

/// SP runs are deterministic for arbitrary traces and parameters.
#[test]
fn engine_deterministic() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let a_ski = rng.gen_range(0u32..6);
        let a_pre = rng.gen_range(1u32..6);
        let cfg = tiny_cfg();
        let p = SpParams::new(a_ski, a_pre);
        assert_eq!(run_sp(&t, cfg, p), run_sp(&t, cfg, p));
    });
}

/// The distance controller never exceeds the bound and is the
/// identity below it.
#[test]
fn controller_clamps() {
    check(64, |rng| {
        let requested = rng.gen_range(0u32..10_000);
        let bound = if rng.gen_bool(0.5) {
            Some(rng.gen_range(1u32..5000))
        } else {
            None
        };
        let rec = DistanceRecommendation {
            affinity: SetAffinityReport::default(),
            max_distance: bound,
        };
        let d = controlled_distance(requested, &rec);
        match bound {
            Some(b) => {
                assert!(d <= b);
                if requested <= b {
                    assert_eq!(d, requested);
                }
            }
            None => assert_eq!(d, requested),
        }
    });
}
