//! Native EM3D with a real SP helper thread.

use crate::prefetch::prefetch_read;
use crate::progress::ProgressWindow;
use crate::sync::Mutex;
use crate::NativeReport;
use sp_core::skip::{plan, HelperStep};
use sp_core::SpParams;
use sp_workloads::Em3d;
use std::time::Instant;

/// A raw pointer the helper thread may carry across the spawn boundary.
/// The helper only *prefetches* through it (no reads or writes), so no
/// data race can arise from the main thread concurrently writing the
/// pointee.
#[derive(Clone, Copy)]
struct PrefetchPtr(*const f64);
// SAFETY: the wrapped pointer is never dereferenced, only passed to the
// prefetch intrinsic, which performs no language-level memory access.
unsafe impl Send for PrefetchPtr {}

/// Run `passes` native `compute_nodes` passes over `graph`, optionally
/// with an SP helper thread (`params = Some(..)`).
///
/// The helper follows the same skip/pre-execute plan as the simulator:
/// on pre-executed iterations it prefetches the node's `from_values` and
/// `coeffs` slices and the referenced remote values — the paper's
/// delinquent loads — staying at most one round ahead of the main thread.
pub fn run_em3d_native(graph: &mut Em3d, params: Option<SpParams>, passes: usize) -> NativeReport {
    assert!(passes > 0, "need at least one pass");
    let n = graph.config().nodes;
    let d = graph.config().degree;
    match params {
        None => {
            let start = Instant::now();
            let mut checksum = 0.0;
            for _ in 0..passes {
                checksum = graph.compute_native();
            }
            NativeReport {
                elapsed: start.elapsed(),
                checksum,
                helper_covered: 0,
                helper_waits: 0,
            }
        }
        Some(p) => {
            let steps = plan(p, n);
            let window = ProgressWindow::new(p.round_len() as u64);
            let helper_stats = Mutex::new((0u64, 0u64)); // (covered, waits)
                                                         // Split borrows: the helper reads topology/coefficients, the
                                                         // main thread mutates only `values`. Reading `values` from
                                                         // the helper is deliberately avoided so the run is race-free;
                                                         // prefetching a line does not require reading it.
            let from: &[u32] = &graph.from;
            let coeffs_ptr: &[f64] = &graph.coeffs;
            let mut checksum = 0.0;
            let start = Instant::now();
            std::thread::scope(|s| {
                let values_base = PrefetchPtr(graph.values.as_ptr());
                let win = &window;
                let stats = &helper_stats;
                let steps = &steps;
                s.spawn(move || {
                    win.signal_ready();
                    // Rebind to capture the whole `PrefetchPtr` (edition
                    // 2021 disjoint capture would otherwise capture only
                    // the non-Send raw-pointer field).
                    let values_base = values_base;
                    let mut covered = 0u64;
                    let mut waits = 0u64;
                    for pass in 0..passes {
                        let pass_base = (pass * n) as u64;
                        for (i, step) in steps.iter().enumerate() {
                            let (go, spins) = win.wait_for(pass_base + i as u64);
                            waits += spins;
                            if !go {
                                let mut g = stats.lock();
                                *g = (covered, waits);
                                return;
                            }
                            if *step == HelperStep::Prefetch {
                                covered += 1;
                                let base = i * d;
                                prefetch_read(&from[base]);
                                prefetch_read(&coeffs_ptr[base]);
                                for &o in &from[base..base + d] {
                                    // SAFETY: o < n by construction; the
                                    // pointer stays inside `values`. The
                                    // helper only *prefetches* — it never
                                    // reads or writes through the pointer.
                                    prefetch_read(unsafe { values_base.0.add(o as usize) });
                                }
                            }
                        }
                    }
                    let mut g = stats.lock();
                    *g = (covered, waits);
                });
                // Main thread: the real computation, publishing progress.
                window.await_ready();
                for pass in 0..passes {
                    let pass_base = (pass * n) as u64;
                    let mut check = 0.0;
                    for i in 0..n {
                        let base = i * d;
                        let mut acc = 0.0;
                        for j in 0..d {
                            let other = from[base + j] as usize;
                            acc += coeffs_ptr[base + j] * graph.values[other];
                        }
                        graph.values[i] = acc;
                        check += acc;
                        window.publish(pass_base + i as u64);
                    }
                    checksum = check;
                }
                window.finish();
            });
            let (covered, waits) = *helper_stats.lock();
            NativeReport {
                elapsed: start.elapsed(),
                checksum,
                helper_covered: covered,
                helper_waits: waits,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_workloads::Em3dConfig;

    #[test]
    fn helper_does_not_change_the_result() {
        let mut a = Em3d::build(Em3dConfig::tiny());
        let mut b = Em3d::build(Em3dConfig::tiny());
        let ra = run_em3d_native(&mut a, None, 3);
        let rb = run_em3d_native(&mut b, Some(SpParams::new(4, 4)), 3);
        assert_eq!(
            ra.checksum, rb.checksum,
            "prefetching must be purely a hint"
        );
        assert!(rb.helper_covered > 0, "helper must have covered iterations");
    }

    #[test]
    fn conventional_helper_also_preserves_results() {
        let mut a = Em3d::build(Em3dConfig::tiny());
        let mut b = Em3d::build(Em3dConfig::tiny());
        let ra = run_em3d_native(&mut a, None, 2);
        let rb = run_em3d_native(&mut b, Some(SpParams::conventional()), 2);
        assert_eq!(ra.checksum, rb.checksum);
    }

    #[test]
    fn multiple_passes_iterate_the_values() {
        let mut a = Em3d::build(Em3dConfig::tiny());
        let mut b = Em3d::build(Em3dConfig::tiny());
        let r1 = run_em3d_native(&mut a, None, 1);
        let r2 = run_em3d_native(&mut b, None, 2);
        assert_ne!(r1.checksum, r2.checksum);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let mut g = Em3d::build(Em3dConfig::tiny());
        let _ = run_em3d_native(&mut g, None, 0);
    }
}
