//! # sp-native
//!
//! The end-to-end **hardware** demonstration of Skip helper-threaded
//! Prefetching: a real `std::thread` helper running alongside the main
//! computation, issuing `_mm_prefetch` instructions on x86-64 (a no-op
//! shim elsewhere), synchronized through an atomic progress counter with
//! the same `A_SKI`/`A_PRE` round structure as the simulator.
//!
//! This path exists because the reproduction hint for the paper is that
//! "prefetch intrinsics and threads exist" — the mechanism itself runs on
//! real silicon here, while the *figures* come from the deterministic
//! simulator in `sp-core` (wall-clock speedups on an arbitrary dev
//! machine are not reproducible measurements; see DESIGN.md §2).
//!
//! Correctness contract, enforced by tests: enabling the helper never
//! changes any computational result — prefetching is purely a hint.

pub mod em3d;
pub mod mcf;
pub mod mst;
pub mod prefetch;
pub mod progress;
pub mod sync;

pub use em3d::run_em3d_native;
pub use mcf::run_mcf_native;
pub use mst::run_mst_native;
pub use prefetch::{prefetch_read, prefetch_slice};
pub use progress::ProgressWindow;

use std::time::Duration;

/// Outcome of one native run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeReport {
    /// Wall-clock time of the main computation.
    pub elapsed: Duration,
    /// Workload checksum (identical with and without the helper).
    pub checksum: f64,
    /// Outer iterations the helper pre-executed (0 without a helper).
    pub helper_covered: u64,
    /// Times the helper spun on the synchronization window.
    pub helper_waits: u64,
}
