//! Native MCF pricing with a real SP helper thread.

use crate::prefetch::prefetch_read;
use crate::progress::ProgressWindow;
use crate::sync::Mutex;
use crate::NativeReport;
use sp_core::skip::{plan, HelperStep};
use sp_core::SpParams;
use sp_workloads::Mcf;
use std::time::Instant;

/// Run `passes` native pricing passes over `problem`, optionally with an
/// SP helper thread.
///
/// The helper prefetches the arc record and the two endpoint potentials
/// of every pre-executed arc — MCF's delinquent loads. Everything the
/// helper touches is read-only here, so the run is trivially race-free.
pub fn run_mcf_native(problem: &Mcf, params: Option<SpParams>, passes: usize) -> NativeReport {
    assert!(passes > 0, "need at least one pass");
    let n_arcs = problem.config().arcs;
    let run_main = |window: Option<&ProgressWindow>| -> f64 {
        let mut checksum = 0i64;
        for pass in 0..passes {
            let pass_base = (pass * n_arcs) as u64;
            let mut check = 0i64;
            for i in 0..n_arcs {
                let (tail, head) = problem.endpoints[i];
                let red_cost = problem.cost[i] - problem.potential[tail as usize]
                    + problem.potential[head as usize];
                if red_cost < 0 {
                    check = check.wrapping_add(red_cost);
                }
                if let Some(w) = window {
                    w.publish(pass_base + i as u64);
                }
            }
            checksum = checksum.wrapping_add(check);
        }
        checksum as f64
    };
    match params {
        None => {
            let start = Instant::now();
            let checksum = run_main(None);
            NativeReport {
                elapsed: start.elapsed(),
                checksum,
                helper_covered: 0,
                helper_waits: 0,
            }
        }
        Some(p) => {
            let steps = plan(p, n_arcs);
            let window = ProgressWindow::new(p.round_len() as u64);
            let helper_stats = Mutex::new((0u64, 0u64));
            let start = Instant::now();
            let mut checksum = 0.0;
            std::thread::scope(|s| {
                let win = &window;
                let stats = &helper_stats;
                let steps = &steps;
                s.spawn(move || {
                    win.signal_ready();
                    let mut covered = 0u64;
                    let mut waits = 0u64;
                    for pass in 0..passes {
                        let pass_base = (pass * n_arcs) as u64;
                        for (i, step) in steps.iter().enumerate() {
                            let (go, spins) = win.wait_for(pass_base + i as u64);
                            waits += spins;
                            if !go {
                                *stats.lock() = (covered, waits);
                                return;
                            }
                            if *step == HelperStep::Prefetch {
                                covered += 1;
                                let (tail, head) = problem.endpoints[i];
                                prefetch_read(&problem.cost[i]);
                                prefetch_read(&problem.potential[tail as usize]);
                                prefetch_read(&problem.potential[head as usize]);
                            }
                        }
                    }
                    *stats.lock() = (covered, waits);
                });
                window.await_ready();
                checksum = run_main(Some(&window));
                window.finish();
            });
            let (covered, waits) = *helper_stats.lock();
            NativeReport {
                elapsed: start.elapsed(),
                checksum,
                helper_covered: covered,
                helper_waits: waits,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_workloads::McfConfig;

    #[test]
    fn helper_does_not_change_the_result() {
        let m = Mcf::build(McfConfig::tiny());
        let ra = run_mcf_native(&m, None, 3);
        let rb = run_mcf_native(&m, Some(SpParams::new(8, 8)), 3);
        assert_eq!(ra.checksum, rb.checksum);
        assert!(rb.helper_covered > 0);
    }

    #[test]
    fn baseline_is_deterministic() {
        let m = Mcf::build(McfConfig::tiny());
        assert_eq!(
            run_mcf_native(&m, None, 2).checksum,
            run_mcf_native(&m, None, 2).checksum
        );
    }
}
