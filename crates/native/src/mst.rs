//! Native MST (Prim's algorithm) with a real SP helper thread.
//!
//! The hot structure is the `weight` matrix: after a vertex `u` joins the
//! tree, the update loop streams `weight[u*n..(u+1)*n]`. The helper
//! cannot know the *next* `u` (that is the algorithm's output), but it
//! can cover the paper's skip pattern over the scan itself: within the
//! update scan of the current row, it prefetches `A_PRE` chunks out of
//! every `A_SKI + A_PRE` ahead of the main thread's position.

use crate::prefetch::prefetch_slice;
use crate::progress::ProgressWindow;
use crate::sync::Mutex;
use crate::NativeReport;
use sp_core::skip::{plan, HelperStep};
use sp_core::SpParams;
use sp_workloads::Mst;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Chunk of the weight row covered by one helper "iteration", in
/// elements (one cache line of `u32`).
const CHUNK: usize = 16;

/// Run Prim's algorithm natively, optionally with an SP helper that
/// prefetches weight-row chunks ahead of the update scan.
pub fn run_mst_native(problem: &Mst, params: Option<SpParams>) -> NativeReport {
    let n = problem.config().nodes;
    let weight = &problem.weight;
    let current_u = AtomicUsize::new(0);
    let chunks_per_row = n.div_ceil(CHUNK);

    let prim = |window: Option<&ProgressWindow>| -> u64 {
        let mut in_tree = vec![false; n];
        let mut best = vec![u32::MAX; n];
        in_tree[0] = true;
        best[1..n].copy_from_slice(&weight[1..n]);
        let mut total = 0u64;
        for round in 0..n - 1 {
            let u = (0..n)
                .filter(|&v| !in_tree[v])
                .min_by_key(|&v| best[v])
                .expect("graph is complete");
            total += best[u] as u64;
            in_tree[u] = true;
            current_u.store(u, Ordering::Relaxed);
            let row = &weight[u * n..(u + 1) * n];
            let row_base = (round * chunks_per_row) as u64;
            for (c, chunk) in row.chunks(CHUNK).enumerate() {
                let lo = c * CHUNK;
                for (k, &w) in chunk.iter().enumerate() {
                    let v = lo + k;
                    if !in_tree[v] && w < best[v] {
                        best[v] = w;
                    }
                }
                if let Some(win) = window {
                    win.publish(row_base + c as u64);
                }
            }
        }
        total
    };

    match params {
        None => {
            let start = Instant::now();
            let total = prim(None);
            NativeReport {
                elapsed: start.elapsed(),
                checksum: total as f64,
                helper_covered: 0,
                helper_waits: 0,
            }
        }
        Some(p) => {
            let steps = plan(p, chunks_per_row);
            let window = ProgressWindow::new(p.round_len() as u64);
            let helper_stats = Mutex::new((0u64, 0u64));
            let start = Instant::now();
            let mut total = 0u64;
            std::thread::scope(|s| {
                let win = &window;
                let stats = &helper_stats;
                let steps = &steps;
                let current_u = &current_u;
                s.spawn(move || {
                    win.signal_ready();
                    let mut covered = 0u64;
                    let mut waits = 0u64;
                    for round in 0..n - 1 {
                        let row_base = (round * chunks_per_row) as u64;
                        for (c, step) in steps.iter().enumerate() {
                            let (go, spins) = win.wait_for(row_base + c as u64);
                            waits += spins;
                            if !go {
                                *stats.lock() = (covered, waits);
                                return;
                            }
                            if *step == HelperStep::Prefetch {
                                covered += 1;
                                let u = current_u.load(Ordering::Relaxed);
                                let lo = (u * n + c * CHUNK).min(weight.len());
                                let hi = (lo + CHUNK).min(weight.len());
                                prefetch_slice(&weight[lo..hi]);
                            }
                        }
                    }
                    *stats.lock() = (covered, waits);
                });
                window.await_ready();
                total = prim(Some(&window));
                window.finish();
            });
            let (covered, waits) = *helper_stats.lock();
            NativeReport {
                elapsed: start.elapsed(),
                checksum: total as f64,
                helper_covered: covered,
                helper_waits: waits,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_workloads::MstConfig;

    #[test]
    fn helper_does_not_change_the_tree_weight() {
        let m = Mst::build(MstConfig::tiny());
        let ra = run_mst_native(&m, None);
        let rb = run_mst_native(&m, Some(SpParams::new(2, 2)));
        assert_eq!(ra.checksum, rb.checksum);
        assert!(rb.helper_covered > 0);
    }

    #[test]
    fn native_weight_matches_reference_implementation() {
        let m = Mst::build(MstConfig::tiny());
        let r = run_mst_native(&m, None);
        assert_eq!(r.checksum, m.mst_weight_native() as f64);
    }
}
