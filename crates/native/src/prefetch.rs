//! Software-prefetch intrinsics with a portable fallback.

/// Prefetch the cache line containing `p` for reading, into the L2/LLC
/// (`_MM_HINT_T1` on x86-64 — the shared-cache level SP targets). On
/// other architectures this is a no-op: prefetching is always only a
/// hint, so the fallback is semantically identical.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T1 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Prefetch every cache line covered by `slice` (64-byte stride).
#[inline]
pub fn prefetch_slice<T>(slice: &[T]) {
    let bytes = std::mem::size_of_val(slice);
    let base = slice.as_ptr() as *const u8;
    let mut off = 0usize;
    while off < bytes {
        // SAFETY: `base + off` stays within the allocation backing
        // `slice` because `off < bytes = size_of_val(slice)`.
        prefetch_read(unsafe { base.add(off) });
        off += 64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_on_valid_pointers() {
        let v = vec![1u64; 1024];
        prefetch_read(&v[0]);
        prefetch_read(&v[1023]);
        prefetch_slice(&v);
        // Values untouched.
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn prefetch_slice_handles_empty_and_tiny_slices() {
        let empty: [u8; 0] = [];
        prefetch_slice(&empty);
        let one = [42u8];
        prefetch_slice(&one);
        assert_eq!(one[0], 42);
    }
}
