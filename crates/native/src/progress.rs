//! The main↔helper synchronization window.
//!
//! A single atomic counter carries the main thread's outer-loop progress;
//! the helper polls it to stay within one round (`A_SKI + A_PRE`
//! iterations) of the main thread — the same policy as the simulator's
//! engine. The counter is monotone, so `Relaxed` ordering suffices for a
//! *hint* mechanism: a stale read only makes the helper slightly more or
//! less aggressive, never incorrect.

use crate::sync::{Backoff, CachePadded};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared progress state between the main thread and the helper.
///
/// The counters are cache-padded: the main thread writes `main_iter` on
/// every iteration while the helper polls it, and sharing a line with
/// anything the helper writes would ping-pong the line between cores.
#[derive(Debug)]
pub struct ProgressWindow {
    main_iter: CachePadded<AtomicU64>,
    done: CachePadded<AtomicU64>,
    ready: CachePadded<AtomicU64>,
    window: u64,
}

impl ProgressWindow {
    /// A window allowing the helper at most `window` iterations of lead.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        ProgressWindow {
            main_iter: CachePadded::new(AtomicU64::new(0)),
            done: CachePadded::new(AtomicU64::new(0)),
            ready: CachePadded::new(AtomicU64::new(0)),
            window,
        }
    }

    /// Helper: announce it is running (before its first wait).
    pub fn signal_ready(&self) {
        self.ready.store(1, Ordering::Release);
    }

    /// Main thread: block until the helper announced itself, so tiny
    /// workloads cannot finish before the helper even starts.
    pub fn await_ready(&self) {
        let mut backoff = Backoff::new();
        while self.ready.load(Ordering::Acquire) == 0 {
            backoff.snooze();
        }
    }

    /// Main thread: publish that iteration `i` is complete.
    #[inline]
    pub fn publish(&self, i: u64) {
        self.main_iter.store(i + 1, Ordering::Relaxed);
    }

    /// Main thread: signal completion (unblocks a spinning helper).
    pub fn finish(&self) {
        self.done.store(1, Ordering::Release);
    }

    /// `true` once the main thread has finished.
    #[inline]
    pub fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire) != 0
    }

    /// Current main-thread progress (completed iterations).
    #[inline]
    pub fn main_progress(&self) -> u64 {
        self.main_iter.load(Ordering::Relaxed)
    }

    /// Helper: wait (spin with backoff) until iteration `target` is
    /// within the window, or the main thread finished while the helper
    /// would have had to wait. Returns whether to proceed, and the number
    /// of spins waited.
    ///
    /// The window test comes first: targets already admitted proceed even
    /// after the main thread finishes (prefetching them is harmless and
    /// keeps `covered` deterministic for in-window work); the helper only
    /// *stops* when it would otherwise block forever.
    pub fn wait_for(&self, target: u64) -> (bool, u64) {
        let mut spins = 0u64;
        let mut backoff = Backoff::new();
        loop {
            if target < self.main_progress() + self.window {
                return (true, spins);
            }
            if self.finished() {
                return (false, spins);
            }
            spins += 1;
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn window_admits_near_targets_immediately() {
        let w = ProgressWindow::new(8);
        let (go, spins) = w.wait_for(0);
        assert!(go);
        assert_eq!(spins, 0);
        let (go, _) = w.wait_for(7);
        assert!(go);
    }

    #[test]
    fn finish_releases_a_blocked_helper() {
        let w = Arc::new(ProgressWindow::new(2));
        let w2 = Arc::clone(&w);
        let h = std::thread::spawn(move || w2.wait_for(1_000_000));
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.finish();
        let (go, _) = h.join().unwrap();
        assert!(!go, "a finished run must stop the helper");
    }

    #[test]
    fn publish_advances_the_window() {
        let w = Arc::new(ProgressWindow::new(4));
        let w2 = Arc::clone(&w);
        let h = std::thread::spawn(move || w2.wait_for(10));
        // 10 < main + 4 requires main >= 7.
        for i in 0..7 {
            w.publish(i);
        }
        let (go, _) = h.join().unwrap();
        assert!(go);
        assert_eq!(w.main_progress(), 7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = ProgressWindow::new(0);
    }
}
