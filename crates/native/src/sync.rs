//! Minimal std-only synchronization primitives.
//!
//! The workspace builds offline with no external crates, so the few
//! conveniences previously imported from `crossbeam`/`parking_lot` live
//! here: a polling [`Backoff`], a false-sharing guard [`CachePadded`],
//! and a poison-ignoring [`Mutex`] whose `lock()` returns the guard
//! directly.

use std::ops::{Deref, DerefMut};
use std::sync::MutexGuard;

/// Exponential backoff for spin loops: brief `spin_loop` hints first,
/// then OS-level yields once the wait is clearly not momentary.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin threshold below which we burn cycles instead of yielding.
    const SPIN_LIMIT: u32 = 6;

    /// A fresh backoff at the tightest spin level.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Wait a little longer than last time: `2^step` spin hints while the
    /// wait is short, a scheduler yield once it is not.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Pads and aligns its contents to 128 bytes so two `CachePadded` values
/// never share a cache line (128 covers adjacent-line prefetching on
/// modern x86 and the 128-byte lines of some ARM parts).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// `std::sync::Mutex` with the `parking_lot` calling convention:
/// `lock()` returns the guard, treating a poisoned lock as still usable
/// (our critical sections only store plain counters, so there is no
/// invariant a panicking holder could have broken).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn backoff_makes_progress() {
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                flag.store(true, Ordering::Release);
            });
            let mut b = Backoff::new();
            while !flag.load(Ordering::Acquire) {
                b.snooze();
            }
        });
    }

    #[test]
    fn cache_padded_values_are_line_separated() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        let pair = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 128);
        assert_eq!(*pair[1], 1);
    }

    #[test]
    fn mutex_locks_and_survives_poison() {
        let m = Mutex::new(7u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0, "poisoned lock still readable");
    }
}
