//! Chrome trace-event export: the collected spans as one JSON document
//! loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Each span becomes a complete event (`"ph":"X"`) with microsecond
//! `ts`/`dur` on the process-monotonic clock, the sp-obs thread index
//! as `tid`, and args carrying the span/parent IDs, the correlation ID
//! (`corr`, plus `corr_root` so one request's whole tree matches a
//! single search term) and any span fields. Events are sorted by
//! `(ts, id)` so the same span set always serialises identically.

use crate::json_escape_into;
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Serialise spans as a Chrome trace-event JSON document (trailing
/// newline included).
pub fn trace_json(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|r| (r.start_us, r.id));

    let mut out = String::with_capacity(64 + 160 * sorted.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, rec) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        json_escape_into(&mut out, rec.name);
        let _ = write!(
            out,
            "\",\"cat\":\"sp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            rec.start_us, rec.dur_us, rec.tid
        );
        let _ = write!(out, ",\"args\":{{\"span\":\"{}\"", rec.id);
        if rec.parent != 0 {
            let _ = write!(out, ",\"parent\":\"{}\"", rec.parent);
        }
        if let Some(corr) = rec.corr {
            let _ = write!(
                out,
                ",\"corr\":\"{corr}\",\"corr_root\":\"{}\"",
                corr.root_tag()
            );
        }
        for (k, v) in &rec.fields {
            out.push_str(",\"");
            json_escape_into(&mut out, k);
            out.push_str("\":\"");
            json_escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corr::CorrId;

    fn rec(id: u64, parent: u64, name: &'static str, start_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            corr: None,
            start_us,
            dur_us: 7,
            tid: 1,
            fields: vec![],
        }
    }

    #[test]
    fn events_are_complete_sorted_and_escaped() {
        let corr = CorrId::next_root();
        let mut b = rec(2, 1, "si\"m", 50);
        b.corr = Some(corr.child(3));
        b.fields = vec![("distance", "8".to_string())];
        let doc = trace_json(&[b, rec(1, 0, "load", 10)]);
        // Sorted by ts: load first despite input order.
        let load_at = doc.find("\"name\":\"load\"").unwrap();
        let sim_at = doc.find("\"name\":\"si\\\"m\"").unwrap();
        assert!(load_at < sim_at, "events not time-sorted: {doc}");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":50,\"dur\":7"));
        assert!(doc.contains(&format!(
            "\"corr\":\"{}\",\"corr_root\":\"{}\"",
            corr.child(3),
            corr.root_tag()
        )));
        assert!(doc.contains("\"parent\":\"1\""));
        assert!(doc.contains("\"distance\":\"8\""));
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("\n]}\n"));
    }

    #[test]
    fn empty_input_is_still_a_valid_document() {
        assert_eq!(
            trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
        );
    }
}
