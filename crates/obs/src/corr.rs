//! Correlation IDs: a process-unique root minted per external unit of
//! work (one sp-serve request, one `spt trace` invocation) plus a
//! deterministic sub-index per internal unit (one sweep grid point).
//!
//! The current ID is thread-local; [`set_current`] returns a guard that
//! restores the previous ID on drop, so nested scopes (request → grid
//! point) compose. Spans and log lines capture [`current`] when they are
//! created, which is how a request's ID follows its work onto pool
//! worker threads: the worker task sets the captured ID before running.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ROOT: AtomicU64 = AtomicU64::new(1);

/// A correlation ID: `root` identifies the external request, `sub`
/// (when non-zero) one grid point inside it. Renders as `c3` / `c3.7`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CorrId {
    root: u64,
    sub: u32,
}

impl CorrId {
    /// Mint a fresh root ID (process-unique, monotonically increasing).
    pub fn next_root() -> CorrId {
        CorrId {
            root: NEXT_ROOT.fetch_add(1, Ordering::Relaxed),
            sub: 0,
        }
    }

    /// A child sharing this ID's root. Grid point `i` uses `child(i+1)`
    /// so the sub-index is deterministic for a given sweep shape —
    /// span trees are comparable across `--jobs` widths.
    pub fn child(self, sub: u32) -> CorrId {
        CorrId {
            root: self.root,
            sub,
        }
    }

    /// The root counter value.
    pub fn root(self) -> u64 {
        self.root
    }

    /// The sub-index (0 for a root ID).
    pub fn sub(self) -> u32 {
        self.sub
    }

    /// The root rendered alone (`c3`), shared by an ID and all its
    /// children — what "same request" means in an export.
    pub fn root_tag(self) -> String {
        format!("c{}", self.root)
    }
}

impl fmt::Display for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sub == 0 {
            write!(f, "c{}", self.root)
        } else {
            write!(f, "c{}.{}", self.root, self.sub)
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<CorrId>> = const { Cell::new(None) };
}

/// The correlation ID currently in scope on this thread, if any.
pub fn current() -> Option<CorrId> {
    CURRENT.with(Cell::get)
}

/// Restores the previously-current correlation ID when dropped.
#[must_use = "dropping the guard immediately unsets the correlation ID"]
pub struct CorrGuard {
    prev: Option<CorrId>,
}

/// Make `id` the current correlation ID for this thread until the
/// returned guard drops.
pub fn set_current(id: CorrId) -> CorrGuard {
    CorrGuard {
        prev: CURRENT.with(|c| c.replace(Some(id))),
    }
}

impl Drop for CorrGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_unique_and_children_share_them() {
        let a = CorrId::next_root();
        let b = CorrId::next_root();
        assert_ne!(a.root(), b.root());
        let kid = a.child(3);
        assert_eq!(kid.root(), a.root());
        assert_eq!(kid.sub(), 3);
        assert_eq!(kid.root_tag(), a.root_tag());
        assert_eq!(format!("{a}"), format!("c{}", a.root()));
        assert_eq!(format!("{kid}"), format!("c{}.3", a.root()));
    }

    #[test]
    fn guard_nests_and_restores() {
        assert_eq!(current(), None);
        let a = CorrId::next_root();
        let g1 = set_current(a);
        assert_eq!(current(), Some(a));
        {
            let b = a.child(1);
            let _g2 = set_current(b);
            assert_eq!(current(), Some(b));
        }
        assert_eq!(current(), Some(a));
        drop(g1);
        assert_eq!(current(), None);
    }
}
