//! Log-linear fixed-bucket histogram for latency-style `u64` samples —
//! the workspace's single percentile implementation.
//!
//! HDR-histogram shape without the dependency: values below
//! `2^sub_bits` land in exact unit-width buckets (the *linear* region);
//! above that, each power-of-two octave is split into `2^sub_bits`
//! equal sub-buckets (the *log* region), so the bucket width at value
//! `v` is at most `v / 2^sub_bits`. Quantile estimates therefore carry
//! a **relative error bound of `2^-sub_bits`**: the estimate is the
//! inclusive upper bound of the bucket holding the exact nearest-rank
//! value, clamped to the recorded maximum. The property suite
//! (`tests/prop_hist.rs`) pins exactly that contract.
//!
//! Counters are relaxed atomics, so one histogram serves both the
//! sp-serve daemon (recorded concurrently under load, scraped while
//! hot) and single-threaded consumers like `spt loadgen`. Count, sum,
//! min, and max are exact; only quantiles are bucketed.
//!
//! The full bucket table for `sub_bits = p` has `(65 - p) << p` slots
//! (7296 at the default precision, ~57 KiB) — allocated once, never
//! resized, index math is two shifts and a subtract per record.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default sub-bucket precision: 128 sub-buckets per octave, quantile
/// relative error ≤ 1/128 (< 0.8%).
pub const DEFAULT_SUB_BITS: u32 = 7;

/// The five headline quantiles plus the exact extremes, as one
/// snapshot (see [`LogLinearHist::percentiles`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median estimate.
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// 99.9th percentile estimate.
    pub p999: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

/// A log-linear histogram of `u64` samples (typically microseconds).
#[derive(Debug)]
pub struct LogLinearHist {
    sub_bits: u32,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogLinearHist {
    fn default() -> LogLinearHist {
        LogLinearHist::with_precision(DEFAULT_SUB_BITS)
    }
}

impl LogLinearHist {
    /// A histogram with `2^sub_bits` sub-buckets per octave
    /// (`sub_bits` in `0..=12`; the bucket table is `(65 - p) << p`
    /// slots).
    pub fn with_precision(sub_bits: u32) -> LogLinearHist {
        assert!(sub_bits <= 12, "sub_bits {sub_bits} out of range 0..=12");
        let len = (65 - sub_bits as usize) << sub_bits;
        LogLinearHist {
            sub_bits,
            counts: (0..len).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The configured sub-bucket precision.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// The quantile relative error bound this precision guarantees
    /// (`2^-sub_bits`).
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// The bucket index value `v` lands in.
    pub fn index_of(&self, v: u64) -> usize {
        let p = self.sub_bits;
        if v < (1u64 << p) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let e = msb - p;
        let sub = (v >> e) as usize - (1usize << p);
        (((e as usize) + 1) << p) + sub
    }

    /// The inclusive upper bound of bucket `idx` — the largest value
    /// mapping to it.
    pub fn bound_of(&self, idx: usize) -> u64 {
        let p = self.sub_bits;
        let scale = 1usize << p;
        if idx < scale {
            return idx as u64;
        }
        let e = (idx >> p) as u32 - 1;
        let sub = (idx & (scale - 1)) as u128;
        let hi = ((scale as u128 + sub + 1) << e) - 1;
        hi.min(u64::MAX as u128) as u64
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[self.index_of(v)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations (exact).
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all observations — exact while the true total fits in
    /// `u64` (always the case for microsecond latencies; ~584k years
    /// of them fit).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.is_empty() {
            0
        } else {
            m
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the upper
    /// bound of the bucket holding the exact quantile value, clamped
    /// to the recorded maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            if cumulative >= rank {
                return self.bound_of(idx).min(self.max());
            }
        }
        self.max()
    }

    /// The headline percentile snapshot (p50/p90/p99/p999 + exact max).
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }

    /// Fold `other` into `self`. Requires identical precision — the
    /// bucket tables must line up — and is exactly equivalent to
    /// having recorded both sample streams into one histogram.
    pub fn merge(&self, other: &LogLinearHist) -> Result<(), String> {
        if self.sub_bits != other.sub_bits {
            return Err(format!(
                "precision mismatch: cannot merge sub_bits {} into {}",
                other.sub_bits, self.sub_bits
            ));
        }
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// The occupied buckets, ascending, as `(inclusive upper bound,
    /// count)` — the compact export JSON and Prometheus renderers
    /// consume. Empty buckets are skipped, so the row count tracks the
    /// data's spread, not the table size.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (self.bound_of(idx), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact_and_log_region_is_contiguous() {
        let h = LogLinearHist::with_precision(3);
        // Linear region: one bucket per value.
        for v in 0..8u64 {
            assert_eq!(h.index_of(v), v as usize);
            assert_eq!(h.bound_of(v as usize), v);
        }
        // Bucket bounds are monotone and index_of(bound) round-trips.
        let mut prev = None;
        for idx in 0..h.counts.len() {
            let b = h.bound_of(idx);
            assert_eq!(h.index_of(b), idx, "bound {b} of idx {idx}");
            if let Some(p) = prev {
                assert!(b > p, "bounds must strictly increase at idx {idx}");
            }
            prev = Some(b);
        }
        assert_eq!(h.bound_of(h.counts.len() - 1), u64::MAX);
        assert_eq!(h.index_of(u64::MAX), h.counts.len() - 1);
    }

    #[test]
    fn exact_aggregates_and_quantiles_on_small_input() {
        let h = LogLinearHist::default();
        for v in [3u64, 5, 5, 100, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10_113);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 10_000);
        // All but 10_000 sit in the exact linear region at p=7.
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.2), 3);
        let p = h.percentiles();
        assert_eq!(p.max, 10_000);
        assert!(p.p999 >= 10_000 - 10_000 / 128 && p.p999 <= 10_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogLinearHist::default();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_rejects_precision_mismatch() {
        let a = LogLinearHist::with_precision(5);
        let b = LogLinearHist::with_precision(7);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = LogLinearHist::default();
        let b = LogLinearHist::default();
        a.record_n(4242, 3);
        for _ in 0..3 {
            b.record(4242);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
    }
}
