//! # sp-obs — runtime tracing and structured logging
//!
//! PR 4's event layer instruments the *simulated* machine; this crate
//! instruments the *simulator itself*: where wall-clock time goes inside
//! a sweep worker, which daemon request stalled in the admission queue,
//! why one grid point was slow. Std-only, no external dependencies.
//!
//! Three cooperating pieces:
//!
//! * **Leveled logger** ([`logger`]) — `SP_LOG=error|warn|info|debug`
//!   selects the level (default `warn`), `SP_LOG_FORMAT=ndjson|human`
//!   the shape. One line per record, written to stderr under a single
//!   lock so concurrent threads never interleave. Every line carries the
//!   current correlation ID when one is set.
//! * **Scoped spans** ([`mod@span`]) — [`span!`] opens a wall-clock span tied
//!   to a thread-local span stack (so nesting is implicit) and closes it
//!   on drop. Closed spans land in a per-thread buffer that is drained
//!   into the global collector when the outermost span on that thread
//!   closes — the hot path never takes the collector lock mid-tree.
//!   Recording is off by default; a disabled span costs one relaxed
//!   atomic load and builds no fields.
//! * **Correlation IDs** ([`corr`]) — a root ID minted per sp-serve
//!   request or per `spt trace` invocation, with deterministic children
//!   per sweep grid point ([`CorrId::child`]). The current ID lives in
//!   thread-local state and is captured by every span and log line.
//!
//! Alongside them, [`hist`] holds the workspace's single percentile
//! implementation: an HDR-style log-linear histogram
//! ([`LogLinearHist`]) with exact count/sum/min/max, bounded-error
//! quantiles, and lossless merge — sp-serve's request-latency and
//! per-stage metrics and `spt loadgen`'s SLO percentiles all record
//! into it.
//!
//! The compile-time kill switch mirrors `sp_cachesim::events::NullSink`:
//! [`Subscriber`] has a `const ENABLED: bool`, and code monomorphised
//! over [`NullSubscriber`] (`ENABLED = false`) compiles the tracing away
//! entirely — see [`span::observed`] and the non-perturbation
//! differential test in the workspace root.
//!
//! Collected spans export as Chrome trace-event JSON ([`chrome`]),
//! loadable in Perfetto or `chrome://tracing`, and sp-serve folds them
//! into per-stage Prometheus histograms (`sp_stage_seconds`).

pub mod chrome;
pub mod corr;
pub mod hist;
pub mod logger;
pub mod span;

pub use corr::{CorrGuard, CorrId};
pub use hist::{LogLinearHist, Percentiles};
pub use logger::{Level, LogFormat};
pub use span::{NullSubscriber, Recorder, SpanGuard, SpanRecord, Subscriber};

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters; no surrounding quotes).
pub fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`json_escape_into`] returning a fresh `String`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    json_escape_into(&mut out, s);
    out
}

/// Open a scoped span: `span!("simulate")` or
/// `span!("simulate", distance = d, trace = name)`. Returns a guard that
/// records the span when dropped. Field values are stringified via
/// `Display` — and only when recording is enabled; a disabled span
/// evaluates nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter($name, || {
            ::std::vec![$((stringify!($k), ($v).to_string())),+]
        })
    };
}

/// Log at an explicit [`Level`]: `sp_log!(Level::Info, "serve", "msg",
/// key = value)`. Prefer the [`log_error!`] .. [`log_debug!`] shorthands.
#[macro_export]
macro_rules! sp_log {
    ($lvl:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::logger::enabled(lvl) {
            $crate::logger::log(
                lvl,
                $target,
                &$msg,
                &[$((stringify!($k), ($v).to_string())),*],
            );
        }
    }};
}

/// Log at `error` level (always on unless the logger is silenced).
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => { $crate::sp_log!($crate::logger::Level::Error, $($t)*) };
}

/// Log at `warn` level (the default threshold).
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)*) => { $crate::sp_log!($crate::logger::Level::Warn, $($t)*) };
}

/// Log at `info` level (`SP_LOG=info` and up).
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => { $crate::sp_log!($crate::logger::Level::Info, $($t)*) };
}

/// Log at `debug` level (`SP_LOG=debug` only).
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => { $crate::sp_log!($crate::logger::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
