//! Leveled structured logger. One line per record on stderr, either
//! human-readable or NDJSON, selected once per process:
//!
//! * `SP_LOG` — `error`, `warn` (default), `info`, `debug`.
//! * `SP_LOG_FORMAT` — `human` (default) or `ndjson`.
//!
//! Lines carry a monotonic microsecond timestamp (process-relative, the
//! same clock spans use), the level, a target (subsystem name), the
//! message, the current correlation ID when one is in scope, and any
//! structured fields. NDJSON flattens fields into the top-level object
//! so consumers can grep for `"corr":"c12"` or `"id":"41"` directly;
//! field keys should therefore avoid the built-in keys (`ts_us`,
//! `level`, `target`, `msg`, `corr`).

use crate::corr;
use crate::json_escape_into;
use crate::span::now_us;
use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severity, most severe first. `SP_LOG` picks the threshold; a
/// record is emitted when its level is at or above the threshold.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    /// Parse an `SP_LOG` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// Lower-case name, as rendered in log lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Output shape: aligned human text or one JSON object per line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogFormat {
    Human,
    Ndjson,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0);
static INIT: Once = Once::new();

/// Read `SP_LOG` / `SP_LOG_FORMAT` once; later calls are no-ops. Called
/// lazily by [`enabled`], so embedding code never has to remember it.
pub fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(v) = std::env::var("SP_LOG") {
            if let Some(l) = Level::parse(&v) {
                LEVEL.store(l as u8, Ordering::Relaxed);
            }
        }
        if let Ok(v) = std::env::var("SP_LOG_FORMAT") {
            if v.trim().eq_ignore_ascii_case("ndjson") {
                FORMAT.store(1, Ordering::Relaxed);
            }
        }
    });
}

/// Override the threshold programmatically (tests, embedders). Wins over
/// the environment because it also marks initialisation as done.
pub fn set_level(level: Level) {
    INIT.call_once(|| {});
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Override the output format programmatically.
pub fn set_format(format: LogFormat) {
    INIT.call_once(|| {});
    FORMAT.store(
        match format {
            LogFormat::Human => 0,
            LogFormat::Ndjson => 1,
        },
        Ordering::Relaxed,
    );
}

/// The format currently in effect.
pub fn format() -> LogFormat {
    init_from_env();
    if FORMAT.load(Ordering::Relaxed) == 1 {
        LogFormat::Ndjson
    } else {
        LogFormat::Human
    }
}

/// Would a record at `level` be emitted? The cheap pre-check the log
/// macros use before building fields.
#[inline]
pub fn enabled(level: Level) -> bool {
    init_from_env();
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Render one record to a line (no trailing newline). Pure, so the
/// formats are unit-testable without capturing stderr.
pub fn render_line(
    format: LogFormat,
    ts_us: u64,
    level: Level,
    target: &str,
    msg: &str,
    corr: Option<corr::CorrId>,
    fields: &[(&'static str, String)],
) -> String {
    let mut out = String::with_capacity(64 + msg.len());
    match format {
        LogFormat::Ndjson => {
            let _ = write!(out, "{{\"ts_us\":{ts_us},\"level\":\"{}\"", level.name());
            out.push_str(",\"target\":\"");
            json_escape_into(&mut out, target);
            out.push_str("\",\"msg\":\"");
            json_escape_into(&mut out, msg);
            out.push('"');
            if let Some(c) = corr {
                let _ = write!(out, ",\"corr\":\"{c}\"");
            }
            for (k, v) in fields {
                out.push_str(",\"");
                json_escape_into(&mut out, k);
                out.push_str("\":\"");
                json_escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        LogFormat::Human => {
            let _ = write!(
                out,
                "[{:>10.3}ms {:<5} {target}] {msg}",
                ts_us as f64 / 1_000.0,
                level.name()
            );
            if let Some(c) = corr {
                let _ = write!(out, " corr={c}");
            }
            for (k, v) in fields {
                let _ = write!(out, " {k}={v}");
            }
        }
    }
    out
}

/// Emit one record at `level`. The log macros are the intended entry
/// point; they pre-check [`enabled`] so fields are only built when the
/// record will actually be written.
pub fn log(level: Level, target: &str, msg: &dyn Display, fields: &[(&'static str, String)]) {
    if !enabled(level) {
        return;
    }
    let line = render_line(
        format(),
        now_us(),
        level,
        target,
        &msg.to_string(),
        corr::current(),
        fields,
    );
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corr::CorrId;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn ndjson_lines_are_flat_json_objects() {
        let corr = CorrId::next_root().child(2);
        let line = render_line(
            LogFormat::Ndjson,
            1234,
            Level::Info,
            "access",
            "request \"quoted\"",
            Some(corr),
            &[("kind", "point".to_string()), ("id", "41".to_string())],
        );
        assert!(line.starts_with("{\"ts_us\":1234,\"level\":\"info\""));
        assert!(line.contains("\"msg\":\"request \\\"quoted\\\"\""));
        assert!(line.contains(&format!("\"corr\":\"{corr}\"")));
        assert!(line.contains("\"kind\":\"point\""));
        assert!(line.contains("\"id\":\"41\""));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn human_lines_carry_fields_inline() {
        let line = render_line(
            LogFormat::Human,
            2_500,
            Level::Warn,
            "serve",
            "slow request",
            None,
            &[("total_us", "120000".to_string())],
        );
        assert!(line.contains("warn"));
        assert!(line.contains("serve"));
        assert!(line.contains("slow request total_us=120000"));
    }
}
