//! Scoped wall-clock spans with a thread-local span stack and a
//! per-thread completion buffer.
//!
//! Recording is globally gated ([`start_recording`]): a span opened
//! while recording is off costs one relaxed atomic load and evaluates
//! no fields. While recording, [`SpanGuard::enter`] pushes onto the
//! thread's span stack (giving implicit parent links), and dropping the
//! guard moves the finished [`SpanRecord`] into a thread-local buffer.
//! The buffer drains into the global collector only when the outermost
//! span on the thread closes, so a deep tree takes the collector lock
//! once, not once per span.
//!
//! [`Subscriber`] mirrors `sp_cachesim::events::EventSink`: a compile
//! time `ENABLED` flag lets generic code monomorphise the tracing away
//! with [`NullSubscriber`] — the runtime gate is for code that can't be
//! generic (the engine hot paths use the default [`Recorder`] through
//! the `span!` macro, which is why the gate must be this cheap).

use crate::corr::{self, CorrId};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A completed span. `parent` is the span ID of the enclosing span on
/// the same thread (0 when the span was a thread root), `start_us` and
/// `dur_us` are microseconds on the process-wide monotonic clock
/// ([`now_us`]), and `tid` is a small per-process thread index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    pub corr: Option<CorrId>,
    pub start_us: u64,
    pub dur_us: u64,
    pub tid: u64,
    pub fields: Vec<(&'static str, String)>,
}

/// Where finished spans go. `ENABLED = false` compiles the span layer
/// out of code monomorphised over the subscriber — the same trick as
/// `events::NullSink`.
pub trait Subscriber {
    const ENABLED: bool;
    fn record(&self, rec: SpanRecord);
}

/// Discards everything at compile time.
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    const ENABLED: bool = false;
    #[inline(always)]
    fn record(&self, _rec: SpanRecord) {}
}

/// Routes finished spans into the per-thread buffer feeding the global
/// collector. What `span!` uses.
pub struct Recorder;

impl Subscriber for Recorder {
    const ENABLED: bool = true;
    fn record(&self, rec: SpanRecord) {
        BUFFER.with(|b| b.borrow_mut().push(rec));
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic epoch (first use of
/// any sp-obs clock). Shared by spans and log lines.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

const DEFAULT_CAPACITY: usize = 1 << 16;

struct Collector {
    spans: Vec<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    spans: Vec::new(),
    capacity: DEFAULT_CAPACITY,
    dropped: 0,
});

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static BUFFER: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Is span recording on? The one check every disabled span pays.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turn span recording on. Spans opened before this call are lost by
/// design; already-collected spans are kept.
pub fn start_recording() {
    RECORDING.store(true, Ordering::Relaxed);
}

/// Turn span recording off. Spans still open finish recording normally
/// (the gate is checked at open, not close).
pub fn stop_recording() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Cap the collector. When full, further spans are counted in
/// [`dropped`] instead of growing without bound.
pub fn set_capacity(capacity: usize) {
    let mut c = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    c.capacity = capacity.max(1);
}

/// Spans discarded because the collector was full.
pub fn dropped() -> u64 {
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).dropped
}

/// Take everything collected so far. Spans a thread hasn't flushed yet
/// (its outermost span is still open) are not included — they arrive on
/// a later drain.
pub fn drain() -> Vec<SpanRecord> {
    flush_thread();
    let mut c = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut c.spans)
}

/// Push this thread's finished-span buffer into the collector now.
/// Called automatically when a thread's outermost span closes; useful
/// directly after [`record_complete`] outside any span.
pub fn flush_thread() {
    let buf = BUFFER.with(|b| std::mem::take(&mut *b.borrow_mut()));
    if buf.is_empty() {
        return;
    }
    let mut c = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    for rec in buf {
        if c.spans.len() < c.capacity {
            c.spans.push(rec);
        } else {
            c.dropped += 1;
        }
    }
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    corr: Option<CorrId>,
    start_us: u64,
    t0: Instant,
    fields: Vec<(&'static str, String)>,
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// An open span; records itself through its [`Subscriber`] on drop.
/// Created via the `span!` macro (default [`Recorder`]) or
/// [`observed`] for monomorphised call sites.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<S: Subscriber = Recorder> {
    open: Option<OpenSpan>,
    sub: S,
}

impl SpanGuard<Recorder> {
    /// Open a span feeding the global collector. `fields` is evaluated
    /// only when recording is on.
    #[inline]
    pub fn enter<F>(name: &'static str, fields: F) -> Self
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        Self::enter_with(Recorder, name, fields)
    }
}

impl<S: Subscriber> SpanGuard<S> {
    /// Open a span on an explicit subscriber. With `S::ENABLED = false`
    /// this compiles to a no-op guard.
    #[inline]
    pub fn enter_with<F>(sub: S, name: &'static str, fields: F) -> Self
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        if !S::ENABLED || !recording() {
            return SpanGuard { open: None, sub };
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        let start_us = now_us();
        SpanGuard {
            open: Some(OpenSpan {
                id,
                parent,
                name,
                corr: corr::current(),
                start_us,
                t0: Instant::now(),
                fields: fields(),
            }),
            sub,
        }
    }

    /// The span's ID, when it is actually recording.
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|o| o.id)
    }
}

impl<S: Subscriber> Drop for SpanGuard<S> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let now_empty = STACK.with(|s| {
                let mut s = s.borrow_mut();
                debug_assert_eq!(s.last(), Some(&open.id), "span guards dropped out of order");
                s.pop();
                s.is_empty()
            });
            let dur_us = open.t0.elapsed().as_micros() as u64;
            self.sub.record(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                corr: open.corr,
                start_us: open.start_us,
                dur_us,
                tid: tid(),
                fields: open.fields,
            });
            if now_empty {
                flush_thread();
            }
        }
    }
}

/// Run `f` inside a span on subscriber `sub`. Monomorphised over `S`:
/// `observed(NullSubscriber, ..)` compiles to a plain call of `f`.
#[inline]
pub fn observed<S: Subscriber, R>(sub: S, name: &'static str, f: impl FnOnce() -> R) -> R {
    if !S::ENABLED {
        return f();
    }
    let _guard = SpanGuard::enter_with(sub, name, Vec::new);
    f()
}

/// Record an already-measured span (e.g. queue wait, whose start and
/// end straddle threads). Parented under the current thread's open span
/// if any; carries the current correlation ID.
pub fn record_complete(
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    fields: Vec<(&'static str, String)>,
) {
    if !recording() {
        return;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let (parent, stack_empty) = STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied().unwrap_or(0), s.is_empty())
    });
    Recorder.record(SpanRecord {
        id,
        parent,
        name,
        corr: corr::current(),
        start_us,
        dur_us,
        tid: tid(),
        fields,
    });
    if stack_empty {
        flush_thread();
    }
}

/// Sum durations by span name: `(name, total_us, count)` sorted by
/// name. The per-stage rollup `spt trace` and `spt bench` print.
pub fn stage_totals(spans: &[SpanRecord]) -> Vec<(&'static str, u64, u64)> {
    let mut totals: Vec<(&'static str, u64, u64)> = Vec::new();
    for rec in spans {
        match totals.iter_mut().find(|(name, _, _)| *name == rec.name) {
            Some(slot) => {
                slot.1 += rec.dur_us;
                slot.2 += 1;
            }
            None => totals.push((rec.name, rec.dur_us, 1)),
        }
    }
    totals.sort_by_key(|&(name, _, _)| name);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the global collector end to end; keeping it a
    // single #[test] avoids cross-test interference on the shared
    // recording gate.
    #[test]
    fn spans_nest_buffer_and_drain() {
        assert!(!recording());
        // Disabled: no allocation, no record, fields not evaluated.
        {
            let g = SpanGuard::enter("dead", || unreachable!("fields built while disabled"));
            assert_eq!(g.id(), None);
        }

        start_recording();
        let corr = CorrId::next_root();
        {
            let _c = corr::set_current(corr);
            let outer = SpanGuard::enter("outer", || vec![("k", "v".to_string())]);
            let outer_id = outer.id().unwrap();
            {
                let inner = SpanGuard::enter("inner", Vec::new);
                assert_eq!(inner.id().map(|i| i > outer_id), Some(true));
            }
            // Inner closed but outer still open: nothing global yet.
            assert!(COLLECTOR.lock().unwrap().spans.is_empty());
            record_complete("manual", 10, 5, vec![]);
        }
        // Outermost span closed → buffer flushed.
        let spans = drain();
        stop_recording();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let manual = spans.iter().find(|s| s.name == "manual").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(manual.parent, outer.id);
        assert_eq!(outer.corr, Some(corr));
        assert_eq!(inner.corr, Some(corr));
        assert_eq!(outer.fields, vec![("k", "v".to_string())]);
        assert!(outer.dur_us >= inner.dur_us);
        assert_eq!((manual.start_us, manual.dur_us), (10, 5));
        assert_eq!(outer.tid, inner.tid);
        assert!(drain().is_empty());

        // NullSubscriber never records, even while recording is on.
        start_recording();
        let ran = observed(NullSubscriber, "invisible", || 7);
        assert_eq!(ran, 7);
        let seen = observed(Recorder, "visible", || 8);
        assert_eq!(seen, 8);
        let spans = drain();
        stop_recording();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "visible");

        let totals = stage_totals(&[
            SpanRecord {
                id: 1,
                parent: 0,
                name: "b",
                corr: None,
                start_us: 0,
                dur_us: 4,
                tid: 1,
                fields: vec![],
            },
            SpanRecord {
                id: 2,
                parent: 0,
                name: "a",
                corr: None,
                start_us: 0,
                dur_us: 2,
                tid: 1,
                fields: vec![],
            },
            SpanRecord {
                id: 3,
                parent: 0,
                name: "b",
                corr: None,
                start_us: 4,
                dur_us: 6,
                tid: 1,
                fields: vec![],
            },
        ]);
        assert_eq!(totals, vec![("a", 2, 1), ("b", 10, 2)]);
    }
}
