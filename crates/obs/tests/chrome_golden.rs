//! Golden-fixture test for the Chrome trace-event export: a small
//! hand-built span forest serializes byte-for-byte to the committed
//! fixture, so any format drift (field order, escaping, sorting, the
//! document frame) is a deliberate fixture update.
//!
//! Re-bless after an intentional change:
//!
//! ```text
//! SP_BLESS=1 cargo test -p sp-obs --test chrome_golden
//! ```

use sp_obs::{CorrId, SpanRecord};
use std::path::PathBuf;

#[test]
fn export_matches_golden_fixture() {
    // The first root minted in this process: deterministic `c1` (this
    // binary contains exactly this one test).
    let corr = CorrId::next_root();
    assert_eq!(corr.root_tag(), "c1", "fixture assumes the first root");

    let spans = vec![
        // Deliberately out of order: the exporter sorts by (ts, id).
        SpanRecord {
            id: 2,
            parent: 1,
            name: "simulate",
            corr: Some(corr.child(1)),
            start_us: 120,
            dur_us: 3400,
            tid: 2,
            fields: vec![("mode", "scheduled".into()), ("passes", "1".into())],
        },
        SpanRecord {
            id: 1,
            parent: 0,
            name: "sweep",
            corr: Some(corr),
            start_us: 100,
            dur_us: 5000,
            tid: 1,
            fields: vec![("points", "2".into())],
        },
        // No correlation ID, escaped field value, zero duration.
        SpanRecord {
            id: 3,
            parent: 0,
            name: "load",
            corr: None,
            start_us: 0,
            dur_us: 0,
            tid: 1,
            fields: vec![("path", "a\"b\\c\n".into())],
        },
    ];
    let doc = sp_obs::chrome::trace_json(&spans);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/chrome_trace.json");
    if std::env::var_os("SP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &doc).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with SP_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, doc,
        "Chrome export drifted; if intentional, re-bless with SP_BLESS=1"
    );
}
