//! Property suite for the shared log-linear histogram: percentile
//! error bounded by the bucket width, merge exactly equivalent to
//! concatenation, exact aggregates. Runs under the deterministic
//! sp-testkit harness (fixed case list, replayable seeds).

use sp_obs::hist::LogLinearHist;
use sp_testkit::{check, gen_vec, SmallRng};

/// Exact nearest-rank percentile on a sorted slice — the reference the
/// histogram estimate is checked against.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning the linear region, the log region, and the huge
/// tail, so bucket-boundary math is exercised at every magnitude.
fn gen_sample(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0..4u32) {
        0 => rng.gen_range(0..300u64), // linear region (p >= 7 keeps these exact)
        1 => rng.gen_range(300..100_000u64), // typical latencies
        2 => rng.gen_range(100_000..10_000_000u64), // slow tail
        // Arbitrary magnitudes up to ~2^52 — large enough to stress the
        // high octaves, small enough that no test-sized sample set can
        // overflow the exact u64 running sum.
        _ => rng.next_u64() >> rng.gen_range(12..40u32),
    }
}

const QUANTILES: [f64; 6] = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];

#[test]
fn quantile_error_is_bounded_by_the_bucket_width() {
    for sub_bits in [0u32, 3, 5, 7] {
        check(64, |rng| {
            let samples = gen_vec(rng, 1..400, gen_sample);
            let h = LogLinearHist::with_precision(sub_bits);
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in QUANTILES {
                let exact = nearest_rank(&sorted, q);
                let est = h.quantile(q);
                // The estimate is the upper bound of the exact value's
                // bucket (clamped to the recorded max): never below the
                // exact value, never past its bucket.
                assert!(
                    est >= exact,
                    "p{sub_bits} q{q}: estimate {est} < exact {exact}"
                );
                assert_eq!(
                    h.index_of(est),
                    h.index_of(exact),
                    "p{sub_bits} q{q}: estimate {est} left exact {exact}'s bucket"
                );
                let width = h.bound_of(h.index_of(exact)) - exact;
                assert!(
                    est - exact <= width,
                    "p{sub_bits} q{q}: error {} exceeds bucket width {width}",
                    est - exact
                );
            }
            // The relative error bound holds in the log region.
            let exact = nearest_rank(&sorted, 0.99);
            let est = h.quantile(0.99);
            if exact >= 1u64 << sub_bits {
                let rel = (est - exact) as f64 / exact as f64;
                let bound = 2.0 * h.relative_error_bound(); // bucket top vs bucket bottom
                assert!(rel <= bound, "relative error {rel} > {bound}");
            } else {
                assert_eq!(est, exact, "linear-region quantiles are exact");
            }
        });
    }
}

#[test]
fn aggregates_are_exact() {
    check(64, |rng| {
        let samples = gen_vec(rng, 1..300, gen_sample);
        let h = LogLinearHist::default();
        for &v in &samples {
            h.record(v);
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.min(), *samples.iter().min().unwrap());
        assert_eq!(h.max(), *samples.iter().max().unwrap());
        // The occupied-bucket export folds back to the exact count.
        let folded: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(folded, h.count());
    });
}

#[test]
fn merge_is_exactly_concatenation() {
    check(64, |rng| {
        let left = gen_vec(rng, 0..200, gen_sample);
        let right = gen_vec(rng, 0..200, gen_sample);
        let a = LogLinearHist::default();
        for &v in &left {
            a.record(v);
        }
        let b = LogLinearHist::default();
        for &v in &right {
            b.record(v);
        }
        let merged = LogLinearHist::default();
        merged.merge(&a).unwrap();
        merged.merge(&b).unwrap();
        let concat = LogLinearHist::default();
        for &v in left.iter().chain(&right) {
            concat.record(v);
        }
        assert_eq!(merged.count(), concat.count());
        assert_eq!(merged.sum(), concat.sum());
        assert_eq!(merged.min(), concat.min());
        assert_eq!(merged.max(), concat.max());
        assert_eq!(merged.nonzero_buckets(), concat.nonzero_buckets());
        for q in QUANTILES {
            assert_eq!(merged.quantile(q), concat.quantile(q), "q={q}");
        }
    });
}
