//! Delinquent-load identification.
//!
//! Helper-threaded prefetching targets the few static loads that cause
//! most last-level misses (the paper's Fig. 1 marks them `/* delinquent
//! load */`). This module replays a hot-loop trace through a standalone
//! L2 model (no prefetchers, no helper — the "original" configuration)
//! and ranks the reference sites by the misses they cause.

use sp_cachesim::{CacheGeometry, Entity, Policy, SetAssocCache};
use sp_trace::{HotLoopTrace, SiteId};
use std::collections::HashMap;

/// Per-site miss profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMissStats {
    /// The static reference site.
    pub site: SiteId,
    /// References issued by the site.
    pub refs: u64,
    /// L2 misses caused by the site.
    pub misses: u64,
}

impl SiteMissStats {
    /// Miss rate of this site.
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses as f64 / self.refs as f64
        }
    }
}

/// Replay `trace` through an L2 of the given geometry and rank sites by
/// miss count, descending (ties broken by site id for determinism).
pub fn rank_delinquent_loads(
    trace: &HotLoopTrace,
    l2: CacheGeometry,
    policy: Policy,
) -> Vec<SiteMissStats> {
    let mut cache = SetAssocCache::new(l2, policy);
    let mut per_site: HashMap<SiteId, (u64, u64)> = HashMap::new();
    for (_, r) in trace.tagged_refs() {
        let e = per_site.entry(r.site).or_insert((0, 0));
        e.0 += 1;
        if cache.demand_touch(r.vaddr, false).is_none() {
            e.1 += 1;
            cache.fill(r.vaddr, Entity::Main, false);
        }
    }
    let mut out: Vec<SiteMissStats> = per_site
        .into_iter()
        .map(|(site, (refs, misses))| SiteMissStats { site, refs, misses })
        .collect();
    out.sort_by(|a, b| b.misses.cmp(&a.misses).then(a.site.cmp(&b.site)));
    out
}

/// The sites that together account for at least `coverage` (0..=1) of all
/// misses — the set the helper thread should prefetch.
pub fn delinquent_sites(ranked: &[SiteMissStats], coverage: f64) -> Vec<SiteId> {
    let total: u64 = ranked.iter().map(|s| s.misses).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    let mut out = Vec::new();
    for s in ranked {
        if s.misses == 0 {
            break;
        }
        out.push(s.site);
        acc += s.misses;
        if acc as f64 / total as f64 >= coverage {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_workloads::{Em3d, Em3dConfig};

    fn small_l2() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 4, 64)
    }

    #[test]
    fn em3d_delinquent_load_is_the_remote_node_dereference() {
        let g = Em3d::build(Em3dConfig::tiny());
        let ranked = rank_delinquent_loads(&g.trace(), small_l2(), Policy::Lru);
        // The irregular remote dereference must out-miss the sequential
        // array walks (the paper's delinquent loads are exactly these).
        let top = ranked[0];
        assert_eq!(top.site, sp_workloads::em3d::sites::OTHER_VALUE);
        assert!(top.misses > 0);
    }

    #[test]
    fn miss_counts_never_exceed_ref_counts() {
        let g = Em3d::build(Em3dConfig::tiny());
        let ranked = rank_delinquent_loads(&g.trace(), small_l2(), Policy::Lru);
        for s in &ranked {
            assert!(s.misses <= s.refs, "{:?}", s);
            assert!(s.miss_rate() <= 1.0);
        }
    }

    #[test]
    fn every_site_appears_exactly_once() {
        let g = Em3d::build(Em3dConfig::tiny());
        let t = g.trace();
        let ranked = rank_delinquent_loads(&t, small_l2(), Policy::Lru);
        let mut sites: Vec<u32> = ranked.iter().map(|s| s.site.0).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), ranked.len());
        // Total refs across sites equals the trace's refs.
        let total: u64 = ranked.iter().map(|s| s.refs).sum();
        assert_eq!(total, t.total_refs() as u64);
    }

    #[test]
    fn coverage_selection_is_prefix_of_ranking() {
        let g = Em3d::build(Em3dConfig::tiny());
        let ranked = rank_delinquent_loads(&g.trace(), small_l2(), Policy::Lru);
        let chosen = delinquent_sites(&ranked, 0.8);
        assert!(!chosen.is_empty());
        for (i, s) in chosen.iter().enumerate() {
            assert_eq!(*s, ranked[i].site);
        }
        // Full coverage includes every missing site.
        let all = delinquent_sites(&ranked, 1.0);
        assert!(all.len() >= chosen.len());
        assert!(all.len() <= ranked.len());
    }

    #[test]
    fn miss_free_trace_selects_nothing() {
        // One block re-touched forever: after the cold miss the trace has
        // one missing site; coverage of it is total. Use a huge cache and
        // a single ref to get a ranking with a single cold miss.
        let t = sp_trace::synth::sequential(1, 1, 0, 64, 0);
        let ranked = rank_delinquent_loads(&t, small_l2(), Policy::Lru);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].misses, 1);
        let t2 = {
            // Re-touching trace: all hits after warmup.
            let mut t2 = sp_trace::HotLoopTrace::new("hits");
            for _ in 0..10 {
                t2.iters.push(sp_trace::IterRecord {
                    backbone: Vec::new(),
                    inner: vec![sp_trace::MemRef::anon(0)],
                    compute_cycles: 0,
                });
            }
            t2
        };
        let ranked2 = rank_delinquent_loads(&t2, small_l2(), Policy::Lru);
        assert_eq!(ranked2[0].misses, 1, "only the cold miss");
    }
}
