//! # sp-profiler
//!
//! The paper's profiling methodology (§IV.C), reimplemented over traces:
//!
//! 1. **Phase detection** ([`phase`]): "data access in our selected hot
//!    functions shows phase behavior" — detect intervals of the outer
//!    loop with stable access characteristics.
//! 2. **Interval-based burst sampling** ([`sampling`]): record short
//!    bursts of the reference stream at regular intervals instead of the
//!    whole stream ("low-overhead profile run").
//! 3. **Delinquent-load ranking** ([`delinquent`]): which static sites
//!    cause the L2 misses — the loads the helper thread should cover
//!    (paper §II.A; the original SP work selects hot loops by their L2
//!    miss profile, collected with VTune).
//! 4. **Benchmark selection** ([`selection`]): screen candidate
//!    applications by L2-miss cycle share (paper §IV.B).
//!
//! The Set Affinity analysis itself lives in `sp-core::affinity`; it
//! accepts either the full stream or the sampled bursts produced here.

pub mod delinquent;
pub mod phase;
pub mod reuse;
pub mod sampling;
pub mod selection;

pub use delinquent::{rank_delinquent_loads, SiteMissStats};
pub use phase::{detect_phases, Phase, PhaseConfig};
pub use reuse::{reuse_histogram, ReuseHistogram};
pub use sampling::{Burst, BurstSampler};
pub use selection::{miss_cycle_profile, select_benchmarks, MissCycleProfile, SelectionRow};
