//! Access-phase detection over the outer hot loop.
//!
//! The paper's prior work (ref \[36\], cited in §IV.C) observed that the hot
//! functions' data accesses show *phase behavior* — stretches of the
//! outer loop with stable access characteristics, produced by repeated
//! loop bodies or repeated calls to the hot function. The profiler first
//! detects these phases, then samples within them.
//!
//! Detection here is feature-based: the trace is cut into fixed windows
//! of outer iterations; each window's feature vector is (references per
//! iteration, distinct blocks per iteration); consecutive windows whose
//! features differ by less than a relative tolerance merge into a phase.

use sp_trace::{HotLoopTrace, VAddr};
use std::collections::HashSet;

/// Phase-detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Outer iterations per analysis window.
    pub window: usize,
    /// Relative feature-difference tolerance for merging windows.
    pub rel_tol: f64,
    /// Cache line size used for the distinct-block feature.
    pub line_size: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            window: 64,
            rel_tol: 0.25,
            line_size: 64,
        }
    }
}

/// One detected phase of the hot loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// First outer iteration of the phase (inclusive).
    pub start_iter: usize,
    /// One past the last outer iteration of the phase.
    pub end_iter: usize,
    /// Mean references per iteration over the phase.
    pub refs_per_iter: f64,
    /// Mean distinct blocks touched per iteration over the phase.
    pub blocks_per_iter: f64,
}

impl Phase {
    /// Iterations covered by the phase.
    pub fn len(&self) -> usize {
        self.end_iter - self.start_iter
    }

    /// `true` if the phase covers no iterations.
    pub fn is_empty(&self) -> bool {
        self.end_iter == self.start_iter
    }
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    let denom = a.abs().max(b.abs()).max(1e-9);
    (a - b).abs() / denom <= tol
}

/// Detect phases of `trace` under `cfg`.
pub fn detect_phases(trace: &HotLoopTrace, cfg: PhaseConfig) -> Vec<Phase> {
    assert!(cfg.window > 0, "window must be positive");
    let n = trace.iters.len();
    if n == 0 {
        return Vec::new();
    }
    // Per-window features.
    struct Win {
        start: usize,
        end: usize,
        refs: f64,
        blocks: f64,
    }
    let mut wins = Vec::new();
    let mut i = 0;
    while i < n {
        let end = (i + cfg.window).min(n);
        let mut refs = 0usize;
        let mut blocks: HashSet<VAddr> = HashSet::new();
        for it in &trace.iters[i..end] {
            refs += it.len();
            for r in it.refs() {
                blocks.insert(r.block(cfg.line_size));
            }
        }
        let iters = (end - i) as f64;
        wins.push(Win {
            start: i,
            end,
            refs: refs as f64 / iters,
            blocks: blocks.len() as f64 / iters,
        });
        i = end;
    }
    // Merge consecutive similar windows.
    let mut phases: Vec<Phase> = Vec::new();
    for w in wins {
        if let Some(last) = phases.last_mut() {
            if rel_close(last.refs_per_iter, w.refs, cfg.rel_tol)
                && rel_close(last.blocks_per_iter, w.blocks, cfg.rel_tol)
            {
                // Weighted merge.
                let a = last.len() as f64;
                let b = (w.end - w.start) as f64;
                last.refs_per_iter = (last.refs_per_iter * a + w.refs * b) / (a + b);
                last.blocks_per_iter = (last.blocks_per_iter * a + w.blocks * b) / (a + b);
                last.end_iter = w.end;
                continue;
            }
        }
        phases.push(Phase {
            start_iter: w.start,
            end_iter: w.end,
            refs_per_iter: w.refs,
            blocks_per_iter: w.blocks,
        });
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::synth;
    use sp_trace::{IterRecord, MemRef};

    #[test]
    fn uniform_trace_is_one_phase() {
        let t = synth::sequential(512, 4, 0, 64, 0);
        let phases = detect_phases(&t, PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        let p = &phases[0];
        assert_eq!((p.start_iter, p.end_iter), (0, 512));
        assert!((p.refs_per_iter - 4.0).abs() < 1e-9);
    }

    #[test]
    fn abrupt_intensity_change_splits_phases() {
        // 256 iterations with 2 refs each, then 256 with 16 refs each.
        let mut t = synth::sequential(256, 2, 0, 64, 0);
        let heavy = synth::sequential(256, 16, 1 << 24, 64, 0);
        t.iters.extend(heavy.iters);
        let phases = detect_phases(&t, PhaseConfig::default());
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].end_iter, 256);
        assert_eq!(phases[1].start_iter, 256);
        assert!(phases[1].refs_per_iter > phases[0].refs_per_iter * 4.0);
    }

    #[test]
    fn footprint_change_splits_phases_even_at_equal_intensity() {
        // Same refs/iter, but first half re-touches one block while the
        // second half streams new blocks.
        let mut t = sp_trace::HotLoopTrace::new("t");
        for _ in 0..256 {
            t.iters.push(IterRecord {
                backbone: Vec::new(),
                inner: vec![MemRef::anon(0), MemRef::anon(8)],
                compute_cycles: 0,
            });
        }
        let stream = synth::sequential(256, 2, 1 << 24, 64, 0);
        t.iters.extend(stream.iters);
        let phases = detect_phases(&t, PhaseConfig::default());
        assert_eq!(phases.len(), 2);
        assert!(phases[1].blocks_per_iter > phases[0].blocks_per_iter * 10.0);
    }

    #[test]
    fn empty_trace_yields_no_phases() {
        let t = sp_trace::HotLoopTrace::new("empty");
        assert!(detect_phases(&t, PhaseConfig::default()).is_empty());
    }

    #[test]
    fn phases_partition_the_trace() {
        let mut t = synth::sequential(100, 2, 0, 64, 0);
        t.iters
            .extend(synth::sequential(300, 9, 1 << 24, 64, 0).iters);
        t.iters
            .extend(synth::sequential(77, 2, 1 << 30, 64, 0).iters);
        let phases = detect_phases(&t, PhaseConfig::default());
        assert_eq!(phases.first().unwrap().start_iter, 0);
        assert_eq!(phases.last().unwrap().end_iter, 477);
        for w in phases.windows(2) {
            assert_eq!(w[0].end_iter, w[1].start_iter, "phases must be contiguous");
        }
    }

    #[test]
    fn short_tail_window_is_absorbed_or_kept_consistently() {
        let t = synth::sequential(70, 3, 0, 64, 0); // window 64 + tail 6
        let phases = detect_phases(&t, PhaseConfig::default());
        assert_eq!(phases.last().unwrap().end_iter, 70);
    }
}
