//! LRU stack-distance (reuse-distance) analysis — Mattson et al.'s
//! classic one-pass algorithm.
//!
//! Set Affinity (paper §III.B) is a *first-overflow* summary of set
//! pressure; the stack-distance histogram is the complete picture: the
//! number of distinct blocks mapped to the same set since the previous
//! access to a block determines whether that access hits in an LRU set
//! of any given associativity. One profiling pass therefore yields the
//! exact LRU miss count for **every** associativity simultaneously
//! (Mattson's inclusion property), which this crate uses to
//!
//! * cross-validate the cache simulator (an independent oracle — see
//!   `miss_count` tests and `prop_profiler.rs`), and
//! * let users size the L2 for a workload before running any sweep.
//!
//! Distances are computed **per cache set** over block addresses, which
//! is exactly the domain the Set Affinity argument lives in.

use sp_cachesim::CacheGeometry;
use sp_trace::{HotLoopTrace, VAddr};
use std::collections::HashMap;

/// A per-set LRU stack distance histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseHistogram {
    /// `histogram[d]` = accesses whose stack distance is exactly `d`
    /// (0 = re-access with no intervening distinct block in the set).
    pub histogram: Vec<u64>,
    /// First-touch (cold) accesses: infinite distance.
    pub cold: u64,
    /// Total accesses analyzed.
    pub total: u64,
}

impl ReuseHistogram {
    /// Exact LRU miss count for a cache of this geometry with `ways`
    /// associativity (Mattson): an access misses iff its stack distance
    /// is `>= ways` (or cold).
    pub fn miss_count(&self, ways: u32) -> u64 {
        let hits: u64 = self.histogram.iter().take(ways as usize).sum();
        self.total - hits
    }

    /// Miss ratio for `ways` associativity.
    pub fn miss_ratio(&self, ways: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.miss_count(ways) as f64 / self.total as f64
        }
    }

    /// The smallest associativity achieving `target` miss ratio or
    /// better, if any associativity up to the histogram length does.
    pub fn ways_for_miss_ratio(&self, target: f64) -> Option<u32> {
        (1..=self.histogram.len() as u32 + 1).find(|&w| self.miss_ratio(w) <= target)
    }
}

/// One-pass per-set stack-distance analysis of `trace` against the sets
/// of `geo` (associativity is *not* consumed — that is the point).
///
/// ```
/// use sp_cachesim::CacheGeometry;
/// use sp_profiler::reuse_histogram;
/// use sp_trace::synth;
///
/// let geo = CacheGeometry::new(4 * 1024, 4, 64);
/// // A pure streaming scan never reuses a block: every access is cold.
/// let h = reuse_histogram(&synth::sequential(100, 4, 0, 64, 0), geo);
/// assert_eq!(h.miss_ratio(16), 1.0);
/// ```
///
/// Implementation: per set, an ordered list of resident blocks in
/// recency order; the distance of an access is its block's index in the
/// list (then the block moves to the front). Lists grow to the set's
/// distinct-block count; for the workloads here that is a few hundred
/// entries, so the O(distance) scan is faster than a tree.
pub fn reuse_histogram(trace: &HotLoopTrace, geo: CacheGeometry) -> ReuseHistogram {
    let mut stacks: HashMap<u64, Vec<VAddr>> = HashMap::new();
    let mut h = ReuseHistogram::default();
    for (_, r) in trace.tagged_refs() {
        let block = geo.block_of(r.vaddr);
        let set = geo.set_of(r.vaddr);
        let stack = stacks.entry(set).or_default();
        h.total += 1;
        match stack.iter().position(|&b| b == block) {
            Some(d) => {
                if h.histogram.len() <= d {
                    h.histogram.resize(d + 1, 0);
                }
                h.histogram[d] += 1;
                stack.remove(d);
                stack.insert(0, block);
            }
            None => {
                h.cold += 1;
                stack.insert(0, block);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cachesim::{Entity, Policy, SetAssocCache};
    use sp_trace::synth;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(4 * 1024, 4, 64) // 16 sets x 4 ways
    }

    /// Count misses by actually simulating an LRU cache of `ways`.
    fn simulated_misses(trace: &HotLoopTrace, ways: u32) -> u64 {
        let g = geo();
        let sim_geo = CacheGeometry::new(g.sets() * ways as u64 * g.line_size, ways, g.line_size);
        assert_eq!(sim_geo.sets(), g.sets(), "same set count, different ways");
        let mut c = SetAssocCache::new(sim_geo, Policy::Lru);
        let mut misses = 0;
        for (_, r) in trace.tagged_refs() {
            if c.demand_touch(r.vaddr, false).is_none() {
                misses += 1;
                c.fill(r.vaddr, Entity::Main, false);
            }
        }
        misses
    }

    use sp_trace::HotLoopTrace;

    #[test]
    fn histogram_counts_partition_accesses() {
        let t = synth::random(300, 5, 0, 1 << 14, 7, 0);
        let h = reuse_histogram(&t, geo());
        let in_hist: u64 = h.histogram.iter().sum();
        assert_eq!(in_hist + h.cold, h.total);
        assert_eq!(h.total, t.total_refs() as u64);
    }

    #[test]
    fn mattson_matches_simulation_for_every_associativity() {
        let t = synth::random(400, 6, 0, 1 << 14, 13, 0);
        let h = reuse_histogram(&t, geo());
        for ways in [1u32, 2, 4, 8] {
            assert_eq!(
                h.miss_count(ways),
                simulated_misses(&t, ways),
                "ways = {ways}"
            );
        }
    }

    #[test]
    fn inclusion_property_miss_count_monotone_in_ways() {
        let t = synth::random(500, 4, 0, 1 << 15, 21, 0);
        let h = reuse_histogram(&t, geo());
        for w in 1..16u32 {
            assert!(h.miss_count(w + 1) <= h.miss_count(w));
        }
    }

    #[test]
    fn streaming_trace_is_all_cold() {
        let t = synth::sequential(100, 4, 0, 64, 0);
        let h = reuse_histogram(&t, geo());
        assert_eq!(h.cold, h.total);
        assert_eq!(h.miss_count(16), h.total);
        assert_eq!(h.miss_ratio(16), 1.0);
    }

    #[test]
    fn single_block_rereference_has_distance_zero() {
        let mut t = HotLoopTrace::new("t");
        for _ in 0..50 {
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner: vec![sp_trace::MemRef::anon(0x40)],
                compute_cycles: 0,
            });
        }
        let h = reuse_histogram(&t, geo());
        assert_eq!(h.cold, 1);
        assert_eq!(h.histogram[0], 49);
        assert_eq!(
            h.miss_count(1),
            1,
            "one cold miss, everything else hits at 1 way"
        );
    }

    #[test]
    fn ways_for_miss_ratio_finds_the_knee() {
        // Cycle over 3 conflicting blocks in one set: distance 2 each
        // after warmup -> needs 3 ways for ~0 misses.
        let g = geo();
        let mut t = HotLoopTrace::new("t");
        for i in 0..90u64 {
            let b = i % 3;
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner: vec![sp_trace::MemRef::anon(b * g.sets() * g.line_size)],
                compute_cycles: 0,
            });
        }
        let h = reuse_histogram(&t, g);
        assert!(h.miss_ratio(2) > 0.9, "2 ways thrash");
        assert!(h.miss_ratio(3) < 0.05, "3 ways hold the cycle");
        assert_eq!(h.ways_for_miss_ratio(0.1), Some(3));
    }

    #[test]
    fn empty_trace() {
        let h = reuse_histogram(&HotLoopTrace::new("e"), geo());
        assert_eq!(h.total, 0);
        assert_eq!(h.miss_ratio(4), 0.0);
    }
}
