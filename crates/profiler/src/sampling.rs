//! Interval-based burst sampling of the reference stream.
//!
//! The paper (§IV.C): *"the profiling mechanism in this paper is
//! implemented using an interval-based burst sampling technique ...
//! we get data access stream of each phase by interval-based burst
//! sampling"*. A burst records `on` consecutive outer iterations in full,
//! then skips `off` iterations, repeating over the whole hot loop.

use sp_trace::{HotLoopTrace, IterRecord};

/// One recorded burst: a contiguous window of the hot loop.
#[derive(Debug, Clone)]
pub struct Burst {
    /// Outer-loop iteration index at which the burst starts.
    pub start_iter: usize,
    /// The recorded iterations, in order.
    pub iters: Vec<IterRecord>,
}

impl Burst {
    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iters.len()
    }

    /// `true` if the burst recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.iters.is_empty()
    }
}

/// Configuration of the interval-based burst sampler.
///
/// ```
/// use sp_profiler::BurstSampler;
/// use sp_trace::synth;
///
/// let trace = synth::sequential(100, 1, 0, 64, 0);
/// let sampler = BurstSampler::new(10, 40); // 10 on, 40 off
/// let bursts = sampler.sample(&trace);
/// assert_eq!(bursts.len(), 2);
/// assert_eq!(sampler.duty_cycle(), 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSampler {
    /// Iterations recorded per burst.
    pub on: usize,
    /// Iterations skipped between bursts.
    pub off: usize,
    /// Iterations skipped before the first burst (warm-up).
    pub start: usize,
}

impl BurstSampler {
    /// A sampler recording `on` iterations out of every `on + off`.
    pub fn new(on: usize, off: usize) -> Self {
        assert!(on > 0, "burst length must be positive");
        BurstSampler { on, off, start: 0 }
    }

    /// Default used by the reproduction: 512-iteration bursts every 2048
    /// iterations (a 25% sampling rate — long enough for the small-SA
    /// EM3D sets to overflow within one burst).
    pub fn default_profile() -> Self {
        BurstSampler::new(512, 1536)
    }

    /// Fraction of iterations recorded.
    pub fn duty_cycle(&self) -> f64 {
        self.on as f64 / (self.on + self.off) as f64
    }

    /// Record bursts from `trace`.
    pub fn sample(&self, trace: &HotLoopTrace) -> Vec<Burst> {
        let mut bursts = Vec::new();
        let mut i = self.start;
        let n = trace.iters.len();
        while i < n {
            let end = (i + self.on).min(n);
            bursts.push(Burst {
                start_iter: i,
                iters: trace.iters[i..end].to_vec(),
            });
            i = end + self.off;
        }
        bursts
    }

    /// Total iterations a sampling of `trace` would record.
    pub fn recorded_iters(&self, trace: &HotLoopTrace) -> usize {
        self.sample(trace).iter().map(Burst::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::synth;

    #[test]
    fn bursts_tile_the_trace_at_the_configured_interval() {
        let t = synth::sequential(100, 1, 0, 64, 0);
        let s = BurstSampler::new(10, 40);
        let bursts = s.sample(&t);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].start_iter, 0);
        assert_eq!(bursts[0].len(), 10);
        assert_eq!(bursts[1].start_iter, 50);
        assert_eq!(bursts[1].len(), 10);
    }

    #[test]
    fn final_partial_burst_is_kept() {
        let t = synth::sequential(55, 1, 0, 64, 0);
        let s = BurstSampler::new(10, 40);
        let bursts = s.sample(&t);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[1].len(), 5);
    }

    #[test]
    fn burst_contents_match_the_trace_window() {
        let t = synth::sequential(30, 2, 0, 64, 3);
        let s = BurstSampler::new(5, 10);
        let bursts = s.sample(&t);
        for b in &bursts {
            for (k, it) in b.iters.iter().enumerate() {
                assert_eq!(*it, t.iters[b.start_iter + k]);
            }
        }
    }

    #[test]
    fn warm_up_offset_is_honoured() {
        let t = synth::sequential(100, 1, 0, 64, 0);
        let s = BurstSampler {
            on: 10,
            off: 40,
            start: 7,
        };
        let bursts = s.sample(&t);
        assert_eq!(bursts[0].start_iter, 7);
    }

    #[test]
    fn duty_cycle_and_recorded_iters_agree() {
        let t = synth::sequential(1000, 1, 0, 64, 0);
        let s = BurstSampler::new(100, 300);
        assert!((s.duty_cycle() - 0.25).abs() < 1e-12);
        let rec = s.recorded_iters(&t);
        assert_eq!(rec, 300); // bursts at 0, 400, 800 -> 100 each
    }

    #[test]
    fn zero_off_records_everything() {
        let t = synth::sequential(42, 1, 0, 64, 0);
        let s = BurstSampler::new(10, 0);
        assert_eq!(s.recorded_iters(&t), 42);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_on_rejected() {
        let _ = BurstSampler::new(0, 10);
    }
}
