//! Benchmark selection by L2-miss cycle share (paper §IV.B).
//!
//! *"To decide the benchmarks used in our experiments, we first run
//! entire SPEC2006 and Olden suite on VTune and collect the L2 cache miss
//! profiles. Then we select those applications that have significant
//! number of cycles attributed to the L2 cache misses."*
//!
//! This module replays a candidate's hot-loop trace through the
//! single-core hierarchy model, attributes every cycle to computation,
//! L1/L2 hits, or L2-miss stalls, and selects candidates whose L2-miss
//! share clears a threshold.

use sp_cachesim::{CacheConfig, Entity, LatencyConfig, SetAssocCache};
use sp_trace::HotLoopTrace;

/// Cycle attribution of one candidate's hot loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissCycleProfile {
    /// Pure-computation cycles.
    pub compute_cycles: u64,
    /// Cycles in L1 hits.
    pub l1_cycles: u64,
    /// Cycles in L2 hits.
    pub l2_hit_cycles: u64,
    /// Cycles stalled on L2 misses.
    pub miss_cycles: u64,
}

impl MissCycleProfile {
    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.l1_cycles + self.l2_hit_cycles + self.miss_cycles
    }

    /// Fraction of cycles attributed to L2 misses — the paper's
    /// selection criterion.
    pub fn miss_share(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.miss_cycles as f64 / t as f64
        }
    }
}

/// Replay `trace` through the (original, single-core) hierarchy model
/// and attribute cycles.
pub fn miss_cycle_profile(trace: &HotLoopTrace, cfg: &CacheConfig) -> MissCycleProfile {
    let lat: LatencyConfig = cfg.latency;
    let mut l1 = SetAssocCache::new(cfg.l1, sp_cachesim::Policy::Lru);
    let mut l2 = SetAssocCache::new(cfg.l2, cfg.policy);
    let mut p = MissCycleProfile {
        compute_cycles: 0,
        l1_cycles: 0,
        l2_hit_cycles: 0,
        miss_cycles: 0,
    };
    for it in &trace.iters {
        p.compute_cycles += it.compute_cycles;
        for r in it.refs() {
            let store = r.kind == sp_trace::AccessKind::Store;
            if l1.demand_touch(r.vaddr, store).is_some() {
                p.l1_cycles += lat.l1_hit;
            } else if l2.demand_touch(r.vaddr, store).is_some() {
                l1.fill(r.vaddr, Entity::Main, false);
                p.l2_hit_cycles += lat.l2_total();
            } else {
                l2.fill(r.vaddr, Entity::Main, false);
                l1.fill(r.vaddr, Entity::Main, false);
                p.miss_cycles += lat.full_miss();
            }
        }
    }
    p
}

/// One candidate's screening verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRow {
    /// Candidate name.
    pub name: String,
    /// Its cycle attribution.
    pub profile: MissCycleProfile,
    /// Whether it clears the threshold.
    pub selected: bool,
}

/// Screen `candidates` (name, trace) at `threshold` L2-miss cycle share.
/// Rows are returned sorted by miss share, descending.
pub fn select_benchmarks(
    candidates: &[(String, HotLoopTrace)],
    cfg: &CacheConfig,
    threshold: f64,
) -> Vec<SelectionRow> {
    let mut rows: Vec<SelectionRow> = candidates
        .iter()
        .map(|(name, trace)| {
            let profile = miss_cycle_profile(trace, cfg);
            SelectionRow {
                name: name.clone(),
                selected: profile.miss_share() >= threshold,
                profile,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.profile.miss_share().total_cmp(&a.profile.miss_share()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_cachesim::CacheGeometry;
    use sp_trace::synth;

    fn cfg() -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry::new(1024, 4, 64),
            l2: CacheGeometry::new(16 * 1024, 8, 64),
            ..CacheConfig::scaled_default()
        }
    }

    #[test]
    fn streaming_loop_is_miss_dominated() {
        let t = synth::sequential(500, 4, 0, 64, 1);
        let p = miss_cycle_profile(&t, &cfg());
        assert!(p.miss_share() > 0.9, "share {}", p.miss_share());
        assert_eq!(
            p.total(),
            p.compute_cycles + p.l1_cycles + p.l2_hit_cycles + p.miss_cycles
        );
    }

    #[test]
    fn compute_loop_is_not_miss_dominated() {
        // One resident block, heavy compute.
        let mut t = sp_trace::HotLoopTrace::new("hot");
        for _ in 0..200 {
            t.iters.push(sp_trace::IterRecord {
                backbone: Vec::new(),
                inner: vec![sp_trace::MemRef::anon(0)],
                compute_cycles: 500,
            });
        }
        let p = miss_cycle_profile(&t, &cfg());
        assert!(p.miss_share() < 0.01, "share {}", p.miss_share());
    }

    #[test]
    fn selection_sorts_and_thresholds() {
        let mem_bound = synth::sequential(300, 4, 0, 64, 1);
        let cpu_bound = {
            let mut t = sp_trace::HotLoopTrace::new("cpu");
            for _ in 0..100 {
                t.iters.push(sp_trace::IterRecord {
                    backbone: Vec::new(),
                    inner: vec![sp_trace::MemRef::anon(0)],
                    compute_cycles: 1000,
                });
            }
            t
        };
        let rows = select_benchmarks(
            &[("cpu".into(), cpu_bound), ("mem".into(), mem_bound)],
            &cfg(),
            0.3,
        );
        assert_eq!(rows[0].name, "mem");
        assert!(rows[0].selected);
        assert!(!rows[1].selected);
    }

    #[test]
    fn empty_trace_has_zero_share() {
        let t = sp_trace::HotLoopTrace::new("empty");
        let p = miss_cycle_profile(&t, &cfg());
        assert_eq!(p.miss_share(), 0.0);
        assert_eq!(p.total(), 0);
    }
}
