//! Property tests: burst sampling, phase detection, and delinquent-load
//! ranking invariants.
//!
//! Deterministic randomized cases via `sp_testkit::check` (std-only).

use sp_cachesim::{CacheGeometry, Policy};
use sp_profiler::{detect_phases, rank_delinquent_loads, BurstSampler, PhaseConfig};
use sp_testkit::{check, gen_vec, SmallRng};
use sp_trace::{synth, HotLoopTrace, IterRecord, MemRef, SiteId};

fn arb_trace(rng: &mut SmallRng) -> HotLoopTrace {
    let mut t = HotLoopTrace::new("arb");
    let iters = rng.gen_range(0usize..80);
    for _ in 0..iters {
        let inner = gen_vec(rng, 0..6, |r| {
            MemRef::load(r.gen_range(0u64..(1 << 16)), SiteId(r.gen_range(0u32..5)))
        });
        t.iters.push(IterRecord {
            backbone: Vec::new(),
            inner,
            compute_cycles: rng.gen_range(0u64..20),
        });
    }
    t
}

/// Bursts are disjoint, ordered, within bounds, and exactly tile the
/// on/off schedule.
#[test]
fn bursts_are_well_formed() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let on = rng.gen_range(1usize..20);
        let off = rng.gen_range(0usize..20);
        let s = BurstSampler::new(on, off);
        let bursts = s.sample(&t);
        let mut prev_end = 0usize;
        for (i, b) in bursts.iter().enumerate() {
            assert!(b.len() <= on);
            assert!(b.start_iter + b.len() <= t.outer_iters());
            if i > 0 {
                assert_eq!(b.start_iter, prev_end + off);
            } else {
                assert_eq!(b.start_iter, 0);
            }
            prev_end = b.start_iter + b.len();
            // Burst contents match the trace window exactly.
            for (k, it) in b.iters.iter().enumerate() {
                assert_eq!(it, &t.iters[b.start_iter + k]);
            }
        }
        assert_eq!(
            s.recorded_iters(&t),
            bursts.iter().map(|b| b.len()).sum::<usize>()
        );
    });
}

/// With off = 0 the sampler records the entire trace.
#[test]
fn zero_off_records_everything() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let on = rng.gen_range(1usize..20);
        let s = BurstSampler::new(on, 0);
        assert_eq!(s.recorded_iters(&t), t.outer_iters());
    });
}

/// Phases partition the trace contiguously from 0 to the end.
#[test]
fn phases_partition() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let window = rng.gen_range(1usize..32);
        let cfg = PhaseConfig {
            window,
            ..PhaseConfig::default()
        };
        let phases = detect_phases(&t, cfg);
        if t.outer_iters() == 0 {
            assert!(phases.is_empty());
        } else {
            assert_eq!(phases.first().unwrap().start_iter, 0);
            assert_eq!(phases.last().unwrap().end_iter, t.outer_iters());
            for w in phases.windows(2) {
                assert_eq!(w[0].end_iter, w[1].start_iter);
            }
            for p in &phases {
                assert!(!p.is_empty());
                assert!(p.refs_per_iter >= 0.0);
                assert!(p.blocks_per_iter <= p.refs_per_iter + 1e-9);
            }
        }
    });
}

/// Delinquent ranking conserves references, bounds misses, and is
/// sorted by miss count.
#[test]
fn ranking_invariants() {
    check(64, |rng| {
        let t = arb_trace(rng);
        let ranked = rank_delinquent_loads(&t, CacheGeometry::new(2048, 2, 64), Policy::Lru);
        let total: u64 = ranked.iter().map(|s| s.refs).sum();
        assert_eq!(total, t.total_refs() as u64);
        for s in &ranked {
            assert!(s.misses <= s.refs);
        }
        for w in ranked.windows(2) {
            assert!(w[0].misses >= w[1].misses);
        }
    });
}

/// A strictly streaming trace misses on every distinct block exactly
/// once per eviction cycle; the ranking's total misses equal at least
/// the distinct blocks beyond the cache capacity.
#[test]
fn streaming_trace_misses() {
    check(64, |rng| {
        let iters = rng.gen_range(1usize..100);
        let t = synth::sequential(iters, 4, 0, 64, 0);
        let geo = CacheGeometry::new(2048, 2, 64);
        let ranked = rank_delinquent_loads(&t, geo, Policy::Lru);
        let misses: u64 = ranked.iter().map(|s| s.misses).sum();
        // Pure streaming with distinct blocks: every ref is a miss.
        assert_eq!(misses, t.total_refs() as u64);
    });
}

mod reuse_props {
    use super::*;
    use sp_cachesim::{CacheGeometry, Entity, SetAssocCache};
    use sp_profiler::reuse_histogram;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(2 * 1024, 2, 64) // 16 sets x 2 ways
    }

    fn simulated_misses(t: &HotLoopTrace, ways: u32) -> u64 {
        let g = geo();
        let sim = CacheGeometry::new(g.sets() * ways as u64 * g.line_size, ways, g.line_size);
        let mut c = SetAssocCache::new(sim, Policy::Lru);
        let mut misses = 0;
        for (_, r) in t.tagged_refs() {
            if c.demand_touch(r.vaddr, false).is_none() {
                misses += 1;
                c.fill(r.vaddr, Entity::Main, false);
            }
        }
        misses
    }

    /// Mattson's one-pass histogram predicts the simulator's LRU miss
    /// count exactly, for arbitrary traces and associativities — a
    /// differential test between two independent implementations.
    #[test]
    fn mattson_equals_simulation() {
        check(64, |rng| {
            let t = arb_trace(rng);
            let ways = 1u32 << rng.gen_range(0u32..4);
            let h = reuse_histogram(&t, geo());
            assert_eq!(h.miss_count(ways), simulated_misses(&t, ways));
        });
    }

    /// Histogram counts partition the accesses; miss counts are
    /// monotone in associativity (the inclusion property).
    #[test]
    fn histogram_invariants() {
        check(64, |rng| {
            let t = arb_trace(rng);
            let h = reuse_histogram(&t, geo());
            let in_hist: u64 = h.histogram.iter().sum();
            assert_eq!(in_hist + h.cold, h.total);
            for w in 1..12u32 {
                assert!(h.miss_count(w + 1) <= h.miss_count(w));
            }
            // Cold misses are a floor at any associativity.
            assert!(h.miss_count(64) >= h.cold.min(h.total));
        });
    }
}
