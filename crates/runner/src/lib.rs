//! # sp-runner
//!
//! A deterministic fan-out executor for independent simulation jobs.
//!
//! Every figure and table of the paper is a grid of *independent*
//! simulations — (benchmark × prefetch distance × mode) points that
//! each own their `MemorySystem` and share nothing. This crate runs
//! such grids on `min(jobs, available_parallelism)` scoped worker
//! threads pulling from a shared self-scheduling queue (an atomic
//! ticket counter over the submission list — work-stealing without the
//! per-worker deques, which independent, coarse-grained jobs don't
//! need).
//!
//! **Determinism is structural, not scheduled**: a job is a pure
//! closure over its inputs, so its result cannot depend on which worker
//! runs it or when. The executor additionally returns results in
//! **submission order**, so downstream CSV/report code is byte-for-byte
//! identical whatever `--jobs` was. The determinism regression tests in
//! `tests/parallel_determinism.rs` (workspace root) certify both
//! properties against the serial path for every benchmark.
//!
//! No external dependencies; `std::thread::scope` only.

pub mod pool;

pub use pool::{SubmitError, WorkerPool};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A unit of work: any boxed closure producing a `Send` result. Sweep
/// drivers box one closure per (workload, `SpParams`, `CacheConfig`,
/// `EngineOptions`) grid point returning its `RunResult`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Timing metadata for one job, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMetric {
    /// Which worker executed the job (0 for the serial fast path).
    pub worker: usize,
    /// The job's own wall-clock time.
    pub wall: Duration,
}

/// Cumulative work done by one worker, indexed by worker id. Batch
/// fan-outs derive these from `per_job`; a live [`WorkerPool`] snapshot
/// reports its running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Jobs this worker has executed.
    pub jobs: usize,
    /// Total time this worker spent inside jobs.
    pub busy: Duration,
}

/// What one [`run_jobs`] call (or one [`WorkerPool`] snapshot) did: how
/// wide it ran and where the time went. `speedup()` is the figure the
/// `reproduce` summary prints; `queue_depth` and `per_worker` feed the
/// sp-serve `stats` reply, so both surfaces share one source of truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerReport {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Sum of per-job wall times (the serial-equivalent cost).
    pub busy: Duration,
    /// Per-job metrics, in submission order.
    pub per_job: Vec<JobMetric>,
    /// Jobs admitted but not yet executing when the report was taken.
    /// Always 0 for a completed batch fan-out; a live [`WorkerPool`]
    /// snapshot reports its current admission-queue depth.
    pub queue_depth: usize,
    /// Per-worker utilization totals, indexed by worker id.
    pub per_worker: Vec<WorkerStat>,
}

impl RunnerReport {
    /// Parallel speedup: serial-equivalent time over elapsed time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// Mean worker utilization over the whole fan-out: busy time over
    /// `workers x wall`, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let denom = self.workers as f64 * self.wall.as_secs_f64();
        if denom <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / denom).min(1.0)
        }
    }

    /// Merge another fan-out into this one (summing costs; `workers`
    /// keeps the maximum width). Used by drivers that issue several
    /// grids per artifact but print one summary.
    pub fn absorb(&mut self, other: &RunnerReport) {
        self.jobs += other.jobs;
        self.workers = self.workers.max(other.workers);
        self.wall += other.wall;
        self.busy += other.busy;
        self.per_job.extend(other.per_job.iter().copied());
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker
                .resize(other.per_worker.len(), WorkerStat::default());
        }
        for (mine, theirs) in self.per_worker.iter_mut().zip(&other.per_worker) {
            mine.jobs += theirs.jobs;
            mine.busy += theirs.busy;
        }
    }

    /// An empty report to [`absorb`](Self::absorb) into.
    pub fn empty() -> RunnerReport {
        RunnerReport {
            jobs: 0,
            workers: 0,
            wall: Duration::ZERO,
            busy: Duration::ZERO,
            per_job: Vec::new(),
            queue_depth: 0,
            per_worker: Vec::new(),
        }
    }
}

/// Resolve a `--jobs` request: `0` means "all cores"
/// (`available_parallelism`, falling back to 1 where unknown).
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Execute `jobs` on up to `jobs_n` workers (`0` = all cores) and
/// return their results **in submission order** plus a report.
///
/// Worker threads claim jobs through a shared atomic ticket counter:
/// whichever worker goes idle first takes the next unclaimed job, so an
/// expensive job never blocks the rest of the grid behind it. With one
/// worker (or one job) no threads are spawned at all — the serial path
/// is the plain in-order loop the parallel results are certified
/// against.
///
/// A panicking job propagates the panic to the caller after the
/// remaining workers drain (scoped threads join on scope exit).
pub fn run_jobs<T: Send>(jobs: Vec<Job<'_, T>>, jobs_n: usize) -> (Vec<T>, RunnerReport) {
    let n = jobs.len();
    let workers = resolve_jobs(jobs_n).min(n).max(1);
    let started = Instant::now();

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    let mut metrics: Vec<Option<JobMetric>> = vec![None; n];
    if workers <= 1 {
        for (i, job) in jobs.into_iter().enumerate() {
            let t0 = Instant::now();
            let _sp = sp_obs::span!("job", index = i, worker = 0);
            slots.push(Some(job()));
            drop(_sp);
            metrics[i] = Some(JobMetric {
                worker: 0,
                wall: t0.elapsed(),
            });
        }
    } else {
        // The shared queue: one Mutex<Option<Job>> per submission slot,
        // claimed by ticket. Claiming is wait-free in practice — each
        // slot's lock is taken exactly once.
        let queue: Vec<Mutex<Option<Job<'_, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let ticket = AtomicUsize::new(0);
        let mut harvest: Vec<Vec<(usize, T, JobMetric)>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let queue = &queue;
                let ticket = &ticket;
                handles.push(s.spawn(move || {
                    let mut local: Vec<(usize, T, JobMetric)> = Vec::new();
                    loop {
                        let i = ticket.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = queue[i]
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .take()
                            .expect("each ticket is claimed exactly once");
                        let t0 = Instant::now();
                        let sp = sp_obs::span!("job", index = i, worker = worker);
                        let out = job();
                        drop(sp);
                        local.push((
                            i,
                            out,
                            JobMetric {
                                worker,
                                wall: t0.elapsed(),
                            },
                        ));
                    }
                    local
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(local) => harvest.push(local),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        slots.resize_with(n, || None);
        for (i, out, m) in harvest.into_iter().flatten() {
            slots[i] = Some(out);
            metrics[i] = Some(m);
        }
    }

    let per_job: Vec<JobMetric> = metrics
        .into_iter()
        .map(|m| m.expect("every job ran"))
        .collect();
    let busy = per_job.iter().map(|m| m.wall).sum();
    let mut per_worker = vec![WorkerStat::default(); workers];
    for m in &per_job {
        per_worker[m.worker].jobs += 1;
        per_worker[m.worker].busy += m.wall;
    }
    let report = RunnerReport {
        jobs: n,
        workers,
        wall: started.elapsed(),
        busy,
        per_job,
        queue_depth: 0,
        per_worker,
    };
    let results = slots
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect();
    (results, report)
}

/// Parallel map preserving input order: `f` over each item, on up to
/// `jobs_n` workers. Sugar over [`run_jobs`] for homogeneous grids.
pub fn map_jobs<I, T, F>(items: Vec<I>, f: F, jobs_n: usize) -> (Vec<T>, RunnerReport)
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Send + Sync,
{
    let f = &f;
    let jobs: Vec<Job<'_, T>> = items
        .into_iter()
        .map(|item| Box::new(move || f(item)) as Job<'_, T>)
        .collect();
    run_jobs(jobs, jobs_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed_squares(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Job<'static, usize>)
            .collect()
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for workers in [1, 2, 4, 16] {
            let (out, rep) = run_jobs(boxed_squares(33), workers);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(rep.jobs, 33);
            assert_eq!(rep.per_job.len(), 33);
        }
    }

    #[test]
    fn worker_count_is_capped_by_jobs_and_floor_one() {
        let (_, rep) = run_jobs(boxed_squares(3), 64);
        assert_eq!(rep.workers, 3);
        let (out, rep) = run_jobs(boxed_squares(0), 4);
        assert!(out.is_empty());
        assert_eq!(rep.workers, 1);
        assert_eq!(rep.jobs, 0);
    }

    #[test]
    fn zero_requests_all_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn every_worker_identity_is_valid_and_busy_sums_jobs() {
        let (_, rep) = run_jobs(boxed_squares(64), 4);
        assert!(rep.per_job.iter().all(|m| m.worker < rep.workers));
        let sum: Duration = rep.per_job.iter().map(|m| m.wall).sum();
        assert_eq!(sum, rep.busy);
    }

    #[test]
    fn per_worker_totals_reconcile_with_per_job() {
        let (_, rep) = run_jobs(boxed_squares(64), 4);
        assert_eq!(rep.per_worker.len(), rep.workers);
        assert_eq!(rep.queue_depth, 0, "finished batches have empty queues");
        assert_eq!(rep.per_worker.iter().map(|w| w.jobs).sum::<usize>(), 64);
        let busy: Duration = rep.per_worker.iter().map(|w| w.busy).sum();
        assert_eq!(busy, rep.busy);
        let u = rep.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }

    #[test]
    fn queue_fans_out_across_all_workers() {
        // The first `workers` jobs rendezvous on a barrier, so each must
        // be claimed by a distinct worker (a single worker blocking in
        // one of them could never release the others).
        let workers = 4;
        let barrier = std::sync::Barrier::new(workers);
        let jobs: Vec<Job<'_, usize>> = (0..workers + 8)
            .map(|i| {
                let barrier = &barrier;
                Box::new(move || {
                    if i < workers {
                        barrier.wait();
                    }
                    i
                }) as Job<'_, usize>
            })
            .collect();
        let (out, rep) = run_jobs(jobs, workers);
        assert_eq!(out, (0..workers + 8).collect::<Vec<_>>());
        let distinct: std::collections::HashSet<usize> =
            rep.per_job.iter().take(workers).map(|m| m.worker).collect();
        assert_eq!(distinct.len(), workers, "barrier jobs span all workers");
    }

    #[test]
    fn parallel_equals_serial_for_pure_jobs() {
        let serial = run_jobs(boxed_squares(100), 1).0;
        for workers in [2, 3, 8] {
            assert_eq!(run_jobs(boxed_squares(100), workers).0, serial);
        }
    }

    #[test]
    fn map_jobs_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let (out, _) = map_jobs(items, |x| x * 3, 4);
        assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_borrow_from_the_caller() {
        let data: Vec<u64> = (0..10).collect();
        let jobs: Vec<Job<'_, u64>> = data
            .iter()
            .map(|x| Box::new(move || *x + 1) as Job<'_, u64>)
            .collect();
        let (out, _) = run_jobs(jobs, 2);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn speedup_and_absorb_are_consistent() {
        let mut total = RunnerReport::empty();
        let (_, a) = run_jobs(boxed_squares(8), 2);
        let (_, b) = run_jobs(boxed_squares(8), 2);
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.jobs, 16);
        assert_eq!(total.per_job.len(), 16);
        assert_eq!(total.busy, a.busy + b.busy);
        assert!(total.speedup() >= 0.0);
        assert_eq!(total.per_worker.len(), 2, "absorb keeps the widest lane");
        assert_eq!(total.per_worker.iter().map(|w| w.jobs).sum::<usize>(), 16);
    }

    #[test]
    fn panics_propagate() {
        let jobs: Vec<Job<'static, ()>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("job 2 exploded")
                    }
                }) as Job<'static, ()>
            })
            .collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(jobs, 2)));
        assert!(r.is_err());
    }
}
