//! A persistent, bounded worker pool for long-running services.
//!
//! [`run_jobs`](crate::run_jobs) is batch-shaped: it owns a finite grid,
//! fans it out, and joins. A daemon like `sp-serve` instead needs workers
//! that outlive any one request, an **admission queue with a hard bound**
//! (so overload turns into an explicit `busy` reply instead of unbounded
//! memory growth), and a **graceful drain** on shutdown (accepted work
//! finishes; nothing new is admitted). This module provides exactly that,
//! std-only: `Mutex` + `Condvar` for the queue, atomics for the metrics.
//!
//! Tasks are fire-and-forget closures; callers that need a result thread
//! a `std::sync::mpsc` channel through the closure. A panicking task is
//! caught and counted — one poisoned request must not take a service
//! worker down with it.

use crate::{RunnerReport, WorkerStat};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of pool work: owned closure, executed once on some worker.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — the caller should shed load
    /// (reply `busy`), not block.
    Busy,
    /// The pool is draining; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "admission queue full"),
            SubmitError::ShuttingDown => write!(f, "pool shutting down"),
        }
    }
}

struct PoolState {
    /// Queued tasks with their admission timestamp (sp-obs microsecond
    /// clock), so the claiming worker can attribute queue wait.
    tasks: VecDeque<(Task, u64)>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    capacity: usize,
    started: Instant,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    worker_busy_nanos: Vec<AtomicU64>,
    worker_jobs: Vec<AtomicU64>,
}

/// A fixed-width pool of persistent workers pulling from one bounded
/// FIFO admission queue.
///
/// ```
/// use sp_runner::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2, 16);
/// let (tx, rx) = mpsc::channel();
/// pool.try_submit(Box::new(move || tx.send(21 * 2).unwrap())).unwrap();
/// assert_eq!(rx.recv().unwrap(), 42);
/// pool.shutdown(); // drains, then joins the workers
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (`0` = all cores, floor 1) behind an
    /// admission queue holding at most `capacity` waiting tasks.
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let workers = crate::resolve_jobs(workers).max(1);
        let capacity = capacity.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity,
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            worker_busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            worker_jobs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sp-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// Admit `task` if the queue has room. Never blocks: a full queue is
    /// the caller's backpressure signal.
    pub fn try_submit(&self, task: Task) -> Result<(), SubmitError> {
        let mut st = lock(&self.shared.state);
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.tasks.len() >= self.shared.capacity {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Busy);
        }
        st.tasks.push_back((task, sp_obs::span::now_us()));
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Tasks admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.state).tasks.len()
    }

    /// The admission-queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks admitted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Tasks refused with [`SubmitError::Busy`].
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Tasks finished (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Tasks that panicked (caught; the worker survived).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Snapshot the pool as a [`RunnerReport`] — the same shape batch
    /// fan-outs produce, so `render_runner_summary` and the sp-serve
    /// `stats` reply share one source of truth. `per_job` is empty (a
    /// service pool does not retain unbounded per-task history).
    pub fn report(&self) -> RunnerReport {
        let per_worker: Vec<WorkerStat> = self
            .shared
            .worker_jobs
            .iter()
            .zip(&self.shared.worker_busy_nanos)
            .map(|(jobs, nanos)| WorkerStat {
                jobs: jobs.load(Ordering::Relaxed) as usize,
                busy: Duration::from_nanos(nanos.load(Ordering::Relaxed)),
            })
            .collect();
        RunnerReport {
            jobs: self.completed() as usize,
            workers: self.workers,
            wall: self.shared.started.elapsed(),
            busy: per_worker.iter().map(|w| w.busy).sum(),
            per_job: Vec::new(),
            queue_depth: self.queue_depth(),
            per_worker,
        }
    }

    /// Graceful drain: stop admitting, let the workers finish every
    /// already-queued task, then join them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        let mut handles = lock(&self.handles);
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(t) = st.tasks.pop_front() {
                    break Some(t);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.available.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some((task, submitted_us)) = task else {
            return;
        };
        if sp_obs::span::recording() {
            let claimed_us = sp_obs::span::now_us();
            sp_obs::span::record_complete(
                "queue_wait",
                submitted_us,
                claimed_us.saturating_sub(submitted_us),
                vec![("worker", worker.to_string())],
            );
        }
        let t0 = Instant::now();
        let sp = sp_obs::span!("task", worker = worker);
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            sp_obs::log_warn!("runner", "pool task panicked", worker = worker);
        }
        drop(sp);
        shared.worker_busy_nanos[worker]
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.worker_jobs[worker].fetch_add(1, Ordering::Relaxed);
        shared.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn executes_submitted_tasks() {
        let pool = WorkerPool::new(2, 32);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i * i).unwrap()))
                .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.submitted(), 10);
    }

    #[test]
    fn full_queue_rejects_with_busy_instead_of_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        // Occupy the single worker until the gate opens.
        pool.try_submit(Box::new(move || {
            ready_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        }))
        .unwrap();
        ready_rx.recv().unwrap(); // worker is now inside the task
        pool.try_submit(Box::new(|| {})).unwrap(); // fills the queue
        let busy = pool.try_submit(Box::new(|| {}));
        assert_eq!(busy, Err(SubmitError::Busy));
        assert_eq!(pool.rejected(), 1);
        assert_eq!(pool.queue_depth(), 1);
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(pool.completed(), 2, "queued task drained on shutdown");
    }

    #[test]
    fn shutdown_drains_queued_work_and_refuses_new() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        let refused = pool.try_submit(Box::new(|| {}));
        assert_eq!(refused, Err(SubmitError::ShuttingDown));
        pool.shutdown(); // idempotent
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("request exploded")))
            .unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_submit(Box::new(move || tx.send(7u32).unwrap()))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), 7, "worker survived the panic");
        assert_eq!(pool.panicked(), 1);
    }

    #[test]
    fn report_reconciles_with_counters() {
        let pool = WorkerPool::new(3, 16);
        let (tx, rx) = mpsc::channel();
        for _ in 0..9 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(()).unwrap()))
                .unwrap();
        }
        drop(tx);
        for _ in rx.iter() {}
        pool.shutdown();
        let rep = pool.report();
        assert_eq!(rep.jobs, 9);
        assert_eq!(rep.workers, 3);
        assert_eq!(rep.per_worker.len(), 3);
        assert_eq!(rep.queue_depth, 0);
        assert_eq!(rep.per_worker.iter().map(|w| w.jobs).sum::<usize>(), 9);
        assert!(rep.per_job.is_empty(), "pools keep no per-task history");
    }

    #[test]
    fn zero_workers_resolves_to_at_least_one() {
        let pool = WorkerPool::new(0, 4);
        assert!(pool.workers() >= 1);
        assert_eq!(pool.capacity(), 4);
    }
}
