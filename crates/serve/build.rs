//! Bakes the checkout's `git describe` into the binary for the
//! `sp_build_info` metric. Falls back to "unknown" outside a git
//! checkout (e.g. a source tarball) so builds never fail on it.

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=SP_GIT_DESCRIBE={describe}");
    // Re-run when HEAD moves so the label tracks the checkout.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
