//! Sharded LRU result cache.
//!
//! Keys are canonical request strings ([`crate::protocol::Request::cache_key`]),
//! values the encoded `result` JSON they produced. The map is split into
//! shards by key hash so concurrent connection handlers rarely contend
//! on one lock; each shard evicts its least-recently-used entry when
//! full (a linear min-scan — shards are small and bounded, so the scan
//! is a few hundred loads at worst, far below one simulation).
//!
//! Uses the poison-ignoring [`sp_native::sync::Mutex`] — a panicking
//! reader cannot break a shard's invariants (plain maps and counters).

use sp_native::sync::Mutex;
use std::collections::HashMap;

/// FNV-1a 64-bit — the workspace's deterministic, dependency-free hash.
/// Also used by `spt loadgen` to digest payloads.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    key: String,
    value: String,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded, sharded LRU map from canonical request key to encoded
/// result payload.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ResultCache {
    /// A cache holding about `capacity` entries across `shards` shards
    /// (both floored at 1; per-shard capacity rounds up).
    pub fn new(capacity: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
        }
    }

    /// Total entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let hash = fnv1a64(key.as_bytes());
        let mut shard = self.shard_for(hash).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&hash) {
            // A 64-bit hash collision maps two keys to one slot; verify
            // the full key so a collision is a miss, never a wrong answer.
            Some(e) if e.key == key => {
                e.last_used = tick;
                Some(e.value.clone())
            }
            _ => None,
        }
    }

    /// Insert (or refresh) `key -> value`, evicting the shard's
    /// least-recently-used entry if it is full.
    pub fn put(&self, key: &str, value: String) {
        let hash = fnv1a64(key.as_bytes());
        let mut shard = self.shard_for(hash).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&hash) {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h);
            if let Some(h) = oldest {
                shard.entries.remove(&h);
            }
        }
        shard.entries.insert(
            hash,
            Entry {
                key: key.to_string(),
                value,
                last_used: tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_put_returns_the_value() {
        let c = ResultCache::new(8, 2);
        assert!(c.get("k").is_none());
        c.put("k", "v".into());
        assert_eq!(c.get("k").as_deref(), Some("v"));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard, capacity 2: insert a, b; touch a; insert c -> b evicted.
        let c = ResultCache::new(2, 1);
        c.put("a", "1".into());
        c.put("b", "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1")); // refresh a
        c.put("c", "3".into());
        assert_eq!(c.get("b"), None, "LRU entry evicted");
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_of_existing_key_does_not_evict() {
        let c = ResultCache::new(2, 1);
        c.put("a", "1".into());
        c.put("b", "2".into());
        c.put("a", "1b".into()); // overwrite, not a growth
        assert_eq!(c.get("a").as_deref(), Some("1b"));
        assert_eq!(c.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn sharding_spreads_keys_and_respects_total_capacity() {
        let c = ResultCache::new(64, 8);
        assert_eq!(c.capacity(), 64);
        for i in 0..200 {
            c.put(&format!("key-{i}"), format!("v{i}"));
        }
        assert!(c.len() <= c.capacity());
        assert!(c.len() > 8, "more than one shard in use");
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
