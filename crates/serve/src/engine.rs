//! Request execution: turn a parsed [`Command`] into the encoded
//! `result` payload the daemon caches and returns.
//!
//! The engine is shared by every pool worker. Workload traces are
//! memoized per `(benchmark, scale)` — trace synthesis is deterministic,
//! so regenerating one per request would only burn time; the handful of
//! distinct traces is far smaller than the result cache. Compiled traces
//! (the per-geometry address projections sweeps replay) are memoized one
//! level further, per `(benchmark, scale, trace digest, geometry)`, so
//! repeated requests against one cache configuration pay for projection
//! exactly once.

use crate::json::Json;
use crate::protocol::{scale_name, Command, SimSpec};
use sp_bench::{kernel_row, Scale};
use sp_cachesim::{EpochSeries, EventSummary, PfClass, PollutionCase, DEFAULT_EPOCH_LEN};
use sp_core::{
    compile_trace, recommend_distance, sweep_compiled_batched_jobs_with,
    sweep_epochs_compiled_batched_jobs_with, sweep_events_compiled_batched_jobs_with, Sweep,
    SweepEpochs, SweepEvents,
};
use sp_native::sync::Mutex;
use sp_trace::{CompiledTrace, HotLoopTrace, TraceGeometry};
use sp_workloads::{KernelKind, WorkloadBuilder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_index(k: KernelKind) -> u8 {
    KernelKind::ALL
        .iter()
        .position(|&a| a == k)
        .expect("ALL holds every kind") as u8
}

fn scale_index(s: Scale) -> u8 {
    match s {
        Scale::Test => 0,
        Scale::Scaled => 1,
    }
}

/// Aggregate prefetch-lifecycle counters folded over every eventful run
/// the daemon has executed — the source behind the `sp_events_*` series
/// of the Prometheus exposition. Cache hits replay a stored payload
/// without re-simulating, so they do not re-record here: the totals
/// count simulation work actually performed, not requests answered.
#[derive(Debug, Default)]
pub struct EventTotals {
    /// Eventful runs folded in (baseline plus one per sweep point).
    pub runs: AtomicU64,
    /// Prefetches issued, indexed by [`PfClass::index`].
    pub issued: [AtomicU64; 5],
    /// Prefetch L2 fills, by class.
    pub filled: [AtomicU64; 5],
    /// Prefetched blocks first used by the main thread, by class.
    pub first_uses: [AtomicU64; 5],
    /// Prefetched blocks evicted before any use, by class.
    pub evicted_unused: [AtomicU64; 5],
    /// Pollution evictions, indexed by [`PollutionCase::index`].
    pub pollution: [AtomicU64; 3],
    /// First uses whose fill had not completed when the demand arrived.
    pub late: AtomicU64,
    /// First uses within the early-threshold window of their fill.
    pub on_time: AtomicU64,
    /// First uses that idled in the cache past the early threshold.
    pub early: AtomicU64,
}

impl EventTotals {
    /// Fold one run's event summary into the totals.
    pub fn record(&self, s: &EventSummary) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        for i in 0..PfClass::ALL.len() {
            self.issued[i].fetch_add(s.issued[i], Ordering::Relaxed);
            self.filled[i].fetch_add(s.filled[i], Ordering::Relaxed);
            self.first_uses[i].fetch_add(s.first_uses[i], Ordering::Relaxed);
            self.evicted_unused[i].fetch_add(s.evicted_unused[i], Ordering::Relaxed);
        }
        for i in 0..PollutionCase::ALL.len() {
            self.pollution[i].fetch_add(s.pollution[i], Ordering::Relaxed);
        }
        self.late.fetch_add(s.late, Ordering::Relaxed);
        self.on_time.fetch_add(s.on_time, Ordering::Relaxed);
        self.early.fetch_add(s.early, Ordering::Relaxed);
    }
}

/// Aggregate epoch-telemetry counters folded over every epoch-recorded
/// run — the source behind the `sp_epoch_*` families of the Prometheus
/// exposition. Epoch requests bypass the result cache, so every one of
/// them records here.
#[derive(Debug, Default)]
pub struct EpochTotals {
    /// Epoch-recorded runs folded in (baseline plus one per point).
    pub runs: AtomicU64,
    /// Epoch windows recorded across those runs.
    pub windows: AtomicU64,
    /// Main-thread references covered by those windows.
    pub refs: AtomicU64,
    /// Pollution evictions, indexed by [`PollutionCase::index`].
    pub pollution: [AtomicU64; 3],
    /// First uses whose fill had not completed when the demand arrived.
    pub late: AtomicU64,
    /// First uses within the early-threshold window of their fill.
    pub on_time: AtomicU64,
    /// First uses that idled in the cache past the early threshold.
    pub early: AtomicU64,
}

impl EpochTotals {
    /// Fold one run's epoch series into the totals.
    pub fn record(&self, s: &EpochSeries) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.windows.fetch_add(s.len() as u64, Ordering::Relaxed);
        let t = s.totals();
        self.refs.fetch_add(t.refs, Ordering::Relaxed);
        for i in 0..PollutionCase::ALL.len() {
            self.pollution[i].fetch_add(t.pollution[i], Ordering::Relaxed);
        }
        self.late.fetch_add(t.late, Ordering::Relaxed);
        self.on_time.fetch_add(t.on_time, Ordering::Relaxed);
        self.early.fetch_add(t.early, Ordering::Relaxed);
    }
}

/// The daemon's simulation executor: a trace memo plus the encoding of
/// each result kind. Stateless apart from the memo and the event
/// totals, so any number of pool workers can execute through one shared
/// instance.
#[derive(Default)]
pub struct SimEngine {
    traces: Mutex<HashMap<(u8, u8), Arc<HotLoopTrace>>>,
    compiled: Mutex<HashMap<(u64, TraceGeometry), Arc<CompiledTrace>>>,
    events: EventTotals,
    epochs: EpochTotals,
}

impl SimEngine {
    /// A fresh engine with an empty trace memo.
    pub fn new() -> SimEngine {
        SimEngine::default()
    }

    /// The aggregate event counters (for the Prometheus exposition).
    pub fn event_totals(&self) -> &EventTotals {
        &self.events
    }

    /// The aggregate epoch counters (for the Prometheus exposition).
    pub fn epoch_totals(&self) -> &EpochTotals {
        &self.epochs
    }

    fn trace(&self, bench: KernelKind, scale: Scale) -> Arc<HotLoopTrace> {
        let key = (bench_index(bench), scale_index(scale));
        if let Some(t) = self.traces.lock().get(&key) {
            return Arc::clone(t);
        }
        // Synthesize outside the lock — scaled traces take a while, and
        // a second thread racing to the same key just recomputes the
        // identical (deterministic) trace.
        let _sp = sp_obs::span!("load", bench = bench.name(), scale = format!("{scale:?}"));
        let t = Arc::new(WorkloadBuilder::new(bench).tier(scale.tier()).trace());
        self.traces
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&t))
            .clone()
    }

    /// The compiled form of `trace` for `cfg`'s geometry, memoized by
    /// `(trace digest, geometry)` — content-addressed, so two scales (or
    /// future recorded traces) never collide.
    fn compiled(
        &self,
        trace: &Arc<HotLoopTrace>,
        cfg: &sp_cachesim::CacheConfig,
    ) -> Arc<CompiledTrace> {
        let key = (sp_trace::trace_digest(trace), cfg.trace_geometry());
        if let Some(ct) = self.compiled.lock().get(&key) {
            return Arc::clone(ct);
        }
        // Compile outside the lock, same rationale as `trace`.
        let ct = Arc::new(compile_trace(trace, cfg));
        self.compiled
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&ct))
            .clone()
    }

    /// Execute one command, returning the encoded `result` JSON.
    ///
    /// `ping`/`stats`/`shutdown` never reach the engine — the server
    /// answers them inline — so they are an error here.
    pub fn execute(&self, cmd: &Command) -> Result<String, String> {
        match cmd {
            Command::Sweep { spec, distances } => Ok(self.run_sweep(spec, distances)),
            Command::Point { spec, distance } => Ok(self.run_sweep(spec, &[*distance])),
            Command::Affinity {
                bench,
                scale,
                cache,
            } => Ok(affinity_json(&kernel_row(&cache.config, *scale, *bench)).encode()),
            Command::Burn { ms } => {
                // Occupy this worker for a fixed wall-clock interval —
                // the load generator's tool for exercising backpressure.
                let start = Instant::now();
                while start.elapsed() < Duration::from_millis(*ms) {
                    std::hint::spin_loop();
                }
                Ok(format!("{{\"burned_ms\":{ms}}}"))
            }
            Command::Ping | Command::Stats | Command::Metrics | Command::Shutdown => {
                Err("command is handled by the server, not the engine".into())
            }
        }
    }

    fn run_sweep(&self, spec: &SimSpec, distances: &[u32]) -> String {
        let trace = self.trace(spec.bench, spec.scale);
        let compiled = self.compiled(&trace, &spec.cache.config);
        let bound = recommend_distance(&trace, &spec.cache.config).max_distance;
        // Requests parallelize across the pool, not within a job
        // (jobs = 1); `spec.lanes` batches grid points per trace pass
        // inside this worker. Results are bit-identical at every lane
        // width, which is why `lanes` stays out of the cache key.
        if spec.epochs {
            let (sweep, epochs, _report) = sweep_epochs_compiled_batched_jobs_with(
                &compiled,
                spec.cache.config,
                spec.rp,
                distances,
                spec.opts,
                DEFAULT_EPOCH_LEN,
                1,
                spec.lanes,
            )
            .expect("compiled for this request's geometry");
            self.epochs.record(&epochs.baseline);
            for point in &epochs.points {
                self.epochs.record(point);
            }
            let _sp = sp_obs::span!("serialize");
            return sweep_json(spec, bound, &sweep, None, Some(&epochs)).encode();
        }
        if spec.events {
            let (sweep, events, _report) = sweep_events_compiled_batched_jobs_with(
                &compiled,
                spec.cache.config,
                spec.rp,
                distances,
                spec.opts,
                1,
                spec.lanes,
            )
            .expect("compiled for this request's geometry");
            self.events.record(&events.baseline);
            for point in &events.points {
                self.events.record(point);
            }
            let _sp = sp_obs::span!("serialize");
            return sweep_json(spec, bound, &sweep, Some(&events), None).encode();
        }
        let (sweep, _report) = sweep_compiled_batched_jobs_with(
            &compiled,
            spec.cache.config,
            spec.rp,
            distances,
            spec.opts,
            1,
            spec.lanes,
        )
        .expect("compiled for this request's geometry");
        let _sp = sp_obs::span!("serialize");
        sweep_json(spec, bound, &sweep, None, None).encode()
    }
}

/// Encode a sweep. Point field names mirror [`sp_bench::SWEEP_HEADER`]
/// so CSV consumers and protocol consumers read the same vocabulary.
/// With `events`, each point additionally carries its lifecycle /
/// timeliness / pollution-case summary; with `epochs`, a compact
/// columnar epoch series (both `points` vectors are index-aligned with
/// `Sweep::points`; the parser guarantees at most one is present).
fn sweep_json(
    spec: &SimSpec,
    bound: Option<u32>,
    sweep: &Sweep,
    events: Option<&SweepEvents>,
    epochs: Option<&SweepEpochs>,
) -> Json {
    let points = sweep
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut point = Json::obj()
                .push("distance", Json::num(p.distance))
                .push("runtime_norm", Json::num(p.runtime_norm))
                .push("mem_accesses_norm", Json::num(p.memory_accesses_norm))
                .push("hot_misses_norm", Json::num(p.hot_misses_norm))
                .push("d_totally_hit_pct", Json::num(p.behavior.totally_hit_pct))
                .push("d_totally_miss_pct", Json::num(p.behavior.totally_miss_pct))
                .push(
                    "d_partially_hit_pct",
                    Json::num(p.behavior.partially_hit_pct),
                )
                .push(
                    "pollution_events",
                    Json::num(p.pollution.stats.total() as f64),
                )
                .push(
                    "dead_prefetch_rate",
                    Json::num(p.pollution.dead_prefetch_rate),
                );
            if let Some(ev) = events {
                point = point.push("events", event_summary_json(&ev.points[i]));
            }
            if let Some(ep) = epochs {
                point = point.push("epochs", epoch_series_json(&ep.points[i]));
            }
            point
        })
        .collect();
    let mut out = Json::obj()
        .push("bench", Json::str(spec.bench.name()))
        .push("scale", Json::str(scale_name(spec.scale)))
        .push("rp", Json::num(spec.rp))
        .push("baseline_runtime", Json::num(sweep.baseline.runtime as f64))
        .push("distance_bound", opt_u32(bound))
        .push("best_distance", opt_u32(sweep.best_distance()));
    if let Some(ev) = events {
        out = out.push("baseline_events", event_summary_json(&ev.baseline));
    }
    if let Some(ep) = epochs {
        out = out.push("baseline_epochs", epoch_series_json(&ep.baseline));
    }
    out.push("points", Json::Arr(points))
}

/// Encode one run's epoch series in columnar form — one array per
/// metric, index-aligned by window — which keeps a long series compact
/// on the wire (no per-window key repetition) and trivially plottable.
fn epoch_series_json(s: &EpochSeries) -> Json {
    let col = |f: &dyn Fn(&sp_cachesim::EpochWindow) -> u64| {
        Json::Arr(s.epochs.iter().map(|w| Json::num(f(w) as f64)).collect())
    };
    Json::obj()
        .push("epoch_len", Json::num(s.epoch_len as f64))
        .push("windows", Json::num(s.len() as f64))
        .push("refs", col(&|w| w.refs))
        .push("misses", col(&|w| w.main[3]))
        .push("partial_hits", col(&|w| w.main[2]))
        .push("issued", col(&|w| w.issued.iter().sum()))
        .push("first_uses", col(&|w| w.first_uses.iter().sum()))
        .push("pollution", col(&|w| w.total_pollution()))
        .push("late", col(&|w| w.late))
        .push("on_time", col(&|w| w.on_time))
        .push("early", col(&|w| w.early))
        .push("l2_fills", col(&|w| w.l2_fills.iter().sum()))
        .push("mshr_peak", col(&|w| w.mshr_peak))
}

/// Encode one run's event summary: lifecycle counts by prefetch class,
/// pollution evictions by case, and the first-use timeliness split.
fn event_summary_json(s: &EventSummary) -> Json {
    let by_class = |vals: &[u64; 5]| {
        let mut o = Json::obj();
        for c in PfClass::ALL {
            o = o.push(c.name(), Json::num(vals[c.index()] as f64));
        }
        o
    };
    let mut pollution = Json::obj();
    for case in PollutionCase::ALL {
        pollution = pollution.push(case.name(), Json::num(s.pollution[case.index()] as f64));
    }
    Json::obj()
        .push("issued", by_class(&s.issued))
        .push("filled", by_class(&s.filled))
        .push("first_uses", by_class(&s.first_uses))
        .push("evicted_unused", by_class(&s.evicted_unused))
        .push("pollution", pollution)
        .push(
            "timeliness",
            Json::obj()
                .push("late", Json::num(s.late as f64))
                .push("on_time", Json::num(s.on_time as f64))
                .push("early", Json::num(s.early as f64)),
        )
        .push("helper_accuracy", Json::num(s.accuracy(PfClass::Helper)))
}

fn opt_u32(v: Option<u32>) -> Json {
    v.map_or(Json::Null, Json::num)
}

fn opt_range(r: Option<(u32, u32)>) -> Json {
    r.map_or(Json::Null, |(lo, hi)| {
        Json::Arr(vec![Json::num(lo), Json::num(hi)])
    })
}

/// Encode a Table 2 profile row (field names match the struct).
fn affinity_json(row: &sp_bench::Table2Row) -> Json {
    Json::obj()
        .push("benchmark", Json::str(row.benchmark))
        .push("input", Json::str(row.input.clone()))
        .push("iterations", Json::num(row.iterations as f64))
        .push("sa_range", opt_range(row.sa_range))
        .push("sa_sampled", opt_range(row.sa_sampled))
        .push("distance_bound", opt_u32(row.distance_bound))
        .push("calr", Json::num(row.calr))
        .push("rp", Json::num(row.rp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn command(line: &str) -> Command {
        Request::parse(line).unwrap().cmd
    }

    #[test]
    fn point_results_are_deterministic_and_reuse_the_trace_memo() {
        let engine = SimEngine::new();
        let cmd = command("{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":8}");
        let first = engine.execute(&cmd).unwrap();
        let second = engine.execute(&cmd).unwrap();
        assert_eq!(first, second, "same command, byte-identical payloads");
        assert_eq!(engine.traces.lock().len(), 1, "trace memoized once");
        assert_eq!(
            engine.compiled.lock().len(),
            1,
            "compiled trace memoized once per (digest, geometry)"
        );
        let v = Json::parse(&first).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("EM3D"));
        let points = v.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("distance").and_then(Json::as_u64),
            Some(8),
            "payload {first}"
        );
        assert!(
            points[0]
                .get("runtime_norm")
                .and_then(Json::as_f64)
                .is_some(),
            "payload {first}"
        );
    }

    #[test]
    fn eventful_point_carries_summaries_and_feeds_the_totals() {
        let engine = SimEngine::new();
        let plain = engine
            .execute(&command(
                "{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":8}",
            ))
            .unwrap();
        assert_eq!(engine.events.runs.load(Ordering::Relaxed), 0);
        let eventful = engine
            .execute(&command(
                "{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":8,\"events\":true}",
            ))
            .unwrap();
        // Baseline + one point folded into the daemon totals.
        assert_eq!(engine.events.runs.load(Ordering::Relaxed), 2);
        assert!(
            engine.events.issued[0].load(Ordering::Relaxed) > 0,
            "helper prefetches must be issued"
        );
        let v = Json::parse(&eventful).unwrap();
        assert!(v.get("baseline_events").is_some(), "payload {eventful}");
        let points = v.get("points").and_then(Json::as_arr).unwrap();
        let ev = points[0].get("events").expect("per-point events");
        let issued = ev
            .get("issued")
            .and_then(|i| i.get("helper"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(issued > 0, "payload {eventful}");
        assert!(ev.get("timeliness").is_some(), "payload {eventful}");
        assert!(ev.get("pollution").is_some(), "payload {eventful}");
        // The plain payload stays event-free, and the headline numbers
        // agree between the two paths (the sink must not perturb them).
        let pv = Json::parse(&plain).unwrap();
        assert!(pv.get("baseline_events").is_none());
        let pp = pv.get("points").and_then(Json::as_arr).unwrap();
        assert!(pp[0].get("events").is_none());
        assert_eq!(
            pp[0].get("runtime_norm").and_then(Json::as_f64),
            points[0].get("runtime_norm").and_then(Json::as_f64),
        );
        assert_eq!(
            pp[0].get("pollution_events").and_then(Json::as_u64),
            points[0].get("pollution_events").and_then(Json::as_u64),
        );
    }

    #[test]
    fn epoch_point_carries_a_columnar_series_and_feeds_the_totals() {
        let engine = SimEngine::new();
        let plain = engine
            .execute(&command(
                "{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":8}",
            ))
            .unwrap();
        assert_eq!(engine.epochs.runs.load(Ordering::Relaxed), 0);
        let recorded = engine
            .execute(&command(
                "{\"type\":\"point\",\"bench\":\"em3d\",\"distance\":8,\"epochs\":true}",
            ))
            .unwrap();
        // Baseline + one point folded into the daemon totals.
        assert_eq!(engine.epochs.runs.load(Ordering::Relaxed), 2);
        assert!(engine.epochs.windows.load(Ordering::Relaxed) >= 2);
        assert!(engine.epochs.refs.load(Ordering::Relaxed) > 0);
        let v = Json::parse(&recorded).unwrap();
        let base = v.get("baseline_epochs").expect("baseline series");
        assert_eq!(
            base.get("epoch_len").and_then(Json::as_u64),
            Some(DEFAULT_EPOCH_LEN)
        );
        let points = v.get("points").and_then(Json::as_arr).unwrap();
        let ep = points[0].get("epochs").expect("per-point series");
        let windows = ep.get("windows").and_then(Json::as_u64).unwrap();
        assert!(windows >= 1);
        // Columnar: every metric array is index-aligned by window.
        for key in [
            "refs",
            "misses",
            "partial_hits",
            "issued",
            "first_uses",
            "pollution",
            "late",
            "on_time",
            "early",
            "l2_fills",
            "mshr_peak",
        ] {
            let col = ep.get(key).and_then(Json::as_arr).unwrap_or_else(|| {
                panic!("missing column {key}: {recorded}");
            });
            assert_eq!(col.len() as u64, windows, "ragged column {key}");
        }
        // The headline numbers agree with the unrecorded path (the
        // recorder must not perturb the simulation).
        let pv = Json::parse(&plain).unwrap();
        assert!(pv.get("baseline_epochs").is_none());
        let pp = pv.get("points").and_then(Json::as_arr).unwrap();
        assert!(pp[0].get("epochs").is_none());
        assert_eq!(
            pp[0].get("runtime_norm").and_then(Json::as_f64),
            points[0].get("runtime_norm").and_then(Json::as_f64),
        );
        assert_eq!(
            pp[0].get("pollution_events").and_then(Json::as_u64),
            points[0].get("pollution_events").and_then(Json::as_u64),
        );
    }

    #[test]
    fn affinity_payload_carries_the_table2_fields() {
        let engine = SimEngine::new();
        let cmd = command("{\"type\":\"affinity\",\"bench\":\"em3d\",\"scale\":\"test\"}");
        let payload = engine.execute(&cmd).unwrap();
        let v = Json::parse(&payload).unwrap();
        assert_eq!(v.get("benchmark").and_then(Json::as_str), Some("EM3D"));
        assert!(v.get("iterations").and_then(Json::as_u64).unwrap() > 0);
        assert!(v.get("rp").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn burn_reports_its_duration_and_inline_commands_are_rejected() {
        let engine = SimEngine::new();
        let payload = engine
            .execute(&command("{\"type\":\"burn\",\"ms\":1}"))
            .unwrap();
        assert_eq!(payload, "{\"burned_ms\":1}");
        for inline in [
            "{\"type\":\"ping\"}",
            "{\"type\":\"stats\"}",
            "{\"type\":\"metrics\"}",
            "{\"type\":\"shutdown\"}",
        ] {
            assert!(engine.execute(&command(inline)).is_err());
        }
    }
}
