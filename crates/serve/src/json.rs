//! Minimal hand-rolled JSON — exactly what the sp-serve wire protocol
//! needs, nothing more. The workspace builds offline with no external
//! crates (DESIGN §6), so this is ~300 lines of recursive-descent
//! parser plus a deterministic encoder instead of a serde dependency.
//!
//! Determinism matters here: cached results are compared and digested
//! byte-for-byte, so the encoder is stable — object keys keep insertion
//! order, integers in the `f64`-exact range print without a decimal
//! point, and other numbers use Rust's shortest-roundtrip `Display`.

/// A JSON value. Objects preserve insertion order (no hashing), which
/// keeps encoding deterministic and diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for builder-style construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (builder style).
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn push(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode to compact JSON text (no whitespace). Deterministic for a
    /// given value: stable key order, stable number formatting.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document; trailing content (other than whitespace)
    /// is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; simulations never produce them
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs: combine \uD8xx\uDCxx into one char.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let lo_hex = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or("truncated surrogate pair")?;
                            let lo_hex =
                                std::str::from_utf8(lo_hex).map_err(|_| "bad surrogate")?;
                            let lo =
                                u32::from_str_radix(lo_hex, 16).map_err(|_| "bad surrogate")?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            cp
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "0.5",
            "1.25e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(Json::parse(&enc).unwrap(), v, "reparse of {text}");
        }
    }

    #[test]
    fn encoding_is_canonical_and_stable() {
        let v = Json::obj()
            .push("b", Json::num(2))
            .push("a", Json::Arr(vec![Json::num(0.5), Json::str("x")]));
        // Insertion order preserved, integers without decimal point.
        assert_eq!(v.encode(), "{\"b\":2,\"a\":[0.5,\"x\"]}");
        // Encode → parse → encode is a fixed point (digest stability).
        let reparsed = Json::parse(&v.encode()).unwrap();
        assert_eq!(reparsed.encode(), v.encode());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}é€".to_string());
        let enc = v.encode();
        assert_eq!(Json::parse(&enc).unwrap(), v);
        // Parser accepts \u escapes including surrogate pairs.
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap(),
            Json::Str("é 😀".to_string())
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse("{\"type\":\"sweep\",\"ds\":[2,4],\"rp\":0.5,\"deep\":{\"ok\":true}}")
            .unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("sweep"));
        assert_eq!(v.get("rp").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            v.get("ds").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("ok"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":1} extra",
            "\"\\u12\"",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn numbers_encode_deterministically() {
        assert_eq!(Json::Num(5.0).encode(), "5");
        assert_eq!(Json::Num(-2.0).encode(), "-2");
        assert_eq!(Json::Num(0.5).encode(), "0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        let big = 9_007_199_254_740_992.0f64;
        assert_eq!(Json::Num(big).encode(), "9007199254740992");
    }
}
