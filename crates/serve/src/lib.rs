//! # sp-serve
//!
//! A std-only simulation service daemon: long-running TCP server that
//! accepts simulation requests — distance sweeps, single-point runs,
//! Set-Affinity/Table-2 profiles — as newline-delimited JSON, answers
//! repeats from a sharded LRU result cache, and schedules misses onto a
//! bounded [`sp_runner::WorkerPool`] with explicit backpressure (a full
//! admission queue answers `busy` instead of stalling the client).
//!
//! The pieces, bottom-up:
//!
//! * [`json`] — hand-rolled deterministic JSON (the workspace builds
//!   offline with zero external crates).
//! * [`protocol`] — request parsing, canonical cache keys, response
//!   envelopes. Keys are built from *resolved* values, so every spelling
//!   of the same request shares one cache entry.
//! * [`cache`] — the sharded LRU result cache.
//! * [`metrics`] — request/cache/queue counters and a fixed-bucket
//!   latency histogram, served by the `stats` request.
//! * [`prom`] — the same counters (plus aggregate prefetch-event
//!   totals) rendered as Prometheus text exposition, served by the
//!   `metrics` request.
//! * [`engine`] — executes commands against the sp-core simulation
//!   stack, memoizing workload traces.
//! * [`server`] — the accept loop, per-connection handlers, deadlines,
//!   and graceful drain (shutdown request, SIGINT, or SIGTERM).
//!
//! The `spt serve` and `spt loadgen` subcommands (crates/cli) are the
//! daemon's front ends; `tests/serve_smoke.rs` drives a real server over
//! loopback.

pub mod cache;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod protocol;
pub mod server;

pub use cache::{fnv1a64, ResultCache};
pub use engine::{EpochTotals, EventTotals, SimEngine};
pub use json::Json;
pub use metrics::{Metrics, StageTimes, STAGES};
pub use prom::{
    render as render_prometheus, render_loadgen, render_stage_seconds, LoadgenSnapshot,
    PromSnapshot,
};
pub use protocol::{error_response, ok_response, Command, Request, SimSpec};
pub use server::{Server, ServerConfig};
