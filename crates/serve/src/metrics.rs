//! The daemon's observability surface: request counters, cache hit
//! counters, and the end-to-end latency histogram — all lock-free
//! atomics, safe to read while the server is under load.
//!
//! The latency and per-stage distributions record into the shared
//! [`sp_obs::LogLinearHist`] (the workspace's single percentile
//! implementation); this module only owns the counters and the JSON
//! shapes the `stats` reply renders from.

use crate::json::Json;
use sp_obs::LogLinearHist;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request kinds the per-type counters distinguish (wire `type` names).
pub const KINDS: [&str; 8] = [
    "sweep", "point", "affinity", "burn", "stats", "metrics", "ping", "shutdown",
];

/// Render a histogram as a JSON array of `{le_us, count}` rows — one
/// per **occupied** bucket (ascending, non-cumulative), so the row
/// count tracks the data's spread rather than the bucket table size.
/// A bucket whose bound is `u64::MAX` renders as the string `"inf"`,
/// matching the fixed-bucket overflow row this shape replaced.
pub fn hist_rows_json(h: &LogLinearHist) -> Json {
    Json::Arr(
        h.nonzero_buckets()
            .into_iter()
            .map(|(bound, count)| {
                let le = if bound == u64::MAX {
                    Json::str("inf")
                } else {
                    Json::num(bound as f64)
                };
                Json::obj()
                    .push("le_us", le)
                    .push("count", Json::num(count as f64))
            })
            .collect(),
    )
}

/// Render a histogram's headline summary as a JSON object:
/// `{count, sum_us, min_us, max_us, p50_us, p90_us, p99_us, p999_us}`.
/// This is the `latency` block `stats` serves alongside the bucket rows.
pub fn hist_summary_json(h: &LogLinearHist) -> Json {
    let p = h.percentiles();
    Json::obj()
        .push("count", Json::num(h.count() as f64))
        .push("sum_us", Json::num(h.sum() as f64))
        .push("min_us", Json::num(h.min() as f64))
        .push("max_us", Json::num(h.max() as f64))
        .push("p50_us", Json::num(p.p50 as f64))
        .push("p90_us", Json::num(p.p90 as f64))
        .push("p99_us", Json::num(p.p99 as f64))
        .push("p999_us", Json::num(p.p999 as f64))
}

/// Pipeline stages folded into the `sp_stage_seconds` histograms — the
/// span names the request path emits (see `sp-obs` and DESIGN.md §9).
/// Spans with other names (e.g. `request`, `sweep`, `point`) are
/// covered by the latency histogram or are grouping-only and are not
/// folded.
pub const STAGES: [&str; 8] = [
    "load",
    "compile",
    "simulate",
    "fold",
    "serialize",
    "cache_lookup",
    "queue_wait",
    "execute",
];

/// Per-stage wall-time histograms, one [`LogLinearHist`] per [`STAGES`]
/// entry. Recorded in microseconds (the sp-obs span clock); the
/// Prometheus renderer converts bounds to seconds for the
/// `sp_stage_seconds` family.
#[derive(Debug)]
pub struct StageTimes {
    hists: [LogLinearHist; STAGES.len()],
}

impl Default for StageTimes {
    fn default() -> StageTimes {
        StageTimes {
            hists: std::array::from_fn(|_| LogLinearHist::default()),
        }
    }
}

impl StageTimes {
    /// Fold one span duration into its stage. Unknown stage names are
    /// ignored — the span stream also carries grouping spans.
    pub fn record_us(&self, stage: &str, micros: u64) {
        if let Some(idx) = STAGES.iter().position(|&s| s == stage) {
            self.hists[idx].record(micros);
        }
    }

    /// The histogram for `stage`, when it is a [`STAGES`] member.
    pub fn get(&self, stage: &str) -> Option<&LogLinearHist> {
        STAGES
            .iter()
            .position(|&s| s == stage)
            .map(|idx| &self.hists[idx])
    }

    /// Iterate `(stage, histogram)` in [`STAGES`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &LogLinearHist)> {
        STAGES.iter().copied().zip(self.hists.iter())
    }
}

/// All daemon counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests received (including malformed ones).
    pub requests: AtomicU64,
    /// Requests by kind, indexed like [`KINDS`].
    pub by_kind: [AtomicU64; KINDS.len()],
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses (cacheable requests only).
    pub cache_misses: AtomicU64,
    /// Requests shed with a `busy` reply (admission queue full).
    pub busy_rejections: AtomicU64,
    /// Requests that hit their deadline before the simulation finished.
    pub timeouts: AtomicU64,
    /// Malformed or failed requests.
    pub errors: AtomicU64,
    /// End-to-end request latency histogram.
    pub latency: LogLinearHist,
}

impl Metrics {
    /// Count one request of `kind` (must be a [`KINDS`] member; unknown
    /// kinds count only toward the total).
    pub fn count_request(&self, kind: &str) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = KINDS.iter().position(|&k| k == kind) {
            self.by_kind[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cache hit ratio over all cacheable lookups so far (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let misses = self.cache_misses.load(Ordering::Relaxed) as f64;
        if hits + misses <= 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Render the request-side counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut kinds = Json::obj();
        for (i, &k) in KINDS.iter().enumerate() {
            kinds = kinds.push(k, Json::num(self.by_kind[i].load(Ordering::Relaxed) as f64));
        }
        Json::obj()
            .push(
                "total",
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            )
            .push("by_kind", kinds)
            .push(
                "busy",
                Json::num(self.busy_rejections.load(Ordering::Relaxed) as f64),
            )
            .push(
                "timeouts",
                Json::num(self.timeouts.load(Ordering::Relaxed) as f64),
            )
            .push(
                "errors",
                Json::num(self.errors.load(Ordering::Relaxed) as f64),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_rows_skip_empty_buckets_and_mark_overflow() {
        let h = LogLinearHist::default();
        h.record(50);
        h.record(50);
        h.record(101);
        h.record(u64::MAX);
        let json = hist_rows_json(&h).encode();
        // Three occupied buckets, not the full 7296-slot table.
        assert_eq!(json.matches("le_us").count(), 3, "got {json}");
        assert!(json.contains("\"le_us\":50,\"count\":2"), "got {json}");
        assert!(json.contains("\"le_us\":101,\"count\":1"), "got {json}");
        assert!(json.contains("\"le_us\":\"inf\",\"count\":1"), "got {json}");
    }

    #[test]
    fn hist_summary_reports_exact_aggregates_and_percentiles() {
        let h = LogLinearHist::default();
        for v in [100u64, 200, 300, 10_000] {
            h.record(v);
        }
        let json = hist_summary_json(&h).encode();
        assert!(json.contains("\"count\":4"), "got {json}");
        assert!(json.contains("\"sum_us\":10600"), "got {json}");
        assert!(json.contains("\"min_us\":100"), "got {json}");
        assert!(json.contains("\"max_us\":10000"), "got {json}");
        // Linear-region values are exact (p = 7 keeps 0..128 exact; 200
        // and 300 sit in the log region but p50 lands on 200's bucket).
        assert!(json.contains("\"p999_us\":"), "got {json}");
    }

    #[test]
    fn stage_times_fold_known_stages_only() {
        let s = StageTimes::default();
        s.record_us("simulate", 1_000);
        s.record_us("simulate", 3_000_000);
        s.record_us("request", 5); // grouping span, not a stage
        let h = s.get("simulate").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 3_001_000);
        assert!(s.get("request").is_none());
        assert_eq!(s.iter().count(), STAGES.len());
        assert!(s.iter().all(|(name, _)| STAGES.contains(&name)));
    }

    #[test]
    fn counters_and_hit_ratio() {
        let m = Metrics::default();
        assert_eq!(m.hit_ratio(), 0.0);
        m.count_request("sweep");
        m.count_request("sweep");
        m.count_request("stats");
        m.count_request("unknown-kind");
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.requests.load(Ordering::Relaxed), 4);
        assert_eq!(m.by_kind[0].load(Ordering::Relaxed), 2);
        assert!((m.hit_ratio() - 0.75).abs() < 1e-12);
        let json = m.to_json().encode();
        assert!(json.contains("\"sweep\":2"), "got {json}");
        assert!(json.contains("\"total\":4"), "got {json}");
    }
}
