//! The daemon's observability surface: request counters, cache hit
//! counters, and a fixed-bucket latency histogram — all lock-free
//! atomics, safe to read while the server is under load.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request kinds the per-type counters distinguish (wire `type` names).
pub const KINDS: [&str; 8] = [
    "sweep", "point", "affinity", "burn", "stats", "metrics", "ping", "shutdown",
];

/// Upper bucket bounds of the latency histogram, in microseconds; one
/// extra overflow bucket catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram (`le`-style cumulative on render).
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
}

impl Histogram {
    /// Record one observation of `micros`.
    pub fn record(&self, micros: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Sum of all recorded observations, microseconds (the Prometheus
    /// `_sum` series).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, `(upper_bound_us, count)`; the final entry's
    /// bound is `u64::MAX` (the overflow bucket).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = LATENCY_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Render as a JSON array of `{le, count}` rows (non-cumulative);
    /// the overflow bucket's bound is the string `"inf"`.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.buckets()
                .into_iter()
                .map(|(bound, count)| {
                    let le = if bound == u64::MAX {
                        Json::str("inf")
                    } else {
                        Json::num(bound as f64)
                    };
                    Json::obj()
                        .push("le_us", le)
                        .push("count", Json::num(count as f64))
                })
                .collect(),
        )
    }
}

/// Pipeline stages folded into the `sp_stage_seconds` histograms — the
/// span names the request path emits (see `sp-obs` and DESIGN.md §9).
/// Spans with other names (e.g. `request`, `sweep`, `point`) are
/// covered by the latency histogram or are grouping-only and are not
/// folded.
pub const STAGES: [&str; 8] = [
    "load",
    "compile",
    "simulate",
    "fold",
    "serialize",
    "cache_lookup",
    "queue_wait",
    "execute",
];

/// Per-stage wall-time histograms, one [`Histogram`] per [`STAGES`]
/// entry. Recorded in microseconds (the sp-obs span clock); the
/// Prometheus renderer converts bounds to seconds for the
/// `sp_stage_seconds` family.
#[derive(Debug, Default)]
pub struct StageTimes {
    hists: [Histogram; STAGES.len()],
}

impl StageTimes {
    /// Fold one span duration into its stage. Unknown stage names are
    /// ignored — the span stream also carries grouping spans.
    pub fn record_us(&self, stage: &str, micros: u64) {
        if let Some(idx) = STAGES.iter().position(|&s| s == stage) {
            self.hists[idx].record(micros);
        }
    }

    /// The histogram for `stage`, when it is a [`STAGES`] member.
    pub fn get(&self, stage: &str) -> Option<&Histogram> {
        STAGES
            .iter()
            .position(|&s| s == stage)
            .map(|idx| &self.hists[idx])
    }

    /// Iterate `(stage, histogram)` in [`STAGES`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        STAGES.iter().copied().zip(self.hists.iter())
    }
}

/// All daemon counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests received (including malformed ones).
    pub requests: AtomicU64,
    /// Requests by kind, indexed like [`KINDS`].
    pub by_kind: [AtomicU64; KINDS.len()],
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses (cacheable requests only).
    pub cache_misses: AtomicU64,
    /// Requests shed with a `busy` reply (admission queue full).
    pub busy_rejections: AtomicU64,
    /// Requests that hit their deadline before the simulation finished.
    pub timeouts: AtomicU64,
    /// Malformed or failed requests.
    pub errors: AtomicU64,
    /// End-to-end request latency histogram.
    pub latency: Histogram,
}

impl Metrics {
    /// Count one request of `kind` (must be a [`KINDS`] member; unknown
    /// kinds count only toward the total).
    pub fn count_request(&self, kind: &str) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = KINDS.iter().position(|&k| k == kind) {
            self.by_kind[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cache hit ratio over all cacheable lookups so far (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let misses = self.cache_misses.load(Ordering::Relaxed) as f64;
        if hits + misses <= 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Render the request-side counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut kinds = Json::obj();
        for (i, &k) in KINDS.iter().enumerate() {
            kinds = kinds.push(k, Json::num(self.by_kind[i].load(Ordering::Relaxed) as f64));
        }
        Json::obj()
            .push(
                "total",
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            )
            .push("by_kind", kinds)
            .push(
                "busy",
                Json::num(self.busy_rejections.load(Ordering::Relaxed) as f64),
            )
            .push(
                "timeouts",
                Json::num(self.timeouts.load(Ordering::Relaxed) as f64),
            )
            .push(
                "errors",
                Json::num(self.errors.load(Ordering::Relaxed) as f64),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::default();
        h.record(50); // <= 100
        h.record(100); // <= 100 (inclusive)
        h.record(101); // <= 250
        h.record(9_999_999); // overflow
        let b = h.buckets();
        assert_eq!(b[0], (100, 2));
        assert_eq!(b[1], (250, 1));
        assert_eq!(b.last().copied(), Some((u64::MAX, 1)));
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum_us(), 50 + 100 + 101 + 9_999_999);
        let json = h.to_json().encode();
        assert!(json.contains("\"le_us\":100"), "got {json}");
        assert!(json.contains("\"le_us\":\"inf\""), "got {json}");
    }

    #[test]
    fn stage_times_fold_known_stages_only() {
        let s = StageTimes::default();
        s.record_us("simulate", 1_000);
        s.record_us("simulate", 3_000_000);
        s.record_us("request", 5); // grouping span, not a stage
        let h = s.get("simulate").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.sum_us(), 3_001_000);
        assert!(s.get("request").is_none());
        assert_eq!(s.iter().count(), STAGES.len());
        assert!(s.iter().all(|(name, _)| STAGES.contains(&name)));
    }

    #[test]
    fn counters_and_hit_ratio() {
        let m = Metrics::default();
        assert_eq!(m.hit_ratio(), 0.0);
        m.count_request("sweep");
        m.count_request("sweep");
        m.count_request("stats");
        m.count_request("unknown-kind");
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.requests.load(Ordering::Relaxed), 4);
        assert_eq!(m.by_kind[0].load(Ordering::Relaxed), 2);
        assert!((m.hit_ratio() - 0.75).abs() < 1e-12);
        let json = m.to_json().encode();
        assert!(json.contains("\"sweep\":2"), "got {json}");
        assert!(json.contains("\"total\":4"), "got {json}");
    }
}
