//! Prometheus text exposition (format version 0.0.4) for the daemon's
//! counters, the request-latency histogram, and the aggregate prefetch
//! event totals — plus the `sp_loadgen_*` families `spt loadgen
//! --prom` writes, rendered here so one name lint covers both bodies.
//!
//! Everything rendered here reads the **same** atomics the JSON `stats`
//! reply reads, and the histogram series are derived from the same
//! [`LogLinearHist::nonzero_buckets`] table `latency_us` renders from —
//! there is no second bucket-bound list to drift out of sync. Latency
//! is exposed in integer microseconds (`_us` metric names) rather than
//! float seconds so the body stays byte-deterministic for a given
//! counter state. Only occupied buckets emit `le` series (the
//! log-linear table has thousands of slots); the `+Inf` bucket always
//! appears, so `histogram_quantile` stays well-formed at zero samples.

use crate::engine::{EpochTotals, EventTotals};
use crate::metrics::{Metrics, StageTimes, KINDS};
use sp_cachesim::{PfClass, PollutionCase};
use sp_obs::LogLinearHist;
use std::fmt::Write;
use std::sync::atomic::Ordering;

/// The `git describe` of the tree this binary was built from (set by
/// the build script; `"unknown"` outside a git checkout).
pub const GIT_DESCRIBE: &str = env!("SP_GIT_DESCRIBE");

/// The crate version baked into `sp_build_info`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// A point-in-time view of everything the exposition covers. The
/// gauge-ish fields (queue depth, cache occupancy, uptime) are sampled
/// by the caller so this module stays free of server plumbing.
pub struct PromSnapshot<'a> {
    /// Request counters and the latency histogram.
    pub metrics: &'a Metrics,
    /// Aggregate event totals from eventful runs.
    pub events: &'a EventTotals,
    /// Aggregate epoch-telemetry totals from epoch-recorded runs.
    pub epochs: &'a EpochTotals,
    /// Daemon uptime, milliseconds.
    pub uptime_ms: u64,
    /// Result-cache entries currently held.
    pub cache_entries: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
    /// Admission-queue depth right now.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Pool workers.
    pub workers: usize,
    /// Jobs the pool has completed.
    pub completed: u64,
    /// Per-stage wall-time histograms folded from sp-obs spans.
    pub stages: &'a StageTimes,
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, "gauge", help);
    let _ = writeln!(out, "{name} {value}");
}

fn gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    header(out, name, "gauge", help);
    let _ = writeln!(out, "{name} {value}");
}

/// One labelled counter family: `name{label="key"} value` per sample.
fn labelled(out: &mut String, name: &str, help: &str, label: &str, samples: &[(&str, u64)]) {
    header(out, name, "counter", help);
    for (key, value) in samples {
        let _ = writeln!(out, "{name}{{{label}=\"{key}\"}} {value}");
    }
}

/// The `sp_build_info` identity gauge: constant value 1, the useful
/// content in the `version`/`git` labels (the Prometheus `*_info`
/// convention).
fn build_info(out: &mut String) {
    header(
        out,
        "sp_build_info",
        "gauge",
        "Build identity; value is constant 1, see the version/git labels.",
    );
    let _ = writeln!(
        out,
        "sp_build_info{{version=\"{VERSION}\",git=\"{GIT_DESCRIBE}\"}} 1"
    );
}

/// Render a histogram in exposition format: cumulative `_bucket{le=..}`
/// series over the **occupied** buckets (bounds in microseconds, the
/// table's final slot and the always-present trailing series as
/// `+Inf`), then `_sum` and `_count`. The series are folded from the
/// same [`LogLinearHist::nonzero_buckets`] table the JSON surface
/// renders, so the two can't disagree on bounds or counts.
pub fn render_histogram(out: &mut String, name: &str, help: &str, h: &LogLinearHist) {
    header(out, name, "histogram", help);
    hist_series(out, name, "", h);
}

/// The `_bucket`/`_sum`/`_count` series for one histogram, with an
/// optional pre-rendered label (e.g. `stage="simulate",`) spliced
/// before `le`.
fn hist_series(out: &mut String, name: &str, label: &str, h: &LogLinearHist) {
    let mut cumulative = 0u64;
    for (bound, count) in h.nonzero_buckets() {
        if bound == u64::MAX {
            // The table's overflow slot; covered by the +Inf series.
            break;
        }
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{{label}le=\"{bound}\"}} {cumulative}");
    }
    let total = h.count();
    let _ = writeln!(out, "{name}_bucket{{{label}le=\"+Inf\"}} {total}");
    if label.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {total}");
    } else {
        let lbl = label.trim_end_matches(',');
        let _ = writeln!(out, "{name}_sum{{{lbl}}} {}", h.sum());
        let _ = writeln!(out, "{name}_count{{{lbl}}} {total}");
    }
}

/// A microsecond quantity as a seconds string. `f64` `Display` prints
/// the shortest round-tripping form, so bucket bounds render as stable
/// literals (`100` → `0.0001`, `5_000_000` → `5`).
fn seconds(us: u64) -> String {
    format!("{}", us as f64 / 1e6)
}

/// Render the per-stage wall-time histograms as one family with a
/// `stage` label. Bounds are the shared log-linear bucket table
/// converted to seconds; all [`crate::metrics::STAGES`] series appear
/// even at zero counts (each at least `+Inf`/`_sum`/`_count`), so
/// dashboards see a stable label set.
pub fn render_stage_seconds(out: &mut String, name: &str, help: &str, stages: &StageTimes) {
    header(out, name, "histogram", help);
    for (stage, h) in stages.iter() {
        let mut cumulative = 0u64;
        for (bound, count) in h.nonzero_buckets() {
            if bound == u64::MAX {
                break;
            }
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{stage=\"{stage}\",le=\"{}\"}} {cumulative}",
                seconds(bound)
            );
        }
        let total = h.count();
        let _ = writeln!(
            out,
            "{name}_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {total}"
        );
        let _ = writeln!(out, "{name}_sum{{stage=\"{stage}\"}} {}", seconds(h.sum()));
        let _ = writeln!(out, "{name}_count{{stage=\"{stage}\"}} {total}");
    }
}

/// One `spt loadgen` run, as the Prometheus body `--prom FILE` writes.
/// Lives here (not in the CLI) so the exposition name lint below
/// covers the `sp_loadgen_*` families alongside the daemon's.
pub struct LoadgenSnapshot<'a> {
    /// `"open"` or `"closed"` — the arrival model used.
    pub mode: &'a str,
    /// Requests the schedule offered (sent or attempted).
    pub offered: u64,
    /// Successful replies.
    pub ok: u64,
    /// `busy` backpressure replies.
    pub busy: u64,
    /// Deadline-exceeded replies.
    pub timeouts: u64,
    /// Transport or protocol errors.
    pub errors: u64,
    /// Offered arrival rate, requests/second (0 in closed-loop mode).
    pub offered_rate: f64,
    /// Achieved completion rate, requests/second.
    pub achieved_rate: f64,
    /// Latency of **successful** replies only, microseconds.
    pub latency: &'a LogLinearHist,
}

/// Render the loadgen exposition body (`sp_loadgen_*` families plus
/// `sp_build_info`).
pub fn render_loadgen(snap: &LoadgenSnapshot) -> String {
    let mut out = String::new();
    build_info(&mut out);
    labelled(
        &mut out,
        "sp_loadgen_requests_total",
        "Loadgen requests by outcome.",
        "outcome",
        &[
            ("ok", snap.ok),
            ("busy", snap.busy),
            ("timeout", snap.timeouts),
            ("error", snap.errors),
        ],
    );
    counter(
        &mut out,
        "sp_loadgen_offered_total",
        "Requests the arrival schedule offered.",
        snap.offered,
    );
    gauge_f64(
        &mut out,
        "sp_loadgen_offered_rate",
        "Offered arrival rate, requests/second (0 in closed-loop mode).",
        snap.offered_rate,
    );
    gauge_f64(
        &mut out,
        "sp_loadgen_achieved_rate",
        "Achieved completion rate, requests/second.",
        snap.achieved_rate,
    );
    let mode_val = u64::from(snap.mode == "open");
    gauge(
        &mut out,
        "sp_loadgen_open_loop",
        "1 when the run used the open-loop arrival model, else 0.",
        mode_val,
    );
    render_histogram(
        &mut out,
        "sp_loadgen_latency_us",
        "Latency of successful replies, microseconds (open loop: from intended send time).",
        snap.latency,
    );
    out
}

/// Render the full daemon exposition body.
pub fn render(snap: &PromSnapshot) -> String {
    let m = snap.metrics;
    let mut out = String::new();

    build_info(&mut out);
    gauge(
        &mut out,
        "sp_uptime_ms",
        "Daemon uptime in milliseconds.",
        snap.uptime_ms,
    );
    counter(
        &mut out,
        "sp_requests_total",
        "Requests received, including malformed ones.",
        m.requests.load(Ordering::Relaxed),
    );
    let by_kind: Vec<(&str, u64)> = KINDS
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, m.by_kind[i].load(Ordering::Relaxed)))
        .collect();
    labelled(
        &mut out,
        "sp_requests_by_kind_total",
        "Requests by wire type.",
        "kind",
        &by_kind,
    );
    counter(
        &mut out,
        "sp_cache_hits_total",
        "Result-cache hits.",
        m.cache_hits.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_cache_misses_total",
        "Result-cache misses (cacheable requests only).",
        m.cache_misses.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_busy_rejections_total",
        "Requests shed with a busy reply.",
        m.busy_rejections.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_timeouts_total",
        "Requests that hit their deadline.",
        m.timeouts.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_errors_total",
        "Malformed or failed requests.",
        m.errors.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "sp_cache_entries",
        "Result-cache entries currently held.",
        snap.cache_entries as u64,
    );
    gauge(
        &mut out,
        "sp_cache_capacity",
        "Result-cache capacity.",
        snap.cache_capacity as u64,
    );
    gauge(
        &mut out,
        "sp_queue_depth",
        "Admission-queue depth.",
        snap.queue_depth as u64,
    );
    gauge(
        &mut out,
        "sp_queue_capacity",
        "Admission-queue capacity.",
        snap.queue_capacity as u64,
    );
    gauge(&mut out, "sp_workers", "Pool workers.", snap.workers as u64);
    counter(
        &mut out,
        "sp_jobs_completed_total",
        "Jobs the pool has completed.",
        snap.completed,
    );
    render_histogram(
        &mut out,
        "sp_request_latency_us",
        "End-to-end request latency, microseconds.",
        &m.latency,
    );
    render_stage_seconds(
        &mut out,
        "sp_stage_seconds",
        "Wall-clock time per pipeline stage, seconds (folded from runtime spans).",
        snap.stages,
    );

    // Aggregate prefetch-event totals. Zero until an eventful request
    // (`"events":true`) executes; cache hits do not re-record.
    let ev = snap.events;
    counter(
        &mut out,
        "sp_events_runs_total",
        "Simulation runs folded into the event totals.",
        ev.runs.load(Ordering::Relaxed),
    );
    let by_class = |arr: &[std::sync::atomic::AtomicU64; 5]| -> Vec<(&'static str, u64)> {
        PfClass::ALL
            .iter()
            .map(|c| (c.name(), arr[c.index()].load(Ordering::Relaxed)))
            .collect()
    };
    labelled(
        &mut out,
        "sp_events_prefetch_issued_total",
        "Prefetches issued, by class.",
        "class",
        &by_class(&ev.issued),
    );
    labelled(
        &mut out,
        "sp_events_prefetch_filled_total",
        "Prefetch L2 fills, by class.",
        "class",
        &by_class(&ev.filled),
    );
    labelled(
        &mut out,
        "sp_events_prefetch_first_use_total",
        "Prefetched blocks first used by the main thread, by class.",
        "class",
        &by_class(&ev.first_uses),
    );
    labelled(
        &mut out,
        "sp_events_prefetch_evicted_unused_total",
        "Prefetched blocks evicted before any use, by class.",
        "class",
        &by_class(&ev.evicted_unused),
    );
    let by_case: Vec<(&str, u64)> = PollutionCase::ALL
        .iter()
        .map(|c| (c.name(), ev.pollution[c.index()].load(Ordering::Relaxed)))
        .collect();
    labelled(
        &mut out,
        "sp_events_pollution_total",
        "Pollution evictions, by displacement case.",
        "case",
        &by_case,
    );
    labelled(
        &mut out,
        "sp_events_timeliness_total",
        "Prefetch first uses, by timeliness.",
        "timeliness",
        &[
            ("late", ev.late.load(Ordering::Relaxed)),
            ("on_time", ev.on_time.load(Ordering::Relaxed)),
            ("early", ev.early.load(Ordering::Relaxed)),
        ],
    );

    // Aggregate epoch-telemetry totals. Zero until an epoch-recorded
    // request (`"epochs":true`) executes; those bypass the result
    // cache, so every one records. Naming follows the audit of the
    // families above: cumulative counts end `_total`, durations carry
    // an explicit unit suffix — see `names_follow_the_unit_conventions`.
    let ep = snap.epochs;
    counter(
        &mut out,
        "sp_epoch_runs_total",
        "Simulation runs folded into the epoch totals.",
        ep.runs.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_epoch_windows_total",
        "Epoch windows recorded across those runs.",
        ep.windows.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "sp_epoch_refs_total",
        "Main-thread references covered by recorded windows.",
        ep.refs.load(Ordering::Relaxed),
    );
    let by_case: Vec<(&str, u64)> = PollutionCase::ALL
        .iter()
        .map(|c| (c.name(), ep.pollution[c.index()].load(Ordering::Relaxed)))
        .collect();
    labelled(
        &mut out,
        "sp_epoch_pollution_total",
        "Pollution evictions in epoch-recorded runs, by displacement case.",
        "case",
        &by_case,
    );
    labelled(
        &mut out,
        "sp_epoch_timeliness_total",
        "Prefetch first uses in epoch-recorded runs, by timeliness.",
        "timeliness",
        &[
            ("late", ep.late.load(Ordering::Relaxed)),
            ("on_time", ep.on_time.load(Ordering::Relaxed)),
            ("early", ep.early.load(Ordering::Relaxed)),
        ],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EpochTotals, EventTotals};
    use crate::metrics::{Metrics, STAGES};

    #[derive(Default)]
    struct Totals {
        m: Metrics,
        ev: EventTotals,
        ep: EpochTotals,
        stages: StageTimes,
    }

    fn snapshot(t: &Totals) -> PromSnapshot<'_> {
        PromSnapshot {
            metrics: &t.m,
            events: &t.ev,
            epochs: &t.ep,
            uptime_ms: 1234,
            cache_entries: 3,
            cache_capacity: 256,
            queue_depth: 1,
            queue_capacity: 64,
            workers: 4,
            completed: 9,
            stages: &t.stages,
        }
    }

    fn loadgen_totals() -> (LogLinearHist, u64) {
        let h = LogLinearHist::default();
        h.record(120);
        h.record(4_500);
        (h, 2)
    }

    #[test]
    fn exposition_is_well_formed_and_covers_every_family() {
        let t = Totals::default();
        t.m.count_request("sweep");
        t.m.count_request("metrics");
        t.m.latency.record(120);
        t.m.latency.record(9_999_999);
        t.stages.record_us("simulate", 120);
        let body = render(&snapshot(&t));
        // Every non-comment line is `name{labels} value` with a numeric
        // value; every sample is preceded by HELP/TYPE for its family.
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment {line:?}"
                );
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample {line:?}");
        }
        for family in [
            "sp_build_info",
            "sp_uptime_ms",
            "sp_requests_total",
            "sp_requests_by_kind_total",
            "sp_cache_hits_total",
            "sp_request_latency_us",
            "sp_events_runs_total",
            "sp_events_prefetch_issued_total",
            "sp_events_pollution_total",
            "sp_events_timeliness_total",
            "sp_stage_seconds",
            "sp_epoch_runs_total",
            "sp_epoch_windows_total",
            "sp_epoch_refs_total",
            "sp_epoch_pollution_total",
            "sp_epoch_timeliness_total",
        ] {
            assert!(
                body.contains(&format!("# TYPE {family} ")),
                "missing family {family}"
            );
        }
        assert!(
            body.contains("sp_requests_by_kind_total{kind=\"metrics\"} 1"),
            "got {body}"
        );
        assert!(
            body.contains("sp_events_pollution_total{case=\"reuse\"} 0"),
            "got {body}"
        );
        assert!(
            body.contains("sp_epoch_timeliness_total{timeliness=\"late\"} 0"),
            "got {body}"
        );
        assert!(
            body.contains(&format!("sp_build_info{{version=\"{VERSION}\",git=")),
            "got {body}"
        );
    }

    /// The metric-name lint: every family follows the exposition's
    /// unit-suffix conventions. Cumulative counters end `_total`;
    /// histograms carry an explicit unit suffix (`_us` or `_seconds`);
    /// gauges are instantaneous quantities and may end in a unit
    /// (`_ms`) or a bare noun; and every name is `sp_`-prefixed
    /// lowercase. New families (the `sp_loadgen_*` set included) are
    /// checked automatically because the lint walks the rendered
    /// bodies' TYPE comments rather than a hand-kept list — both the
    /// daemon exposition and the loadgen `--prom` body pass through.
    #[test]
    fn names_follow_the_unit_conventions() {
        let t = Totals::default();
        t.m.count_request("sweep");
        let (lat, offered) = loadgen_totals();
        let lg = render_loadgen(&LoadgenSnapshot {
            mode: "open",
            offered,
            ok: 2,
            busy: 0,
            timeouts: 0,
            errors: 0,
            offered_rate: 100.0,
            achieved_rate: 99.5,
            latency: &lat,
        });
        let body = format!("{}{lg}", render(&snapshot(&t)));
        let mut families = 0;
        let mut loadgen_families = 0;
        for line in body.lines() {
            let Some(rest) = line.strip_prefix("# TYPE ") else {
                continue;
            };
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            families += 1;
            if name.starts_with("sp_loadgen_") {
                loadgen_families += 1;
            }
            assert!(
                name.starts_with("sp_")
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "family {name} must be sp_-prefixed lowercase"
            );
            match kind {
                "counter" => assert!(
                    name.ends_with("_total"),
                    "counter {name} must end in _total"
                ),
                "histogram" => assert!(
                    name.ends_with("_us") || name.ends_with("_seconds"),
                    "histogram {name} must carry a unit suffix (_us/_seconds)"
                ),
                "gauge" => assert!(
                    !name.ends_with("_total"),
                    "gauge {name} must not use the counter suffix"
                ),
                other => panic!("unexpected TYPE {other} for {name}"),
            }
        }
        assert!(families > 15, "lint saw only {families} families");
        assert!(
            loadgen_families >= 5,
            "lint saw only {loadgen_families} sp_loadgen_ families"
        );
    }

    #[test]
    fn histogram_series_are_cumulative_over_occupied_buckets() {
        let m = Metrics::default();
        m.latency.record(50);
        m.latency.record(120);
        m.latency.record(9_999_999);
        let mut out = String::new();
        render_histogram(&mut out, "h_us", "help.", &m.latency);
        // Occupied buckets only: 50 (linear, exact), 120's bucket, the
        // slow outlier's bucket, then +Inf at the total.
        assert!(out.contains("h_us_bucket{le=\"50\"} 1"), "got {out}");
        assert!(out.contains("h_us_bucket{le=\"+Inf\"} 3"), "got {out}");
        assert!(out.contains(&format!("h_us_sum {}", 50 + 120 + 9_999_999)));
        assert!(out.contains("h_us_count 3"), "got {out}");
        // One line per occupied bucket plus +Inf — not the full table.
        let bucket_lines = out.matches("h_us_bucket{").count();
        assert_eq!(bucket_lines, 4, "got {out}");
        // Cumulative counts are non-decreasing in render order.
        let mut prev = 0u64;
        for line in out.lines().filter(|l| l.starts_with("h_us_bucket{")) {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= prev, "cumulative dip at {line}");
            prev = v;
        }
    }

    #[test]
    fn empty_histogram_still_renders_inf_sum_count() {
        let h = LogLinearHist::default();
        let mut out = String::new();
        render_histogram(&mut out, "h_us", "help.", &h);
        assert!(out.contains("h_us_bucket{le=\"+Inf\"} 0"), "got {out}");
        assert!(out.contains("h_us_sum 0"), "got {out}");
        assert!(out.contains("h_us_count 0"), "got {out}");
    }

    #[test]
    fn stage_seconds_renders_every_stage_with_seconds_bounds() {
        let stages = StageTimes::default();
        stages.record_us("simulate", 120); // 0.00012 s
        stages.record_us("queue_wait", 9_999_999);
        let mut out = String::new();
        render_stage_seconds(&mut out, "sp_stage_seconds", "help.", &stages);
        assert!(
            out.contains("sp_stage_seconds_bucket{stage=\"simulate\",le=\"0.00012\"} 1"),
            "got {out}"
        );
        assert!(
            out.contains("sp_stage_seconds_bucket{stage=\"simulate\",le=\"+Inf\"} 1"),
            "got {out}"
        );
        assert!(out.contains("sp_stage_seconds_sum{stage=\"simulate\"} 0.00012"));
        assert!(out.contains("sp_stage_seconds_count{stage=\"queue_wait\"} 1"));
        // Stable label set: every stage appears even with zero counts.
        for stage in STAGES {
            assert!(
                out.contains(&format!("sp_stage_seconds_count{{stage=\"{stage}\"}}")),
                "missing stage {stage}"
            );
        }
    }

    #[test]
    fn loadgen_body_reports_outcomes_and_rates() {
        let (lat, offered) = loadgen_totals();
        let body = render_loadgen(&LoadgenSnapshot {
            mode: "closed",
            offered,
            ok: 2,
            busy: 1,
            timeouts: 0,
            errors: 0,
            offered_rate: 0.0,
            achieved_rate: 42.5,
            latency: &lat,
        });
        assert!(
            body.contains("sp_loadgen_requests_total{outcome=\"ok\"} 2"),
            "got {body}"
        );
        assert!(
            body.contains("sp_loadgen_requests_total{outcome=\"busy\"} 1"),
            "got {body}"
        );
        assert!(body.contains("sp_loadgen_open_loop 0"), "got {body}");
        assert!(body.contains("sp_loadgen_achieved_rate 42.5"), "got {body}");
        assert!(body.contains("sp_loadgen_latency_us_count 2"), "got {body}");
        assert!(body.contains("sp_build_info{version="), "got {body}");
    }
}
