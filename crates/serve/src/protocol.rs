//! The sp-serve wire protocol: newline-delimited JSON requests and
//! responses, and the canonical cache key a request resolves to.
//!
//! ## Requests
//!
//! One JSON object per line. `type` selects the command; everything
//! else has a default, so `{"type":"sweep"}` is a valid request:
//!
//! ```text
//! {"id":7,"type":"sweep","bench":"em3d","scale":"test","rp":0.5,
//!  "distances":[2,4,8],"cache":"scaled","l2_kb":256,"ways":16,"line":64,
//!  "hw_prefetch":true,"prefetcher":"streamer+dpl","blocking_helper":true,
//!  "passes":1,"timeout_ms":30000}
//! {"type":"point","bench":"mcf","distance":8}
//! {"type":"affinity","bench":"mst","scale":"test"}
//! {"type":"burn","ms":50}            # load-testing: occupies a worker
//! {"type":"stats"}                   # metrics snapshot, never queued
//! {"type":"metrics"}                 # Prometheus text exposition, never queued
//! {"type":"ping"}
//! {"type":"shutdown"}                # graceful drain
//! ```
//!
//! ## Responses
//!
//! `{"id":...,"ok":true,"cached":false,"micros":1234,"result":{...}}` on
//! success; `{"id":...,"ok":false,"error":"busy","detail":"..."}` on
//! failure. `error` is one of `bad_request`, `busy` (backpressure — try
//! again later), `timeout`, `shutting_down`, or `internal`.
//!
//! ## Cache keys
//!
//! Semantically identical requests must share one cache entry, so the
//! key is built from **resolved** values (after defaults are applied),
//! not from the raw JSON text: `{"type":"sweep"}` and a request spelling
//! out every default hit the same entry.

use crate::json::Json;
use sp_bench::Scale;
use sp_cachesim::{CacheConfig, CacheGeometry, HwBackend};
use sp_core::EngineOptions;
use sp_workloads::KernelKind;

/// Resolved cache selection for a request (preset plus overrides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// The resolved configuration.
    pub config: CacheConfig,
}

impl CacheSpec {
    fn parse(v: &Json) -> Result<CacheSpec, String> {
        let preset = v.get("cache").and_then(Json::as_str).unwrap_or("scaled");
        let mut config = match preset {
            "scaled" => CacheConfig::scaled_default(),
            "core2" => CacheConfig::core2_q6600(),
            other => return Err(format!("unknown cache preset {other:?}")),
        };
        let l2_kb = match v.get("l2_kb") {
            None => config.l2.size_bytes / 1024,
            Some(n) => n.as_u64().ok_or("l2_kb must be a positive integer")?,
        };
        let ways = match v.get("ways") {
            None => config.l2.ways,
            Some(n) => n.as_u64().ok_or("ways must be a positive integer")? as u32,
        };
        let line = match v.get("line") {
            None => config.l2.line_size,
            Some(n) => n.as_u64().ok_or("line must be a positive integer")?,
        };
        // CacheGeometry::new panics on invalid shapes; a bad request must
        // get an error reply instead, so validate its rules up front.
        if l2_kb == 0 || !l2_kb.is_power_of_two() {
            return Err("l2_kb must be a power of two".into());
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err("ways must be a power of two".into());
        }
        if line != config.l1.line_size {
            return Err(format!(
                "line must match the L1 line size ({})",
                config.l1.line_size
            ));
        }
        if l2_kb * 1024 / line < ways as u64 {
            return Err("cache must hold at least one full set".into());
        }
        config.l2 = CacheGeometry::new(l2_kb * 1024, ways, line);
        if let Some(pf) = v.get("prefetcher") {
            let name = pf.as_str().ok_or("prefetcher must be a string")?;
            config.hw_backend = HwBackend::parse(name)?;
        }
        if let Some(hw) = v.get("hw_prefetch") {
            config.hw_prefetchers = hw.as_bool().ok_or("hw_prefetch must be a boolean")?;
        }
        Ok(CacheSpec { config })
    }

    fn key_fragment(&self) -> String {
        let c = &self.config;
        format!(
            "l2kb={},ways={},line={},hw={},pf={}",
            c.l2.size_bytes / 1024,
            c.l2.ways,
            c.l2.line_size,
            if c.hw_prefetchers { "on" } else { "off" },
            c.hw_backend.name()
        )
    }
}

/// The simulation-selecting fields shared by `sweep` and `point`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpec {
    /// Which kernel to simulate (any workload-builder kernel).
    pub bench: KernelKind,
    /// Input scale (`test` or `scaled`).
    pub scale: Scale,
    /// The resolved cache configuration.
    pub cache: CacheSpec,
    /// Prefetch ratio `RP`.
    pub rp: f64,
    /// Engine options (helper model, passes).
    pub opts: EngineOptions,
    /// Attach event sinks to every run, adding per-point lifecycle /
    /// timeliness / pollution-case summaries to the result (and feeding
    /// the daemon's aggregate event counters).
    pub events: bool,
    /// Attach epoch recorders to every run, adding a compact per-window
    /// telemetry series to each point (and feeding the daemon's
    /// `sp_epoch_*` counters). Mutually exclusive with `events` — each
    /// run carries one sink. Epoch payloads are **never cached** (see
    /// [`Request::cache_key`]), so the knob stays out of the key.
    pub epochs: bool,
    /// Grid points simulated per trace pass for sweep requests (the
    /// lane-batched engine; 1 = the scalar per-point path). Purely an
    /// execution knob: results are bit-identical at every width, so it
    /// is **excluded from the cache key** — sweeps at different lane
    /// widths share cached results.
    pub lanes: usize,
}

impl SimSpec {
    fn parse(v: &Json) -> Result<SimSpec, String> {
        let bench = parse_bench(v)?;
        let scale = parse_scale(v)?;
        let cache = CacheSpec::parse(v)?;
        let rp = v.get("rp").map_or(Ok(0.5), |n| {
            n.as_f64().ok_or_else(|| "rp must be a number".to_string())
        })?;
        if !(rp > 0.0 && rp <= 1.0) {
            return Err(format!("rp must be in (0, 1], got {rp}"));
        }
        let mut opts = EngineOptions::default();
        if let Some(b) = v.get("blocking_helper") {
            opts.blocking_helper = b.as_bool().ok_or("blocking_helper must be a boolean")?;
        }
        if let Some(p) = v.get("passes") {
            let p = p.as_u64().ok_or("passes must be a positive integer")?;
            if p == 0 || p > 16 {
                return Err("passes must be in 1..=16".into());
            }
            opts.passes = p as usize;
        }
        let events = match v.get("events") {
            None => false,
            Some(e) => e.as_bool().ok_or("events must be a boolean")?,
        };
        let epochs = match v.get("epochs") {
            None => false,
            Some(e) => e.as_bool().ok_or("epochs must be a boolean")?,
        };
        if events && epochs {
            return Err("events and epochs are mutually exclusive".into());
        }
        let lanes = match v.get("lanes") {
            None => 1,
            Some(l) => {
                let l = l.as_u64().ok_or("lanes must be a positive integer")?;
                if l == 0 || l > 64 {
                    return Err("lanes must be in 1..=64".into());
                }
                l as usize
            }
        };
        Ok(SimSpec {
            bench,
            scale,
            cache,
            rp,
            opts,
            events,
            epochs,
            lanes,
        })
    }

    fn key_fragment(&self) -> String {
        format!(
            "bench={}|scale={}|{}|rp={}|blocking={}|passes={}|events={}",
            self.bench.name(),
            scale_name(self.scale),
            self.cache.key_fragment(),
            self.rp,
            if self.opts.blocking_helper {
                "on"
            } else {
                "off"
            },
            self.opts.passes,
            // Event summaries change the result payload, so eventful and
            // plain runs of the same spec must not share a cache entry.
            if self.events { "on" } else { "off" }
        )
    }
}

fn parse_bench(v: &Json) -> Result<KernelKind, String> {
    KernelKind::parse(v.get("bench").and_then(Json::as_str).unwrap_or("em3d"))
}

fn parse_scale(v: &Json) -> Result<Scale, String> {
    match v.get("scale").and_then(Json::as_str).unwrap_or("test") {
        "test" => Ok(Scale::Test),
        "scaled" => Ok(Scale::Scaled),
        other => Err(format!("unknown scale {other:?}; expected test|scaled")),
    }
}

/// `Scale`'s wire spelling.
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Scaled => "scaled",
    }
}

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// A full distance sweep.
    Sweep {
        /// Simulation selection.
        spec: SimSpec,
        /// The distance grid (default: the benchmark's figure grid).
        distances: Vec<u32>,
    },
    /// A single-distance run.
    Point {
        /// Simulation selection.
        spec: SimSpec,
        /// The prefetch distance.
        distance: u32,
    },
    /// A Table 2 profile (Set Affinity, bound, CALR, RP) for one bench.
    Affinity {
        /// Which kernel.
        bench: KernelKind,
        /// Input scale.
        scale: Scale,
        /// Cache configuration.
        cache: CacheSpec,
    },
    /// Occupy a worker for `ms` milliseconds (load/backpressure testing).
    Burn {
        /// How long to spin.
        ms: u64,
    },
    /// Metrics snapshot (handled inline, never queued).
    Stats,
    /// Prometheus text exposition of the daemon counters, latency
    /// histogram, and aggregate event totals (handled inline).
    Metrics,
    /// Graceful drain-and-exit.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Per-request deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// The command.
    pub cmd: Command,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let id = v.get("id").cloned();
        let timeout_ms = match v.get("timeout_ms") {
            None => None,
            Some(t) => Some(
                t.as_u64()
                    .ok_or("timeout_ms must be a non-negative integer")?,
            ),
        };
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"type\" field")?;
        let cmd = match kind {
            "ping" => Command::Ping,
            "stats" => Command::Stats,
            "metrics" => Command::Metrics,
            "shutdown" => Command::Shutdown,
            "burn" => {
                let ms = match v.get("ms") {
                    None => 10,
                    Some(n) => n.as_u64().ok_or("ms must be a non-negative integer")?,
                };
                if ms > 60_000 {
                    return Err("burn ms capped at 60000".into());
                }
                Command::Burn { ms }
            }
            "affinity" => Command::Affinity {
                bench: parse_bench(&v)?,
                scale: parse_scale(&v)?,
                cache: CacheSpec::parse(&v)?,
            },
            "point" => {
                let spec = SimSpec::parse(&v)?;
                let distance = match v.get("distance") {
                    None => 8,
                    Some(d) => {
                        let d = d
                            .as_u64()
                            .ok_or("distance must be a non-negative integer")?;
                        u32::try_from(d).map_err(|_| "distance too large".to_string())?
                    }
                };
                Command::Point { spec, distance }
            }
            "sweep" => {
                let spec = SimSpec::parse(&v)?;
                let distances = match v.get("distances") {
                    None => sp_bench::distances_for_kernel(spec.bench).to_vec(),
                    Some(ds) => {
                        let items = ds.as_arr().ok_or("distances must be an array")?;
                        if items.is_empty() || items.len() > 64 {
                            return Err("distances must hold 1..=64 entries".into());
                        }
                        items
                            .iter()
                            .map(|d| {
                                d.as_u64()
                                    .and_then(|d| u32::try_from(d).ok())
                                    .ok_or_else(|| "distances entries must be integers".to_string())
                            })
                            .collect::<Result<Vec<u32>, String>>()?
                    }
                };
                Command::Sweep { spec, distances }
            }
            other => return Err(format!("unknown request type {other:?}")),
        };
        Ok(Request {
            id,
            timeout_ms,
            cmd,
        })
    }

    /// The wire `type` of this request (for per-kind metrics).
    pub fn kind(&self) -> &'static str {
        match self.cmd {
            Command::Ping => "ping",
            Command::Sweep { .. } => "sweep",
            Command::Point { .. } => "point",
            Command::Affinity { .. } => "affinity",
            Command::Burn { .. } => "burn",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Shutdown => "shutdown",
        }
    }

    /// The canonical cache key, if this request is cacheable. Built from
    /// resolved values so default-spelling variants share an entry;
    /// `burn`/`stats`/`ping`/`shutdown` are never cached. Epoch-series
    /// requests bypass the cache entirely — the `epochs` knob is
    /// excluded from the key, and sharing an entry with the plain spec
    /// would serve a series-free payload — so they stay uncached rather
    /// than key-split.
    pub fn cache_key(&self) -> Option<String> {
        match &self.cmd {
            Command::Sweep { spec, .. } | Command::Point { spec, .. } if spec.epochs => None,
            Command::Sweep { spec, distances } => {
                let ds: Vec<String> = distances.iter().map(u32::to_string).collect();
                Some(format!("sweep|{}|ds={}", spec.key_fragment(), ds.join(",")))
            }
            Command::Point { spec, distance } => {
                Some(format!("point|{}|d={distance}", spec.key_fragment()))
            }
            Command::Affinity {
                bench,
                scale,
                cache,
            } => Some(format!(
                "affinity|bench={}|scale={}|{}",
                bench.name(),
                scale_name(*scale),
                cache.key_fragment()
            )),
            _ => None,
        }
    }
}

/// Encode the success envelope around an already-encoded `result`
/// payload. The payload is spliced in verbatim, so a cached result is
/// byte-identical to the miss that produced it.
pub fn ok_response(id: &Option<Json>, cached: bool, micros: u64, result: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"cached\":{cached},\"micros\":{micros},\"result\":{result}}}",
        id.as_ref().map_or_else(|| "null".to_string(), Json::encode)
    )
}

/// Splice a `"corr":"cN"` field into an encoded reply object, right
/// after the opening brace. The daemon applies this to **every** reply
/// so clients can join a slow response against the access log and
/// `spt trace` spans by correlation ID. Non-object payloads (there are
/// none on the reply path) pass through untouched.
pub fn with_corr(reply: &str, corr: sp_obs::CorrId) -> String {
    match reply.strip_prefix('{') {
        Some(rest) if !rest.starts_with('}') => format!("{{\"corr\":\"{corr}\",{rest}"),
        _ => reply.to_string(),
    }
}

/// Encode an error envelope.
pub fn error_response(id: &Option<Json>, error: &str, detail: &str) -> String {
    Json::obj()
        .push("id", id.clone().unwrap_or(Json::Null))
        .push("ok", Json::Bool(false))
        .push("error", Json::str(error))
        .push("detail", Json::str(detail))
        .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_sweep_request_gets_all_defaults() {
        let r = Request::parse("{\"type\":\"sweep\"}").unwrap();
        assert_eq!(r.kind(), "sweep");
        assert_eq!(r.id, None);
        match &r.cmd {
            Command::Sweep { spec, distances } => {
                assert_eq!(spec.bench, KernelKind::Em3d);
                assert_eq!(spec.scale, Scale::Test);
                assert_eq!(spec.rp, 0.5);
                assert_eq!(spec.opts, EngineOptions::default());
                assert_eq!(spec.cache.config.hw_backend, HwBackend::StreamerDpl);
                assert_eq!(distances, sp_bench::distances_for_kernel(KernelKind::Em3d));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn lane_width_is_execution_only_and_shares_the_cache_key() {
        let at = |lanes: &str| {
            Request::parse(&format!(
                "{{\"type\":\"sweep\",\"distances\":[2,16]{lanes}}}"
            ))
            .unwrap()
        };
        let scalar = at("");
        let wide = at(",\"lanes\":8");
        match (&scalar.cmd, &wide.cmd) {
            (Command::Sweep { spec: s, .. }, Command::Sweep { spec: w, .. }) => {
                assert_eq!(s.lanes, 1, "lanes defaults to the scalar path");
                assert_eq!(w.lanes, 8);
            }
            other => panic!("wrong commands {other:?}"),
        }
        // Results are bit-identical at every lane width, so both
        // requests must resolve to one cached entry.
        assert_eq!(scalar.cache_key(), wide.cache_key());
        for bad in ["0", "65", "\"four\""] {
            let line = format!("{{\"type\":\"sweep\",\"lanes\":{bad}}}");
            assert!(Request::parse(&line).is_err(), "lanes {bad} must reject");
        }
    }

    #[test]
    fn every_kernel_and_backend_is_addressable() {
        for k in KernelKind::ALL {
            for b in HwBackend::ALL {
                let line = format!(
                    "{{\"type\":\"sweep\",\"bench\":\"{}\",\"prefetcher\":\"{}\",\
                     \"distances\":[2]}}",
                    k.flag(),
                    b.name()
                );
                let r = Request::parse(&line).unwrap();
                let key = r.cache_key().unwrap();
                assert!(
                    key.contains(&format!("bench={}", k.name())),
                    "key {key} lacks the kernel"
                );
                assert!(
                    key.contains(&format!("pf={}", b.name())),
                    "key {key} lacks the backend"
                );
                match r.cmd {
                    Command::Sweep { spec, .. } => {
                        assert_eq!(spec.bench, k);
                        assert_eq!(spec.cache.config.hw_backend, b);
                    }
                    other => panic!("wrong command {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unknown_prefetchers_are_rejected_listing_the_valid_set() {
        let err = Request::parse("{\"type\":\"sweep\",\"prefetcher\":\"markov\"}").unwrap_err();
        assert!(err.contains("unknown prefetcher"), "{err}");
        for b in HwBackend::ALL {
            assert!(err.contains(b.name()), "{err} missing {}", b.name());
        }
    }

    #[test]
    fn default_spelling_variants_share_a_cache_key() {
        let implicit = Request::parse("{\"type\":\"sweep\",\"distances\":[2,4]}").unwrap();
        let explicit = Request::parse(
            "{\"id\":9,\"timeout_ms\":50,\"type\":\"sweep\",\"bench\":\"em3d\",\
             \"scale\":\"test\",\"rp\":0.5,\"cache\":\"scaled\",\"l2_kb\":256,\
             \"ways\":16,\"line\":64,\"hw_prefetch\":true,\"blocking_helper\":true,\
             \"passes\":1,\"distances\":[2,4]}",
        )
        .unwrap();
        assert_eq!(implicit.cache_key(), explicit.cache_key());
        let key = implicit.cache_key().unwrap();
        assert!(key.starts_with("sweep|bench=EM3D|scale=test|"), "got {key}");
        assert!(key.ends_with("|ds=2,4"), "got {key}");
    }

    #[test]
    fn semantic_differences_change_the_key() {
        let base = Request::parse("{\"type\":\"sweep\",\"distances\":[2,4]}").unwrap();
        for variant in [
            "{\"type\":\"sweep\",\"distances\":[2,8]}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"bench\":\"mcf\"}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"rp\":0.25}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"hw_prefetch\":false}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"l2_kb\":128}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"passes\":2}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"bench\":\"bfs\"}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"prefetcher\":\"perceptron\"}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"events\":true}",
            "{\"type\":\"point\",\"distance\":2}",
        ] {
            let v = Request::parse(variant).unwrap();
            assert_ne!(base.cache_key(), v.cache_key(), "collision for {variant}");
        }
    }

    #[test]
    fn metrics_requests_parse_and_stay_uncacheable() {
        let r = Request::parse("{\"type\":\"metrics\"}").unwrap();
        assert_eq!(r.kind(), "metrics");
        assert_eq!(r.cmd, Command::Metrics);
        assert_eq!(r.cache_key(), None, "metrics must never be cached");
    }

    #[test]
    fn events_flag_defaults_off_and_rejects_non_booleans() {
        let r = Request::parse("{\"type\":\"point\"}").unwrap();
        match r.cmd {
            Command::Point { spec, .. } => assert!(!spec.events),
            other => panic!("wrong command {other:?}"),
        }
        let r = Request::parse("{\"type\":\"point\",\"events\":true}").unwrap();
        match r.cmd {
            Command::Point { spec, .. } => assert!(spec.events),
            other => panic!("wrong command {other:?}"),
        }
        assert!(Request::parse("{\"type\":\"point\",\"events\":\"yes\"}").is_err());
    }

    #[test]
    fn epochs_flag_defaults_off_bypasses_the_cache_and_rejects_combos() {
        let r = Request::parse("{\"type\":\"point\"}").unwrap();
        match r.cmd {
            Command::Point { spec, .. } => assert!(!spec.epochs),
            other => panic!("wrong command {other:?}"),
        }
        // Epoch requests carry a series the plain payload lacks; instead
        // of splitting the key they bypass the result cache entirely.
        for line in [
            "{\"type\":\"point\",\"epochs\":true}",
            "{\"type\":\"sweep\",\"distances\":[2,4],\"epochs\":true}",
        ] {
            let r = Request::parse(line).unwrap();
            match &r.cmd {
                Command::Point { spec, .. } | Command::Sweep { spec, .. } => {
                    assert!(spec.epochs)
                }
                other => panic!("wrong command {other:?}"),
            }
            assert_eq!(r.cache_key(), None, "epoch request must not be cached");
        }
        assert!(Request::parse("{\"type\":\"point\",\"epochs\":\"yes\"}").is_err());
        assert!(
            Request::parse("{\"type\":\"point\",\"epochs\":true,\"events\":true}").is_err(),
            "one sink per run: events+epochs must reject"
        );
    }

    #[test]
    fn non_simulation_requests_are_uncacheable() {
        for (line, kind) in [
            ("{\"type\":\"ping\"}", "ping"),
            ("{\"type\":\"stats\"}", "stats"),
            ("{\"type\":\"shutdown\"}", "shutdown"),
            ("{\"type\":\"burn\",\"ms\":5}", "burn"),
        ] {
            let r = Request::parse(line).unwrap();
            assert_eq!(r.kind(), kind);
            assert_eq!(r.cache_key(), None, "{kind} must not be cached");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"type\":42}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"sweep\",\"bench\":\"quake\"}",
            "{\"type\":\"sweep\",\"scale\":\"huge\"}",
            "{\"type\":\"sweep\",\"rp\":0}",
            "{\"type\":\"sweep\",\"rp\":1.5}",
            "{\"type\":\"sweep\",\"distances\":[]}",
            "{\"type\":\"sweep\",\"distances\":\"2\"}",
            "{\"type\":\"sweep\",\"cache\":\"l3\"}",
            "{\"type\":\"sweep\",\"prefetcher\":\"markov\"}",
            "{\"type\":\"sweep\",\"prefetcher\":42}",
            "{\"type\":\"sweep\",\"passes\":0}",
            "{\"type\":\"sweep\",\"line\":32}",
            "{\"type\":\"burn\",\"ms\":99999999}",
            "{\"type\":\"point\",\"distance\":-1}",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn id_and_timeout_are_carried() {
        let r = Request::parse("{\"id\":\"abc\",\"timeout_ms\":250,\"type\":\"ping\"}").unwrap();
        assert_eq!(r.id, Some(Json::Str("abc".into())));
        assert_eq!(r.timeout_ms, Some(250));
    }

    #[test]
    fn response_envelopes_are_well_formed() {
        let ok = ok_response(&Some(Json::num(3)), true, 120, "{\"x\":1}");
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("x"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let err = error_response(&None, "busy", "queue full");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("busy"));
        assert_eq!(v.get("id"), Some(&Json::Null));
    }

    #[test]
    fn with_corr_splices_into_both_envelopes() {
        let corr = sp_obs::CorrId::next_root();
        let tag = format!("{corr}");
        let ok = with_corr(&ok_response(&None, false, 9, "{\"x\":1}"), corr);
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("corr").and_then(Json::as_str), Some(tag.as_str()));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let err = with_corr(&error_response(&None, "busy", "full"), corr);
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("corr").and_then(Json::as_str), Some(tag.as_str()));
        // Non-object payloads pass through untouched.
        assert_eq!(with_corr("plain", corr), "plain");
        assert_eq!(with_corr("{}", corr), "{}");
    }
}
