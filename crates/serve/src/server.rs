//! The sp-serve daemon: a TCP accept loop, per-connection handler
//! threads, and the admission path gluing protocol → cache → pool →
//! engine together.
//!
//! ## Request path
//!
//! ```text
//! read line ── parse ──┬─ ping/stats/shutdown: answered inline
//!                      └─ sweep/point/affinity/burn:
//!                           cache hit ───────────────► reply cached:true
//!                           cache miss ─ try_submit ─┬─ queued: wait
//!                           (bounded, never blocks)  └─ full: reply busy
//! ```
//!
//! A queued job computes on a pool worker, **inserts into the cache
//! itself**, then notifies the waiting handler. The insert happens on
//! the worker so a request that hits its deadline does not lose the
//! result — the client's retry finds it cached.
//!
//! ## Shutdown
//!
//! A `shutdown` request, SIGINT, or SIGTERM raises the drain flag. The
//! accept loop stops accepting; handler threads notice within one read
//! timeout and close; the pool finishes queued work and joins. Nothing
//! in flight is abandoned.

use crate::cache::ResultCache;
use crate::engine::SimEngine;
use crate::json::Json;
use crate::metrics::{hist_rows_json, hist_summary_json, Metrics, StageTimes};
use crate::protocol::{error_response, ok_response, with_corr, Command, Request};
use sp_obs::CorrId;
use sp_runner::{SubmitError, WorkerPool};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Unix signal plumbing without a libc dependency: `signal(2)` is in
/// libc, which std already links, so declare just that symbol and park
/// a flag-setting handler on SIGINT/SIGTERM (async-signal-safe: one
/// relaxed atomic store).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// Daemon tunables. `Default` is what `spt serve` starts with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Pool workers (`0` = all cores).
    pub workers: usize,
    /// Admission-queue slots; a full queue answers `busy`.
    pub queue: usize,
    /// Result-cache entries.
    pub cache_entries: usize,
    /// Result-cache shards.
    pub shards: usize,
    /// Deadline for requests that don't set `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Requests slower than this log their access line at `warn`
    /// instead of `info`.
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 0,
            queue: 64,
            cache_entries: 256,
            shards: 8,
            default_timeout_ms: 30_000,
            slow_ms: 1_000,
        }
    }
}

/// Per-stage wall-time histograms, process-wide. Spans are collected in
/// one process-global buffer (see `sp_obs::span`), so the fold lives at
/// the same scope; every `Server` in the process exposes the same
/// stage histograms, exactly as every server shares one span stream.
fn stage_times() -> &'static StageTimes {
    static STAGES: OnceLock<StageTimes> = OnceLock::new();
    STAGES.get_or_init(StageTimes::default)
}

/// Drain the span collector and fold stage durations into the
/// process-wide histograms. Called after each request and before each
/// `metrics` render, so scrapes see the freshest completed spans.
fn fold_stages() {
    for rec in sp_obs::span::drain() {
        stage_times().record_us(rec.name, rec.dur_us);
    }
}

/// Everything a connection handler needs, behind one `Arc`.
struct Shared {
    engine: SimEngine,
    cache: ResultCache,
    metrics: Metrics,
    pool: WorkerPool,
    draining: AtomicBool,
    default_timeout_ms: u64,
    slow_ms: u64,
    started: Instant,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || sig::requested()
    }
}

/// The sp-serve daemon. [`Server::bind`], then [`Server::run`] — which
/// blocks until a `shutdown` request, SIGINT, or SIGTERM drains it.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket and build the worker pool. The daemon is
    /// not serving until [`run`](Server::run).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        // The daemon leaves span recording on: spans are coarse (one
        // per pipeline stage, not per access) and feed the per-stage
        // histograms and the access log's queue attribution.
        sp_obs::logger::init_from_env();
        sp_obs::span::start_recording();
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                engine: SimEngine::new(),
                cache: ResultCache::new(cfg.cache_entries, cfg.shards),
                metrics: Metrics::default(),
                pool: WorkerPool::new(cfg.workers, cfg.queue),
                draining: AtomicBool::new(false),
                default_timeout_ms: cfg.default_timeout_ms,
                slow_ms: cfg.slow_ms,
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of pool workers (after `0` → core-count resolution).
    pub fn workers(&self) -> usize {
        self.shared.pool.workers()
    }

    /// Accept and serve until drained. Installs the SIGINT/SIGTERM
    /// handler, so ctrl-c and `kill` drain instead of aborting.
    pub fn run(self) -> std::io::Result<()> {
        sig::install();
        sp_obs::log_info!(
            "serve",
            "listening",
            addr = self.local_addr,
            workers = self.shared.pool.workers(),
            queue = self.shared.pool.capacity(),
            cache_entries = self.shared.cache.capacity(),
        );
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, shared)
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
            // Reap finished handlers so a long-lived daemon's handle
            // list stays bounded by the number of *live* connections.
            handlers.retain(|h| !h.is_finished());
        }
        sp_obs::log_info!(
            "serve",
            "draining",
            live_connections = handlers.iter().filter(|h| !h.is_finished()).count(),
            queued = self.shared.pool.queue_depth(),
        );
        for h in handlers {
            let _ = h.join();
        }
        self.shared.pool.shutdown();
        sp_obs::log_info!("serve", "drained", completed = self.shared.pool.completed());
        Ok(())
    }
}

/// Per-connection loop: accumulate bytes into a line buffer, serve each
/// complete line. The 250 ms read timeout is the drain poll interval —
/// on timeout the partial line is kept, never discarded.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) if line.ends_with('\n') => {
                let (reply, close) = serve_line(&shared, line.trim());
                line.clear();
                if writer
                    .write_all(reply.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_err()
                {
                    return;
                }
                if close {
                    return;
                }
            }
            Ok(_) => {} // partial line without newline; keep accumulating
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// What the access log reports about one request, filled in along the
/// request path.
struct ReqCtx {
    /// The client's `id` field, re-encoded (JSON), when present.
    id: Option<String>,
    /// Wire `type`; `invalid` until the line parses.
    kind: &'static str,
    /// Served from the result cache?
    cached: bool,
    /// Admission-queue wait, microseconds (0 for inline answers).
    queue_us: u64,
    /// `ok`, or the error code sent back.
    outcome: &'static str,
}

impl ReqCtx {
    fn new() -> ReqCtx {
        ReqCtx {
            id: None,
            kind: "invalid",
            cached: false,
            queue_us: 0,
            outcome: "ok",
        }
    }
}

/// Serve one request line; returns `(reply, close_connection)`.
///
/// Wraps the real work in a correlation ID and a `request` span, then —
/// once the span tree has flushed — folds stage durations into the
/// process histograms and emits one structured access-log line
/// (escalated to `warn` past the configured `slow_ms`).
fn serve_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    let start = Instant::now();
    let corr = CorrId::next_root();
    let _cg = sp_obs::corr::set_current(corr);
    let mut ctx = ReqCtx::new();
    let (reply, close) = {
        let _sp = sp_obs::span!("request");
        serve_request(shared, line, start, &mut ctx)
    };
    // Echo the correlation ID in every reply so clients (loadgen slow-
    // request exemplars in particular) can join replies against the
    // access log and `spt trace` spans.
    let reply = with_corr(&reply, corr);
    let total_us = start.elapsed().as_micros() as u64;
    shared.metrics.latency.record(total_us);
    fold_stages();
    let level = if total_us >= shared.slow_ms.saturating_mul(1_000) {
        sp_obs::Level::Warn
    } else {
        sp_obs::Level::Info
    };
    sp_obs::sp_log!(
        level,
        "access",
        "request",
        id = ctx.id.as_deref().unwrap_or("-"),
        kind = ctx.kind,
        cached = ctx.cached,
        queue_us = ctx.queue_us,
        total_us = total_us,
        outcome = ctx.outcome,
    );
    (reply, close)
}

/// The request path proper: parse, answer inline kinds, or go through
/// cache → pool → engine. Mutates `ctx` for [`serve_line`]'s access log.
fn serve_request(
    shared: &Arc<Shared>,
    line: &str,
    start: Instant,
    ctx: &mut ReqCtx,
) -> (String, bool) {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(detail) => {
            shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            ctx.outcome = "bad_request";
            return (error_response(&None, "bad_request", &detail), false);
        }
    };
    shared.metrics.count_request(req.kind());
    ctx.kind = req.kind();
    ctx.id = req.id.as_ref().map(|id| id.encode());
    match &req.cmd {
        Command::Ping => {
            let micros = start.elapsed().as_micros() as u64;
            (
                ok_response(&req.id, false, micros, "{\"pong\":true}"),
                false,
            )
        }
        Command::Stats => {
            let payload = stats_json(shared).encode();
            let micros = start.elapsed().as_micros() as u64;
            (ok_response(&req.id, false, micros, &payload), false)
        }
        Command::Metrics => {
            let payload = metrics_payload(shared);
            let micros = start.elapsed().as_micros() as u64;
            (ok_response(&req.id, false, micros, &payload), false)
        }
        Command::Shutdown => {
            shared.draining.store(true, Ordering::Relaxed);
            let micros = start.elapsed().as_micros() as u64;
            (
                ok_response(&req.id, false, micros, "{\"draining\":true}"),
                true,
            )
        }
        cmd => {
            let key = req.cache_key();
            let hit = {
                let _sp = sp_obs::span!("cache_lookup");
                key.as_deref().and_then(|k| shared.cache.get(k))
            };
            if let Some(hit) = hit {
                shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                ctx.cached = true;
                let micros = start.elapsed().as_micros() as u64;
                return (ok_response(&req.id, true, micros, &hit), false);
            }
            if key.is_some() {
                shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            (
                execute_queued(shared, &req, cmd.clone(), key, start, ctx),
                false,
            )
        }
    }
}

/// The miss path: schedule on the pool with backpressure, wait with a
/// deadline. The worker fills the cache before notifying, so a timed-out
/// request's work is kept — the retry hits the cache.
fn execute_queued(
    shared: &Arc<Shared>,
    req: &Request,
    cmd: Command,
    key: Option<String>,
    start: Instant,
    ctx: &mut ReqCtx,
) -> String {
    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    // Written by the worker when it claims the task, so the handler can
    // report queue wait in the access log even though the span stream is
    // folded asynchronously.
    let queue_us = Arc::new(AtomicU64::new(0));
    let task = {
        // The handler may have given up by the time this runs; a dead
        // receiver is fine, the cache insert already happened.
        let shared = Arc::clone(shared);
        let queue_us = Arc::clone(&queue_us);
        let submitted = Instant::now();
        // Re-establish the request's correlation ID on the worker so
        // the engine's spans (and the runner's queue_wait attribution)
        // correlate with this request.
        let corr = sp_obs::corr::current();
        Box::new(move || {
            queue_us.store(submitted.elapsed().as_micros() as u64, Ordering::Relaxed);
            let _cg = corr.map(sp_obs::corr::set_current);
            let _sp = sp_obs::span!("execute");
            let outcome = shared.engine.execute(&cmd);
            if let (Some(k), Ok(payload)) = (&key, &outcome) {
                shared.cache.put(k, payload.clone());
            }
            let _ = tx.send(outcome);
        })
    };
    match shared.pool.try_submit(task) {
        Ok(()) => {}
        Err(SubmitError::Busy) => {
            shared
                .metrics
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            ctx.outcome = "busy";
            return error_response(&req.id, "busy", "admission queue full; retry later");
        }
        Err(SubmitError::ShuttingDown) => {
            ctx.outcome = "shutting_down";
            return error_response(&req.id, "shutting_down", "server is draining");
        }
    }
    let deadline = Duration::from_millis(req.timeout_ms.unwrap_or(shared.default_timeout_ms));
    let reply = match rx.recv_timeout(deadline) {
        Ok(Ok(payload)) => {
            let micros = start.elapsed().as_micros() as u64;
            ok_response(&req.id, false, micros, &payload)
        }
        Ok(Err(detail)) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            ctx.outcome = "internal";
            error_response(&req.id, "internal", &detail)
        }
        Err(_) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            ctx.outcome = "timeout";
            error_response(
                &req.id,
                "timeout",
                "deadline reached; result will be cached when the run finishes",
            )
        }
    };
    ctx.queue_us = queue_us.load(Ordering::Relaxed);
    reply
}

/// The `metrics` payload: the Prometheus text body (reading the same
/// atomics `stats` reads), carried as an escaped string so it fits the
/// one-line NDJSON envelope. A scraping bridge unwraps `body` and
/// serves it under the declared `content_type`.
fn metrics_payload(shared: &Shared) -> String {
    // Fold whatever the span collector holds right now, so a scrape
    // reflects every request whose span tree has flushed.
    fold_stages();
    let body = crate::prom::render(&crate::prom::PromSnapshot {
        metrics: &shared.metrics,
        events: shared.engine.event_totals(),
        epochs: shared.engine.epoch_totals(),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        cache_entries: shared.cache.len(),
        cache_capacity: shared.cache.capacity(),
        queue_depth: shared.pool.queue_depth(),
        queue_capacity: shared.pool.capacity(),
        workers: shared.pool.workers(),
        completed: shared.pool.completed(),
        stages: stage_times(),
    });
    Json::obj()
        .push("content_type", Json::str("text/plain; version=0.0.4"))
        .push("body", Json::str(body))
        .encode()
}

/// The `stats` payload: request counters, cache occupancy and hit
/// ratio, queue depth, worker utilization, latency histogram.
fn stats_json(shared: &Shared) -> Json {
    let report = shared.pool.report();
    let hits = shared.metrics.cache_hits.load(Ordering::Relaxed);
    let misses = shared.metrics.cache_misses.load(Ordering::Relaxed);
    Json::obj()
        .push(
            "uptime_ms",
            Json::num(shared.started.elapsed().as_millis() as f64),
        )
        .push("requests", shared.metrics.to_json())
        .push(
            "cache",
            Json::obj()
                .push("entries", Json::num(shared.cache.len() as f64))
                .push("capacity", Json::num(shared.cache.capacity() as f64))
                .push("hits", Json::num(hits as f64))
                .push("misses", Json::num(misses as f64))
                .push("hit_ratio", Json::num(shared.metrics.hit_ratio())),
        )
        .push(
            "queue",
            Json::obj()
                .push("depth", Json::num(shared.pool.queue_depth() as f64))
                .push("capacity", Json::num(shared.pool.capacity() as f64))
                .push("rejected", Json::num(shared.pool.rejected() as f64)),
        )
        .push(
            "workers",
            Json::obj()
                .push("count", Json::num(shared.pool.workers() as f64))
                .push("completed", Json::num(shared.pool.completed() as f64))
                .push("panicked", Json::num(shared.pool.panicked() as f64))
                .push("utilization", Json::num(report.utilization())),
        )
        .push("latency_us", hist_rows_json(&shared.metrics.latency))
        .push("latency", hist_summary_json(&shared.metrics.latency))
}
